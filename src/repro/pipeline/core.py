"""The append-only, resumable ingestion pipeline.

This module ties the collection and analysis layers into one incremental
system.  Crawled or generated traffic streams straight into a
directory-backed :class:`~repro.collection.store.FrameStore` (no
intermediate ``List[BlockRecord]``), a :class:`~repro.pipeline.checkpoint.
CheckpointStore` persists the scanned accumulator state behind a row
watermark, and :func:`incremental_report` refreshes every figure by merging
the saved state with a scan of only the rows past the watermark.

The identity guarantee: for any split of a workload into ingestion batches,
the report produced after the last ``update`` equals the report of a single
serial :func:`~repro.analysis.report.full_report` over the same rows —
per accumulator and figure-for-figure.  It rests on three mechanisms:

* accumulator ``restore_state`` (the payload twin of ``merge``) replays the
  serial scan when saved states are folded in row order (checkpointed
  prefix first, then the delta scan);
* frame rehydration re-interns string pools append-only and in
  deterministic order, so interned codes inside checkpointed states stay
  valid as the store grows;
* :meth:`~repro.analysis.engine.Accumulator.config_signature` gates every
  restore — a configuration drift (new oracle rates, an earlier series
  anchor caused by out-of-order history) forces a full rescan of the
  affected chain rather than a silently wrong merge.

A cold ``update`` over a large backlog can shard the catch-up scan across
worker processes (the :mod:`repro.analysis.parallel` machinery); the shard
states merge into the same base accumulators in shard order, preserving
the identity guarantee.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.clustering import StaticAccountClusterer
from repro.analysis.engine import BLOCK_ROWS, Accumulator, EngineResult, scan_blocks
from repro.analysis.parallel import chunk_scan_states, run_tasks, shard_task
from repro.analysis.statecache import ChunkStateCache
from repro.analysis.report import (
    FullReport,
    figure_accumulators,
    figures_from_result,
)
from repro.analysis.throughput import DEFAULT_BIN_SECONDS
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import FrameSink, FrameStore
from repro.common.columns import TxFrame, TxView
from repro.common import faults, statsmode
from repro.common.errors import AnalysisError, CollectionError
from repro.common.records import BlockRecord, ChainId, TransactionRecord
from repro.pipeline.checkpoint import CheckpointStore, PipelineCheckpoint

#: Pipeline meta schema version; bump when the layout changes.
PIPELINE_META_VERSION = 1

#: Meta file name inside a pipeline directory.
PIPELINE_META_NAME = "meta.json"

#: Sub-directory holding the FrameStore chunks.
FRAMES_DIR = "frames"


@dataclass
class UpdateStats:
    """What one incremental update actually did."""

    rows_total: int
    rows_scanned: int
    watermark_before: int
    watermark_after: int
    used_checkpoint: bool
    chains_rescanned: List[str] = field(default_factory=list)
    workers: int = 0
    elapsed_seconds: float = 0.0
    #: Chains whose stored snapshot blob was carried forward unchanged
    #: (no rows past the watermark landed on them — the delta-aware write).
    chains_carried: List[str] = field(default_factory=list)
    #: Wall-clock cost of loading / saving the durable snapshot (set by
    #: :meth:`Pipeline.update`; zero for direct ``incremental_report`` use).
    checkpoint_load_seconds: float = 0.0
    checkpoint_save_seconds: float = 0.0

    @property
    def incremental(self) -> bool:
        """Whether the update avoided rescanning already-covered rows."""
        return self.used_checkpoint and not self.chains_rescanned


def _rows_past_watermark(rows, watermark: int):
    """The suffix of an ascending row-index sequence at or past ``watermark``.

    Chain views are snapshots in ascending row order (a ``range`` for
    single-chain frames, a sorted index array otherwise), so the suffix is
    located by bisection — O(log n) rather than a filter pass.
    """
    if isinstance(rows, range):
        return range(max(rows.start, watermark), max(rows.stop, watermark))
    lo, hi = 0, len(rows)
    while lo < hi:
        mid = (lo + hi) // 2
        if rows[mid] < watermark:
            lo = mid + 1
        else:
            hi = mid
    return rows[lo:]


def incremental_report(
    frame: TxFrame,
    checkpoint: Optional[PipelineCheckpoint],
    oracle: Optional[ExchangeRateOracle] = None,
    clusterer=None,
    bin_seconds: float = DEFAULT_BIN_SECONDS,
    top_limit: int = 10,
    workers: int = 0,
    shards: Optional[int] = None,
    block_rows: int = BLOCK_ROWS,
) -> Tuple[FullReport, PipelineCheckpoint, UpdateStats]:
    """Refresh every figure, scanning only rows past the checkpoint watermark.

    Returns the full report, the **new** checkpoint (covering every row of
    ``frame``), and the update statistics.  With no (or an incompatible)
    checkpoint the affected chains are rescanned from row zero — the result
    is identical either way; only the work differs.

    ``workers > 1`` fans the catch-up scan out across worker processes:
    the delta rows are split into contiguous shards, scanned concurrently,
    and the shard states merged into the checkpoint-seeded base in shard
    order — exactly the :mod:`repro.analysis.parallel` execution model, so
    the parallel catch-up stays result-identical too.
    """
    started = time.perf_counter()
    watermark = checkpoint.watermark_rows if checkpoint is not None else 0
    if watermark > len(frame):
        raise AnalysisError(
            f"checkpoint watermark {watermark} exceeds frame rows {len(frame)}; "
            "the store shrank underneath the checkpoint"
        )
    shard_count = shards if shards is not None else max(workers, 1)
    report = FullReport()
    new_checkpoint = PipelineCheckpoint(watermark_rows=len(frame))
    chains_rescanned: List[str] = []
    chains_carried: List[str] = []
    rows_scanned = 0
    tasks: List[tuple] = []
    pending: Dict[ChainId, tuple] = {}

    def rescan_chain(chain: ChainId, factory, view) -> EngineResult:
        """Last-resort serial rescan of one chain from row zero."""
        accumulators = list(factory())
        consumers = [accumulator.bind_batch(frame) for accumulator in accumulators]
        for block in scan_blocks(view.rows, block_rows):
            for consume in consumers:
                consume(block)
        new_checkpoint.capture_chain(chain.value, accumulators)
        return EngineResult(
            {acc.name: acc.finalize() for acc in accumulators},
            rows_processed=len(view),
        )
    for chain in frame.chains():
        view = frame.chain_view(chain)
        if not len(view):
            continue
        factory = partial(
            figure_accumulators,
            chain,
            frame.chain_bounds(chain),
            oracle,
            clusterer,
            bin_seconds,
            top_limit,
            stats=statsmode.active_mode(),
        )
        accumulators = list(factory())
        # bind_batch initialises state on every accumulator — required before
        # the saved-state restore in *both* execution paths; only the serial
        # branch also drives the returned consumers.
        consumers = [accumulator.bind_batch(frame) for accumulator in accumulators]
        saved = None
        if checkpoint is not None and checkpoint.compatible_with(
            chain.value, accumulators
        ):
            saved = checkpoint.restore_payloads(chain.value)
            if saved is not None and len(saved) != len(accumulators):
                saved = None  # torn blob: rescan the chain instead
        carried = False
        if saved is not None:
            # The checkpointed prefix restores first, then the delta rows
            # are scanned — state mutates in place, replaying serial order.
            try:
                for target, payload in zip(accumulators, saved):
                    target.restore_state(payload)
            except Exception:
                # A blob that decoded but carries garbage values (hostile
                # or bit-rotted state) leaves partial restores behind:
                # rebuild the accumulators and rescan the chain instead.
                saved = None
                accumulators = list(factory())
                consumers = [
                    accumulator.bind_batch(frame) for accumulator in accumulators
                ]
        if saved is not None:
            delta_rows = _rows_past_watermark(view.rows, watermark)
            if not len(delta_rows):
                # Delta-aware write: nothing past the watermark landed on
                # this chain, so its stored blob is byte-for-byte current —
                # carry it forward instead of re-exporting and re-encoding.
                carried = new_checkpoint.carry_chain(chain.value, checkpoint)
                if carried:
                    chains_carried.append(chain.value)
        else:
            delta_rows = view.rows
            if (
                checkpoint is not None
                and len(delta_rows)
                and delta_rows[0] < watermark
            ):
                # Only a chain with rows *below* the watermark is genuinely
                # rescanned; a chain that first appeared after the checkpoint
                # has nothing saved and nothing to rescan.
                chains_rescanned.append(chain.value)
        rows_scanned += len(delta_rows)
        if workers > 1 and len(delta_rows):
            delta_view = TxView(frame, delta_rows)
            for shard_view in delta_view.shard(shard_count):
                if not len(shard_view):
                    continue
                tasks.append(
                    shard_task(chain, frame, shard_view.rows, factory, block_rows)
                )
            pending[chain] = (accumulators, view, factory, saved is not None, len(delta_rows))
            continue
        # scan_blocks normalises the delta rows once (index ndarrays under
        # the numpy backend), exactly like the engine's own scan loop.
        for block in scan_blocks(delta_rows, block_rows):
            for consume in consumers:
                consume(block)
        try:
            if not carried:
                new_checkpoint.capture_chain(chain.value, accumulators)
            result = EngineResult(
                {acc.name: acc.finalize() for acc in accumulators},
                rows_processed=len(view),
            )
        except Exception:
            if saved is None:
                raise  # not checkpoint state — a genuine bug; surface it
            # Restored state that decoded cleanly can still be garbage
            # (lazily stashed columns are only consumed here, at capture /
            # finalize time): discard it and rescan the chain from scratch.
            rows_scanned += len(view) - len(delta_rows)
            if chain.value in chains_carried:
                chains_carried.remove(chain.value)
            chains_rescanned.append(chain.value)
            result = rescan_chain(chain, factory, view)
        report.chains[chain] = figures_from_result(chain, result)
    if tasks:
        run_tasks(
            tasks, workers, {chain: base for chain, (base, *_rest) in pending.items()}
        )
    for chain, (accumulators, view, factory, had_saved, delta_len) in pending.items():
        try:
            new_checkpoint.capture_chain(chain.value, accumulators)
            result = EngineResult(
                {acc.name: acc.finalize() for acc in accumulators},
                rows_processed=len(view),
            )
        except Exception:
            if not had_saved:
                raise
            rows_scanned += len(view) - delta_len
            chains_rescanned.append(chain.value)
            result = rescan_chain(chain, factory, view)
        report.chains[chain] = figures_from_result(chain, result)
    stats = UpdateStats(
        rows_total=len(frame),
        rows_scanned=rows_scanned,
        watermark_before=watermark,
        watermark_after=len(frame),
        used_checkpoint=checkpoint is not None,
        chains_rescanned=chains_rescanned,
        workers=workers,
        elapsed_seconds=time.perf_counter() - started,
        chains_carried=chains_carried,
    )
    return report, new_checkpoint, stats


class Pipeline:
    """A durable, resumable ingest-and-report pipeline in one directory.

    Layout::

        <root>/
          frames/           chunk-compressed columnar rows + manifest.json
          checkpoint.snap   codec-encoded accumulator states + row watermark
          meta.json         analysis configuration (oracle rates, clusters)

    A directory created by an earlier (pickle-checkpoint) version is
    adopted transparently: the first ``update`` migrates ``checkpoint.pkl``
    into the snapshot format and removes it.

    The pipeline keeps a resident :class:`TxFrame` mirroring the store, so a
    long-lived process (the ``watch`` loop) ingests and updates without ever
    rehydrating; a cold process rehydrates once on first use and is
    incremental from then on.  All writes are append-only and every commit
    point (chunk manifest, checkpoint, meta) is atomic, so the pipeline
    reopens cleanly after a crash at any instant — at worst re-ingesting the
    rows of one uncommitted chunk.
    """

    def __init__(self, root: str, chunk_rows: int = 50_000):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.frames_dir = os.path.join(root, FRAMES_DIR)
        self.store = FrameStore.open(self.frames_dir, chunk_rows=chunk_rows)
        self.checkpoints = CheckpointStore(root)
        self._frame: Optional[TxFrame] = None
        self._meta = self._load_meta()
        if self.store.cleaned_paths:
            self._reconcile_after_cleanup()

    def _reconcile_after_cleanup(self) -> None:
        """Re-anchor crawl meta after :meth:`FrameStore.open` cleaned chunks.

        A torn committed chunk truncates the store at reopen, shrinking the
        per-chain height bounds — but the ``crawled_head_*`` meta still
        records the pre-crash frontier.  Left alone, the next tail crawl
        would resume *above* the lost blocks and never re-fetch them
        (silent row loss).  Clamp each chain's crawled head back to the
        store's durable bounds and prune missing-height declarations that
        now fall outside them; the blocks re-enter the crawl frontier and
        are re-ingested on the next tick.
        """
        updates: Dict[str, object] = {}
        for key, value in list(self._meta.items()):
            if key.startswith("crawled_head_"):
                chain_value = key[len("crawled_head_"):]
                bounds = self.store.height_bounds(chain_value)
                durable_head = bounds[1] if bounds is not None else -1
                if int(value) > durable_head:
                    updates[key] = durable_head
            elif key.startswith("missing_heights_"):
                chain_value = key[len("missing_heights_"):]
                bounds = self.store.height_bounds(chain_value)
                kept = [
                    int(height)
                    for height in value
                    if bounds is not None and bounds[0] <= int(height) <= bounds[1]
                ]
                if kept != [int(height) for height in value]:
                    updates[key] = kept
        if updates:
            self.set_meta(**updates)

    # -- meta / analysis configuration ---------------------------------------------
    @property
    def meta_path(self) -> str:
        return os.path.join(self.root, PIPELINE_META_NAME)

    def _load_meta(self) -> Dict:
        if not os.path.exists(self.meta_path):
            return {"version": PIPELINE_META_VERSION}
        with open(self.meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("version") != PIPELINE_META_VERSION:
            raise CollectionError(
                f"unsupported pipeline meta version {meta.get('version')!r}"
            )
        return meta

    def _save_meta(self) -> None:
        temp_path = self.meta_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(self._meta, handle)
        os.replace(temp_path, self.meta_path)

    @property
    def meta(self) -> Dict:
        return self._meta

    def set_meta(self, **entries) -> None:
        """Merge entries into the pipeline meta and persist atomically."""
        self._meta.update(entries)
        self._save_meta()

    def set_analysis_config(
        self, oracle: ExchangeRateOracle, clusterer: StaticAccountClusterer
    ) -> None:
        """Freeze the analysis companions (persisted; stable across sessions).

        The oracle's rate table and the cluster map are part of every XRP
        accumulator's config signature, so they must not drift between
        updates — a drift would force full rescans.  The pipeline therefore
        freezes them once and reuses the frozen copies forever after.
        """
        self.set_meta(
            oracle_rates=[
                [currency, issuer, oracle.rate(currency, issuer)]
                for currency, issuer in oracle.known_assets()
            ],
            clusters=clusterer.to_mapping(),
        )

    def has_analysis_config(self) -> bool:
        return "oracle_rates" in self._meta

    def analysis_config(
        self,
    ) -> Tuple[Optional[ExchangeRateOracle], Optional[StaticAccountClusterer]]:
        """The frozen oracle and clusterer, or ``(None, None)`` if unset."""
        if not self.has_analysis_config():
            return None, None
        oracle = ExchangeRateOracle(
            {
                (currency, issuer): rate
                for currency, issuer, rate in self._meta["oracle_rates"]
            }
        )
        clusterer = StaticAccountClusterer(self._meta.get("clusters", {}))
        return oracle, clusterer

    # -- the resident frame ----------------------------------------------------------
    @property
    def frame(self) -> TxFrame:
        """The resident columnar frame mirroring the store.

        First access rehydrates once; afterwards the frame is kept in sync
        incrementally — rows the store committed behind the frame's back
        (a crawler writing through a :meth:`sink`) are appended from only
        the new chunks' payloads, so a long-lived loop never pays
        O(history) per tick.  The resident frame is always a row-prefix
        mirror of the store: ingest paths append to both in the same
        order, and this property extends the frame to the store's
        committed row count before returning it.
        """
        if self._frame is None:
            self._frame = self.store.to_frame()
            return self._frame
        frame = self._frame
        if len(frame) < self.store.flushed_rows:
            for payload in self.store.payload_tail(len(frame)):
                frame.extend_from_payload(payload)
        return frame

    def invalidate_frame(self) -> None:
        """Drop the resident frame (next access rehydrates from the store)."""
        self._frame = None

    # -- ingest -----------------------------------------------------------------------
    def _mirror(self, records: Iterable[TransactionRecord]):
        """Tee a record stream into the resident frame on its way to the store."""
        append = self.frame.append
        for record in records:
            append(record)
            yield record

    def ingest_records(self, records: Iterable[TransactionRecord]) -> int:
        """Append a record stream to the store and the resident frame.

        Rows are staged into the store's chunking as they arrive and
        committed with one flush at the end, so a completed ingest call is
        always durable.  Returns the number of rows ingested.
        """
        before = self.store.row_count
        self.store.add_records(self._mirror(records))
        self.store.flush()
        return self.store.row_count - before

    def ingest_blocks(self, blocks: Iterable[BlockRecord], skip_rows: int = 0) -> int:
        """Append every transaction of a block stream (oldest block first).

        ``skip_rows`` drops the leading rows of the flattened stream — the
        resume hook for deterministic batch replays: rows already durable in
        the store are skipped instead of re-appended, so a crash that
        committed part of a batch never produces duplicates.
        """
        records = (record for block in blocks for record in block.transactions)
        if skip_rows:
            records = itertools.islice(records, skip_rows, None)
        return self.ingest_records(records)

    def sink(self, chain: Optional[ChainId] = None, missing_heights=()) -> FrameSink:
        """A crawler-compatible sink writing into this pipeline's store.

        The sink writes to the store only; the resident frame catches up
        from the newly committed chunks on its next access (see
        :attr:`frame`).  ``missing_heights`` declares known holes inside
        the committed range (previously failed fetches) so the sink never
        reports them as stored.
        """
        return FrameSink(self.store, chain=chain, missing_heights=missing_heights)

    def missing_heights(self, chain: ChainId) -> List[int]:
        """Persisted crawl holes for ``chain`` (failed fetches to retry)."""
        return [int(h) for h in self._meta.get(f"missing_heights_{chain.value}", [])]

    def set_missing_heights(self, chain: ChainId, heights) -> None:
        self.set_meta(**{f"missing_heights_{chain.value}": sorted(int(h) for h in heights)})

    # -- report -----------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """Rows covered by the durable checkpoint (0 when none exists)."""
        checkpoint = self.checkpoints.load()
        return checkpoint.watermark_rows if checkpoint is not None else 0

    def update(
        self,
        workers: int = 0,
        shards: Optional[int] = None,
        bin_seconds: float = DEFAULT_BIN_SECONDS,
        top_limit: int = 10,
    ) -> Tuple[FullReport, UpdateStats]:
        """Bring every figure up to date with the rows ingested so far.

        Loads the durable checkpoint, scans only the rows past its
        watermark (sharded across ``workers`` processes when the backlog
        warrants it), persists the refreshed checkpoint, and returns the
        full figure report — identical to a batch ``full_report`` over the
        same rows.
        """
        self.store.flush()
        faults.maybe_crash("pipeline.update")
        oracle, clusterer = self.analysis_config()
        checkpoint = self.checkpoints.load()
        if (
            workers > 1
            and checkpoint is None
            and self._frame is None
            and self.store.committed_chunk_count
        ):
            # Cold catch-up: no checkpoint to seed from and no resident
            # frame yet, so scanning is the whole job.  Reuse the
            # out-of-core chunk tasks instead of rehydrating the frame and
            # shipping pickled row payloads to workers — the parent reads
            # only the manifest, workers stream their chunk ranges, and
            # the folded accumulator states checkpoint exactly like a
            # serial scan's.  Memory stays bounded in every process.
            started = time.perf_counter()
            # The chunk-state cache turns a *repeated* cold catch-up (a
            # process that keeps restarting before its first checkpoint
            # lands) into a fold of memoized per-chunk states; corrupt or
            # stale entries degrade to plain rescans of those chunks.
            totals, bases = chunk_scan_states(
                self.frames_dir,
                oracle=oracle,
                clusterer=clusterer,
                workers=workers,
                tasks=shards,
                bin_seconds=bin_seconds,
                top_limit=top_limit,
                cache=ChunkStateCache.for_store(self.frames_dir),
                store=self.store,
            )
            rows_total = self.store.row_count
            report = FullReport()
            new_checkpoint = PipelineCheckpoint(watermark_rows=rows_total)
            for chain in ChainId:
                accumulators = bases.get(chain.value)
                if accumulators is None:
                    continue
                new_checkpoint.capture_chain(chain.value, accumulators)
                result = EngineResult(
                    {acc.name: acc.finalize() for acc in accumulators},
                    rows_processed=totals[chain.value],
                )
                report.chains[chain] = figures_from_result(chain, result)
            stats = UpdateStats(
                rows_total=rows_total,
                rows_scanned=rows_total,
                watermark_before=0,
                watermark_after=rows_total,
                used_checkpoint=False,
                chains_rescanned=[],
                workers=workers,
                elapsed_seconds=time.perf_counter() - started,
            )
            self.checkpoints.save(new_checkpoint)
            stats.checkpoint_load_seconds = self.checkpoints.last_load_seconds
            stats.checkpoint_save_seconds = self.checkpoints.last_save_seconds
            return report, stats
        # The frame property catches up with any rows the store committed
        # behind the resident frame's back (e.g. via a crawler sink).
        frame = self.frame
        if checkpoint is not None and checkpoint.watermark_rows > len(frame):
            # A crash truncated the store behind the checkpoint: the saved
            # states cover rows that no longer exist.  Discard them and fall
            # back to a full rescan — still result-identical, just slower.
            checkpoint = None
        report, new_checkpoint, stats = incremental_report(
            frame,
            checkpoint,
            oracle=oracle,
            clusterer=clusterer,
            bin_seconds=bin_seconds,
            top_limit=top_limit,
            workers=workers,
            shards=shards,
        )
        self.checkpoints.save(new_checkpoint)
        stats.checkpoint_load_seconds = self.checkpoints.last_load_seconds
        stats.checkpoint_save_seconds = self.checkpoints.last_save_seconds
        return report, stats
