"""Store/pipeline consistency checking and repair (the ``fsck`` doctor).

The durability story so far is *reactive*: :meth:`FrameStore.open`
truncates at the first torn chunk, checkpoint loads degrade to rescans,
the pipeline re-anchors crawl meta after cleanups.  This module is the
*proactive* side — walk everything a pipeline directory persists, verify
it byte-for-byte, and report exactly what is damaged:

* the frame-store manifest (readable, supported version, no crashed
  partial assembly);
* every committed chunk (file present, size matches the committed byte
  count, blob decodes — v2 magic + adler32, v1 gzip/JSON — and the decoded
  row count matches the manifest);
* uncommitted chunk files on disk that the manifest never references;
* the checkpoint snapshot (decodes, format/version valid, every chain
  blob's adler32 matches, watermark within the store's committed rows);
* the pipeline meta file (readable JSON).

With ``repair=True`` the doctor makes the surviving data usable instead of
abandoning the whole store:

* corrupt/torn committed chunks are moved into a ``quarantine/``
  sub-directory (outside the store's chunk globs, so nothing ever deletes
  the evidence) and their manifest entries dropped.  Chunk payloads are
  self-contained, but a *dropped* chunk invalidates the recorded pool
  deltas of every later chunk (deltas are relative to the running pools),
  so those entries shed their ``pools`` metadata and the store backfills
  them lazily on next use (:meth:`FrameStore.ensure_chunk_stats`).  The
  rows lost this way are reported per chain — explicit degraded-rows
  accounting instead of an all-or-nothing rescan;
* an unusable or stale checkpoint snapshot is quarantined too (the next
  update falls back to a full rescan, which is always correct);
* uncommitted chunk files are quarantined rather than deleted.

The repaired store must satisfy ``FrameStore.open`` + ``full_report``; the
fsck test suite gates exactly that.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.statecache import decode_entry, parse_entry_name
from repro.collection.store import (
    MANIFEST_NAME,
    STATE_CACHE_DIR,
    SUPPORTED_MANIFEST_VERSIONS,
    _decode_chunk_blob,
    _glob_chunk_files,
)
from repro.common import statecodec
from repro.common.errors import CollectionError
from repro.pipeline.checkpoint import (
    CHECKPOINT_NAME,
    CHECKPOINT_VERSION,
    SNAPSHOT_FORMAT,
)
from repro.pipeline.core import FRAMES_DIR, PIPELINE_META_NAME

#: Sub-directory (inside the store directory) corrupt files move into.
#: Deliberately outside the ``frame-chunk-*`` glob patterns: neither
#: :meth:`FrameStore.open`'s stale-partial cleanup nor a later fsck walk
#: will ever touch a quarantined file.
QUARANTINE_DIR = "quarantine"


@dataclass
class FsckIssue:
    """One verified inconsistency found by the walk."""

    #: Machine-readable kind: ``manifest_unreadable``, ``partial_assembly``,
    #: ``chunk_missing``, ``chunk_size_mismatch``, ``chunk_corrupt``,
    #: ``chunk_uncommitted``, ``checkpoint_unreadable``,
    #: ``checkpoint_chain_corrupt``, ``checkpoint_stale``,
    #: ``meta_unreadable``, ``cache_entry_corrupt``, ``cache_entry_stale``,
    #: ``cache_entry_orphaned``.
    kind: str
    detail: str
    path: Optional[str] = None
    #: Rows this issue costs per chain value if the damaged data is dropped.
    chain_rows: Dict[str, int] = field(default_factory=dict)
    #: What repair did: ``quarantined`` or ``""`` (not repaired / no action).
    repair: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "path": self.path,
            "chain_rows": dict(self.chain_rows),
            "repair": self.repair,
        }


@dataclass
class FsckReport:
    """Everything one fsck walk found (and, with repair, did)."""

    root: str
    store_dir: str
    chunks_checked: int = 0
    chunks_ok: int = 0
    checkpoint_checked: bool = False
    cache_entries_checked: int = 0
    cache_entries_ok: int = 0
    issues: List[FsckIssue] = field(default_factory=list)
    #: Per-chain rows lost to quarantined chunks (empty without repair).
    degraded_rows: Dict[str, int] = field(default_factory=dict)
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.issues

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "store_dir": self.store_dir,
            "clean": self.clean,
            "chunks_checked": self.chunks_checked,
            "chunks_ok": self.chunks_ok,
            "checkpoint_checked": self.checkpoint_checked,
            "cache_entries_checked": self.cache_entries_checked,
            "cache_entries_ok": self.cache_entries_ok,
            "issues": [issue.to_dict() for issue in self.issues],
            "degraded_rows": dict(self.degraded_rows),
            "repaired": self.repaired,
        }


def resolve_store_dir(root: str) -> str:
    """The frame-store directory for ``root`` (bare store or pipeline dir)."""
    if os.path.exists(os.path.join(root, MANIFEST_NAME)):
        return root
    nested = os.path.join(root, FRAMES_DIR)
    if os.path.isdir(nested):
        return nested
    return root


def _entry_chain_rows(entry: Dict) -> Dict[str, int]:
    """Per-chain row accounting for one manifest entry (best effort)."""
    chain_rows = entry.get("chain_rows")
    if chain_rows:
        return {chain: int(count) for chain, count in chain_rows.items()}
    # Version-1 entries lack per-chain counts; attribute the total to the
    # chains the height bounds name (split unknown → keyed by "unknown").
    heights = entry.get("heights") or {}
    if len(heights) == 1:
        return {next(iter(heights)): int(entry.get("rows", 0))}
    return {"unknown": int(entry.get("rows", 0))}


def _quarantine(store_dir: str, path: str) -> str:
    """Move ``path`` into the store's quarantine directory; returns the target."""
    quarantine = os.path.join(store_dir, QUARANTINE_DIR)
    os.makedirs(quarantine, exist_ok=True)
    target = os.path.join(quarantine, os.path.basename(path))
    if os.path.exists(target):  # a repeated fsck of the same damage
        base, extension = os.path.basename(path), 1
        while os.path.exists(target):
            target = os.path.join(quarantine, f"{base}.{extension}")
            extension += 1
    shutil.move(path, target)
    return target


def _check_chunks(report: FsckReport, repair: bool) -> None:
    """Verify the manifest and every committed chunk; repair by quarantine."""
    store_dir = report.store_dir
    manifest_path = os.path.join(store_dir, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        if _glob_chunk_files(store_dir):
            report.issues.append(
                FsckIssue(
                    kind="manifest_missing",
                    detail="chunk files present but no manifest commits them",
                    path=manifest_path,
                )
            )
        return
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("chunks"), list
        ):
            raise ValueError("manifest is not a chunk-list mapping")
    except (OSError, ValueError) as error:
        report.issues.append(
            FsckIssue(
                kind="manifest_unreadable",
                detail=f"manifest does not parse: {error}",
                path=manifest_path,
            )
        )
        return
    if manifest.get("version") not in SUPPORTED_MANIFEST_VERSIONS:
        report.issues.append(
            FsckIssue(
                kind="manifest_version",
                detail=f"unsupported manifest version {manifest.get('version')!r}",
                path=manifest_path,
            )
        )
        return
    if manifest.get("assembling"):
        report.issues.append(
            FsckIssue(
                kind="partial_assembly",
                detail="manifest is an assembly placeholder: the store is a "
                "crashed partial assembly and must be re-assembled",
                path=manifest_path,
            )
        )
        return

    kept_entries: List[Dict] = []
    dropped_any = False
    for index, entry in enumerate(manifest["chunks"]):
        report.chunks_checked += 1
        path = os.path.join(store_dir, entry["file"])
        issue: Optional[FsckIssue] = None
        if not os.path.exists(path):
            issue = FsckIssue(
                kind="chunk_missing",
                detail=f"chunk {index} file {entry['file']!r} is gone",
                path=path,
                chain_rows=_entry_chain_rows(entry),
            )
        elif os.path.getsize(path) != int(entry["compressed_bytes"]):
            issue = FsckIssue(
                kind="chunk_size_mismatch",
                detail=(
                    f"chunk {index} is {os.path.getsize(path)} bytes on disk, "
                    f"manifest committed {entry['compressed_bytes']} (torn write)"
                ),
                path=path,
                chain_rows=_entry_chain_rows(entry),
            )
        else:
            try:
                with open(path, "rb") as handle:
                    payload = _decode_chunk_blob(handle.read(), index)
                decoded_rows = len(payload["transaction_id"])
                if decoded_rows != int(entry["rows"]):
                    raise CollectionError(
                        f"decoded {decoded_rows} rows, manifest committed "
                        f"{entry['rows']}"
                    )
            except Exception as error:
                issue = FsckIssue(
                    kind="chunk_corrupt",
                    detail=f"chunk {index} does not verify: {error}",
                    path=path,
                    chain_rows=_entry_chain_rows(entry),
                )
        if issue is None:
            report.chunks_ok += 1
            if dropped_any:
                # A dropped earlier chunk invalidates this chunk's recorded
                # pool deltas (they are relative to the running pools); the
                # store recomputes them lazily from the payload.
                entry = {
                    key: value for key, value in entry.items() if key != "pools"
                }
            kept_entries.append(entry)
            continue
        report.issues.append(issue)
        if repair:
            if issue.path is not None and os.path.exists(issue.path):
                issue.path = _quarantine(store_dir, issue.path)
            issue.repair = "quarantined"
            dropped_any = True
            for chain, rows in issue.chain_rows.items():
                report.degraded_rows[chain] = (
                    report.degraded_rows.get(chain, 0) + rows
                )
        else:
            kept_entries.append(entry)

    # Chunk files the manifest never committed (crash between the chunk
    # write and the manifest rename) — open() would delete them; fsck
    # reports them, and repair preserves them in quarantine instead.
    committed_files = {entry["file"] for entry in manifest["chunks"]}
    for path in _glob_chunk_files(store_dir):
        if os.path.basename(path) in committed_files:
            continue
        issue = FsckIssue(
            kind="chunk_uncommitted",
            detail=f"chunk file {os.path.basename(path)!r} was never "
            "committed by the manifest (crash leftover)",
            path=path,
        )
        report.issues.append(issue)
        if repair:
            issue.path = _quarantine(store_dir, path)
            issue.repair = "quarantined"

    if repair and dropped_any:
        manifest["chunks"] = kept_entries
        manifest["row_count"] = sum(int(entry["rows"]) for entry in kept_entries)
        temp_path = manifest_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(temp_path, manifest_path)


def _committed_rows(store_dir: str) -> Optional[int]:
    """The manifest's committed row count, or ``None`` when unavailable."""
    manifest_path = os.path.join(store_dir, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        return sum(int(entry["rows"]) for entry in manifest["chunks"])
    except Exception:
        return None


def _check_checkpoint(report: FsckReport, root: str, repair: bool) -> None:
    """Verify the checkpoint snapshot, per-chain checksums and watermark."""
    path = os.path.join(root, CHECKPOINT_NAME)
    if not os.path.exists(path):
        return
    report.checkpoint_checked = True
    issue: Optional[FsckIssue] = None
    try:
        with open(path, "rb") as handle:
            payload = statecodec.decode(handle.read())
        if (
            not isinstance(payload, dict)
            or payload.get("format") != SNAPSHOT_FORMAT
            or payload.get("version") != CHECKPOINT_VERSION
            or not isinstance(payload.get("chains"), dict)
        ):
            raise ValueError("snapshot payload has an unexpected shape")
    except Exception as error:
        issue = FsckIssue(
            kind="checkpoint_unreadable",
            detail=f"checkpoint snapshot does not decode: {error}",
            path=path,
        )
    if issue is None:
        checksums = payload.get("checksums", {})
        for chain_value, blob in payload["chains"].items():
            expected = checksums.get(chain_value)
            if expected is not None and zlib.adler32(blob) != expected:
                issue = FsckIssue(
                    kind="checkpoint_chain_corrupt",
                    detail=(
                        f"chain {chain_value!r} state blob fails its adler32 "
                        "(the next update would rescan that chain)"
                    ),
                    path=path,
                )
                break
    if issue is None:
        committed = _committed_rows(report.store_dir)
        watermark = payload.get("watermark_rows", 0)
        if committed is not None and watermark > committed:
            issue = FsckIssue(
                kind="checkpoint_stale",
                detail=(
                    f"checkpoint watermark {watermark} exceeds the store's "
                    f"{committed} committed rows (store shrank underneath it)"
                ),
                path=path,
            )
    if issue is None:
        return
    report.issues.append(issue)
    if repair:
        issue.path = _quarantine(report.store_dir, path)
        issue.repair = "quarantined"


def _committed_chunk_checksums(store_dir: str) -> Optional[set]:
    """adler32 hex digests of every committed chunk's bytes, or ``None``.

    ``None`` means the manifest or a chunk file is unreadable — already
    reported by :func:`_check_chunks` — so cache staleness cannot be judged
    and only the corrupt/orphan checks apply.
    """
    manifest_path = os.path.join(store_dir, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        checksums = set()
        for entry in manifest["chunks"]:
            with open(os.path.join(store_dir, entry["file"]), "rb") as handle:
                checksums.add(f"{zlib.adler32(handle.read()) & 0xFFFFFFFF:08x}")
        return checksums
    except Exception:
        return None


def _check_state_cache(report: FsckReport, repair: bool) -> None:
    """Verify every chunk-state cache entry against the committed chunks.

    An entry is *stale* when its keyed chunk checksum matches no committed
    chunk (the chunk was rewritten, quarantined, or regenerated), *corrupt*
    when its blob fails the entry checksum or decode, and *orphaned* when
    the file in ``cache/`` is not a recognisable entry at all (a crashed
    write's ``.tmp``).  None of these can ever corrupt a figure — the
    cache's keying and checksums degrade them all to misses — but they are
    dead weight and evidence of damage, so fsck reports them and repair
    quarantines them like any other damaged file.
    """
    cache_dir = os.path.join(report.store_dir, STATE_CACHE_DIR)
    if not os.path.isdir(cache_dir):
        return
    checksums = _committed_chunk_checksums(report.store_dir)
    for name in sorted(os.listdir(cache_dir)):
        path = os.path.join(cache_dir, name)
        if not os.path.isfile(path):
            continue
        report.cache_entries_checked += 1
        key = parse_entry_name(name)
        issue: Optional[FsckIssue] = None
        if key is None:
            issue = FsckIssue(
                kind="cache_entry_orphaned",
                detail=(
                    f"cache file {name!r} is not a recognisable chunk-state "
                    "entry (crashed write leftover?)"
                ),
                path=path,
            )
        else:
            try:
                with open(path, "rb") as handle:
                    states = decode_entry(handle.read())
            except OSError:
                states = None
            if states is None:
                issue = FsckIssue(
                    kind="cache_entry_corrupt",
                    detail=(
                        f"cache entry {name!r} fails its checksum or does "
                        "not decode (reads degrade to a chunk rescan)"
                    ),
                    path=path,
                )
            elif checksums is not None and key.chunk_checksum not in checksums:
                issue = FsckIssue(
                    kind="cache_entry_stale",
                    detail=(
                        f"cache entry {name!r} is keyed to chunk checksum "
                        f"{key.chunk_checksum} that no committed chunk "
                        "carries (superseded bytes; the entry can never hit)"
                    ),
                    path=path,
                )
        if issue is None:
            report.cache_entries_ok += 1
            continue
        report.issues.append(issue)
        if repair:
            issue.path = _quarantine(report.store_dir, path)
            issue.repair = "quarantined"


def _check_meta(report: FsckReport, root: str) -> None:
    path = os.path.join(root, PIPELINE_META_NAME)
    if not os.path.exists(path):
        return
    try:
        with open(path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if not isinstance(meta, dict):
            raise ValueError("meta is not a mapping")
    except (OSError, ValueError) as error:
        report.issues.append(
            FsckIssue(
                kind="meta_unreadable",
                detail=f"pipeline meta does not parse: {error}",
                path=path,
            )
        )


def run_fsck(root: str, repair: bool = False) -> FsckReport:
    """Walk and verify everything under ``root``; optionally repair it.

    ``root`` may be a bare :class:`~repro.collection.store.FrameStore`
    directory or a pipeline ``--data`` directory (store nested under
    ``frames/``, checkpoint and meta at the top).  Verification never
    mutates anything; ``repair=True`` quarantines damaged chunk files and
    unusable checkpoints as documented in the module docstring and rewrites
    the manifest to cover exactly the surviving chunks.
    """
    if not os.path.isdir(root):
        raise CollectionError(f"{root!r} is not a directory")
    store_dir = resolve_store_dir(root)
    report = FsckReport(root=root, store_dir=store_dir, repaired=repair)
    _check_chunks(report, repair)
    # After the chunk pass: a chunk quarantined above turns its cache
    # entries stale in this same walk.
    _check_state_cache(report, repair)
    _check_checkpoint(report, root, repair)
    _check_meta(report, root)
    return report
