"""Live tailing: timed block batches, the watch loop, and tail crawls.

The paper's collection strategy (§3.1: reverse-chronological crawling with
resume) implies a system that keeps ingesting.  This module provides the
"keeps" part in two flavours:

* :func:`stream_block_batches` merges the three chains' simulated block
  streams in timestamp order and groups them into timed batches — the
  ``live_tail`` stress scenario's emission model;
* :class:`LiveTailRunner` drives a :class:`~repro.pipeline.core.Pipeline`
  through those batches on a :class:`~repro.common.clock.SimulationClock`:
  every tick ingests the blocks that "arrived" since the previous tick and
  refreshes every figure incrementally — live figure updates without ever
  recomputing history;
* :func:`tail_crawl` is the endpoint-pool variant of a tick: it crawls the
  blocks above the pipeline's height watermark through a
  :class:`~repro.collection.crawler.BlockCrawler` straight into a
  :class:`~repro.collection.store.FrameSink`, which is how the loop runs
  against (simulated) RPC endpoints instead of in-process generators.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
from repro.analysis.report import FullReport
from repro.analysis.value import ExchangeRateOracle
from repro.collection.crawler import BlockCrawler, CrawlReport
from repro.collection.endpoints import EndpointPool
from repro.common import faults
from repro.common.clock import SECONDS_PER_HOUR, SimulationClock
from repro.common.errors import CollectionError
from repro.common.records import BlockRecord, ChainId
from repro.eos.workload import EosWorkloadGenerator
from repro.pipeline.core import Pipeline, UpdateStats
from repro.scenarios.paper import PaperScenario
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.workload import XrpWorkloadGenerator

#: Default virtual time per live batch: the paper's Figure 3 bin width.
DEFAULT_BATCH_SECONDS = 6 * SECONDS_PER_HOUR


def scenario_generators(scenario: PaperScenario) -> Dict[str, object]:
    """Fresh, deterministic workload generators for a scenario's three chains."""
    return {
        "eos": EosWorkloadGenerator(scenario.eos),
        "tezos": TezosWorkloadGenerator(scenario.tezos),
        "xrp": XrpWorkloadGenerator(scenario.xrp),
    }


def stream_block_batches(
    generators: Dict[str, object],
    batch_seconds: float = DEFAULT_BATCH_SECONDS,
) -> Iterator[Tuple[float, List[BlockRecord]]]:
    """Merge per-chain block streams by timestamp and emit timed batches.

    Yields ``(batch_end_timestamp, blocks)`` pairs: every block with
    ``timestamp < batch_end`` since the previous batch, across all chains,
    oldest first.  Batch boundaries are anchored at the first block's
    timestamp, so the same generators always produce the same batches —
    which is what makes batch-split identity testable.
    """
    if batch_seconds <= 0:
        raise CollectionError("batch_seconds must be positive")
    merged = heapq.merge(
        *(generator.generate_blocks() for generator in generators.values()),
        key=lambda block: block.timestamp,
    )
    batch: List[BlockRecord] = []
    batch_end: Optional[float] = None
    for block in merged:
        if batch_end is None:
            batch_end = block.timestamp + batch_seconds
        while block.timestamp >= batch_end:
            yield batch_end, batch
            batch = []
            batch_end += batch_seconds
        batch.append(block)
    if batch_end is not None:
        yield batch_end, batch


def pending_batches(
    pipeline: Pipeline,
    generators: Dict[str, object],
    batch_seconds: float = DEFAULT_BATCH_SECONDS,
) -> Iterator[Tuple[int, float, List[BlockRecord], int]]:
    """The not-yet-durable suffix of a pipeline's deterministic batch stream.

    Yields ``(batch_index, batch_end, blocks, skip_rows)`` for every batch
    with rows missing from the store.  Resume is row-driven: the store's
    **durable** row count decides which prefix of the replayed stream is
    skipped — wholly-committed batches are dropped, and a batch a crash cut
    in half comes back with ``skip_rows`` covering its committed prefix.  A
    crash at any instant (even between a chunk commit and a meta write, or
    mid-batch) can therefore neither double-ingest rows nor lose them.
    This single helper carries that invariant for both ``ingest`` and the
    watch loop.
    """
    durable = pipeline.store.row_count
    covered = 0
    for index, (batch_end, blocks) in enumerate(
        stream_block_batches(generators, batch_seconds)
    ):
        batch_rows = sum(len(block.transactions) for block in blocks)
        if covered + batch_rows <= durable:
            covered += batch_rows
            continue
        yield index, batch_end, blocks, max(0, durable - covered)
        covered += batch_rows


def frozen_analysis_config(
    generators: Dict[str, object],
) -> Tuple[ExchangeRateOracle, StaticAccountClusterer]:
    """Freeze the XRP analysis companions from a generator set's ledger.

    The oracle rates and cluster labels become part of the accumulator
    config signatures, so the pipeline freezes them once (at whatever ledger
    state exists when first asked) and persists them; later sessions and the
    batch-identity comparisons all reuse the same frozen tables.
    """
    ledger = generators["xrp"].ledger
    oracle = ExchangeRateOracle.from_orderbook(ledger.orderbook)
    clusterer = AccountClusterer(ledger.accounts)
    static = StaticAccountClusterer.from_clusterer(
        clusterer, ledger.accounts.addresses()
    )
    return oracle, static


@dataclass
class LiveUpdate:
    """One watch tick: what arrived and what the figures now say."""

    batch_index: int
    virtual_time: float
    blocks_ingested: int
    rows_ingested: int
    report: FullReport
    stats: UpdateStats


class LiveTailRunner:
    """Drives a pipeline through timed block batches with live figure updates.

    Each tick advances the simulation clock to the batch boundary, ingests
    the batch's blocks (append-only, straight into the columnar store),
    runs an incremental update, and yields the refreshed report.  The
    pipeline's resident frame keeps ticks cheap: no rehydration, no
    re-scan of history — per tick the analysis cost is proportional to the
    batch, not the archive.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        scenario: PaperScenario,
        batch_seconds: float = DEFAULT_BATCH_SECONDS,
        clock: Optional[SimulationClock] = None,
        workers: int = 0,
        shards: Optional[int] = None,
    ):
        self.pipeline = pipeline
        self.scenario = scenario
        self.batch_seconds = batch_seconds
        self.clock = clock or SimulationClock(0.0)
        self.workers = workers
        self.shards = shards
        self.generators = scenario_generators(scenario)

    def run(self, max_batches: Optional[int] = None) -> Iterator[LiveUpdate]:
        """Yield one :class:`LiveUpdate` per batch (lazily).

        Resume comes from :func:`pending_batches` — row-driven off the
        durable store, so a reopened ``watch`` continues exactly where the
        last durable chunk ended regardless of where a previous session
        died.  The ``next_batch_index`` meta entry is a display cursor
        only.
        """
        if not self.pipeline.has_analysis_config():
            # Freeze the analysis companions before the first update so the
            # accumulator config signatures never drift between ticks.
            oracle, clusterer = frozen_analysis_config(self.generators)
            self.pipeline.set_analysis_config(oracle, clusterer)
        emitted = 0
        for index, batch_end, blocks, skip_rows in pending_batches(
            self.pipeline, self.generators, self.batch_seconds
        ):
            if max_batches is not None and emitted >= max_batches:
                return
            # A crash at a batch boundary: nothing of this batch is durable
            # yet, so the row-driven resume replays it in full.
            faults.maybe_crash("live.batch", now=batch_end)
            self.clock.advance_to(batch_end)
            rows = self.pipeline.ingest_blocks(blocks, skip_rows=skip_rows)
            report, stats = self.pipeline.update(
                workers=self.workers, shards=self.shards
            )
            self.pipeline.set_meta(next_batch_index=index + 1)
            emitted += 1
            yield LiveUpdate(
                batch_index=index,
                virtual_time=self.clock.now,
                blocks_ingested=len(blocks),
                rows_ingested=rows,
                report=report,
                stats=stats,
            )


def tail_crawl(
    pipeline: Pipeline,
    pool: EndpointPool,
    chain: ChainId,
    clock: Optional[SimulationClock] = None,
    max_attempts_per_block: int = 5,
    backfill_blocks: Optional[int] = None,
) -> CrawlReport:
    """Crawl every block above the pipeline's height watermark into the store.

    This is one tick of the paper's resume strategy against live endpoints:
    discover the head, crawl down to (but not below) the last ingested
    height, and stream the new blocks' transactions straight into the
    columnar store through a :class:`~repro.collection.store.FrameSink`.
    The next :meth:`Pipeline.update` then scans exactly those rows.

    A pipeline with no committed rows for ``chain`` has no watermark, so the
    first crawl needs ``backfill_blocks`` to bound how deep below the head
    it reaches — real chain heights start in the tens of millions, and a
    blind crawl to height zero would hammer the endpoints for weeks.

    Failed fetches are never silently lost: the crawl's ``failed_blocks``
    persist in the pipeline meta as the chain's *missing heights*, the sink
    excludes them from its stored-range answer, and every later tick
    retries them before reporting — a transient endpoint failure therefore
    delays a block's rows by a tick instead of dropping them.
    """
    missing = set(pipeline.missing_heights(chain))
    sink = pipeline.sink(chain, missing_heights=missing)
    crawler = BlockCrawler(
        pool, store=sink, clock=clock, max_attempts_per_block=max_attempts_per_block
    )
    head = crawler.discover_head()
    bounds = pipeline.store.height_bounds(chain)
    # The resume frontier is the max of the row-derived height watermark and
    # the persisted crawled head: empty blocks contribute no rows (so no
    # watermark movement), and without the crawled-head cursor every empty
    # block above the last transactional one would be re-fetched each tick.
    crawled_head = pipeline.meta.get(f"crawled_head_{chain.value}")
    frontier = max(
        (height for height in ((bounds[1] if bounds else None), crawled_head)
         if height is not None),
        default=None,
    )
    if frontier is not None:
        lowest = frontier + 1
    elif backfill_blocks is not None:
        lowest = max(head - backfill_blocks + 1, 0)
    else:
        raise CollectionError(
            f"pipeline has no {chain.value} watermark; pass backfill_blocks "
            "to bound the initial crawl depth"
        )
    if head >= lowest:
        report = crawler.crawl_range(highest=head, lowest=lowest)
    else:
        report = CrawlReport(
            chain=chain.value,
            start_height=head,
            end_height=lowest,
            blocks_fetched=0,
            transactions_fetched=0,
            requests_issued=crawler.requests_issued,
            retries=0,
            rate_limit_hits=0,
        )
    # Retry the holes previous ticks left behind (heights already below the
    # watermark, so the tail range above never revisits them).
    still_missing = list(report.failed_blocks)
    for height in sorted(missing):
        if height in sink:
            continue
        try:
            sink.add(crawler.fetch_block(height))
        except CollectionError:
            still_missing.append(height)
    sink.flush()
    pipeline.set_missing_heights(chain, still_missing)
    if head >= lowest:
        pipeline.set_meta(**{f"crawled_head_{chain.value}": head})
    report.failed_blocks = sorted(still_missing)
    return report
