"""Closed-loop soak harness: days of ingest→update→report under a fault plan.

The paper's pipeline earns its keep by surviving the conditions §3.1
describes — flaky public endpoints, rate limits, interrupted crawls — so
this module drives the whole stack through many *simulated days* of
operation while a :mod:`repro.common.faults` plan injects crashes, torn
writes, endpoint outages and worker deaths on a deterministic schedule.

One soak cycle is one simulated day:

1. consume one timed batch from :func:`~repro.pipeline.live.stream_block_batches`
   — consuming the stream bakes the day's blocks into the generator-held
   chain simulations, exactly as a real chain grows underneath a crawler;
2. :func:`~repro.pipeline.live.tail_crawl` each chain through an
   :class:`~repro.collection.endpoints.EndpointPool` of simulated RPC
   endpoints (their intrinsic ``failure_rate`` is zero — *every* failure
   comes from the fault plan, so the schedule is reproducible);
3. :meth:`~repro.pipeline.core.Pipeline.update` refreshes every figure.

An :class:`~repro.common.faults.InjectedCrash` anywhere in the cycle is
treated as process death: the in-memory pipeline is discarded and a fresh
:class:`~repro.pipeline.core.Pipeline` reopens the directory from disk,
exactly like a restarted operator session.  A dead scan worker
(:class:`~repro.common.errors.AnalysisError`) downgrades the cycle to a
serial update.  Recovery attempts per cycle are bounded.

After the last cycle the harness gates the run:

* **fsck** — :func:`repro.pipeline.fsck.run_fsck` must find a clean store;
* **identity** — the final report must equal, figure for figure, an
  oracle run of the same scenario/seed/days with *no* faults installed;
* **no lost or duplicated rows** — durable row counts must match the
  oracle's exactly;
* **flat memory** — tracemalloc's per-cycle footprint must not trend up.

Everything the run did is captured in a byte-reproducible event log: the
same ``--faults`` spec and seed produce the same log, byte for byte.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.report import FullReport
from repro.collection.endpoints import EndpointPool
from repro.common import faults
from repro.common.clock import SECONDS_PER_DAY, SimulationClock
from repro.common.errors import AnalysisError, ReproError
from repro.common.records import ChainId
from repro.common.rng import DeterministicRng
from repro.eos.rpc import EndpointProfile, EosRpcEndpoint
from repro.pipeline.core import Pipeline
from repro.pipeline.fsck import run_fsck
from repro.pipeline.live import scenario_generators, stream_block_batches
from repro.pipeline.live import tail_crawl
from repro.scenarios.registry import get_scenario
from repro.tezos.rpc import TezosRpcEndpoint
from repro.xrp.rpc import XrpRpcEndpoint

#: Endpoints per chain pool.  Two is the minimum that exercises failover.
ENDPOINTS_PER_CHAIN = 2

#: Injected-crash / dead-worker recoveries tolerated within one cycle before
#: the soak itself is declared failed (the "bounded retries" gate).
MAX_RECOVERIES_PER_CYCLE = 8

#: Memory-flatness gate: the last cycle's tracemalloc footprint may exceed the
#: mid-run footprint by at most this factor (plus a small absolute slack so
#: tiny test soaks aren't judged on allocator noise).
MEMORY_FLATNESS_FACTOR = 1.5
MEMORY_FLATNESS_SLACK_BYTES = 4 << 20


class SoakError(ReproError):
    """The soak run violated one of its invariants."""


@dataclass
class SoakCycle:
    """Metrics for one simulated day."""

    day: int
    rows_ingested: int
    rows_total: int
    retries: int
    rate_limit_hits: int
    rescans: int
    crashes: int
    worker_deaths: int
    tracemalloc_bytes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "day": self.day,
            "rows_ingested": self.rows_ingested,
            "rows_total": self.rows_total,
            "retries": self.retries,
            "rate_limit_hits": self.rate_limit_hits,
            "rescans": self.rescans,
            "crashes": self.crashes,
            "worker_deaths": self.worker_deaths,
        }


@dataclass
class SoakResult:
    """Everything a soak run measured, gated, and logged."""

    scale: str
    seed: int
    days_requested: int
    cycles: List[SoakCycle] = field(default_factory=list)
    rows_total: int = 0
    crashes: int = 0
    worker_deaths: int = 0
    retries: int = 0
    rate_limit_hits: int = 0
    rescans: int = 0
    injected_fires: int = 0
    elapsed_seconds: float = 0.0
    peak_rss_kb: int = 0
    memory_flat: bool = True
    fsck_clean: Optional[bool] = None
    identity_ok: Optional[bool] = None
    oracle_rows: Optional[int] = None
    failures: List[str] = field(default_factory=list)
    event_log: str = ""
    report: Optional[FullReport] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def cycles_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.cycles) / self.elapsed_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "days_requested": self.days_requested,
            "cycles": len(self.cycles),
            "rows_total": self.rows_total,
            "crashes": self.crashes,
            "worker_deaths": self.worker_deaths,
            "retries": self.retries,
            "rate_limit_hits": self.rate_limit_hits,
            "rescans": self.rescans,
            "injected_fires": self.injected_fires,
            "elapsed_seconds": self.elapsed_seconds,
            "cycles_per_second": self.cycles_per_second,
            "peak_rss_kb": self.peak_rss_kb,
            "memory_flat": self.memory_flat,
            "fsck_clean": self.fsck_clean,
            "identity_ok": self.identity_ok,
            "oracle_rows": self.oracle_rows,
            "failures": list(self.failures),
            "ok": self.ok,
        }


def _endpoint_profile(name: str) -> EndpointProfile:
    # Generous limits: intrinsic throttling would add nondeterministic noise
    # on top of the fault plan's deliberately injected rate limits.
    return EndpointProfile(
        name=name,
        requests_per_second=10_000.0,
        burst=10_000.0,
        base_latency=0.001,
        failure_rate=0.0,
    )


def _build_pools(generators: Dict[str, object]) -> List[Tuple[ChainId, EndpointPool, Callable[[], int]]]:
    """Per chain: an endpoint pool over the generator's chain sim, plus a
    head accessor used to bound the cold-start crawl depth.

    Real chain heights start in the tens of millions (EOS at ~82M), so the
    first ``tail_crawl`` of each chain must not reach below the scenario's
    starting head — the head accessor lets the cycle loop compute exactly
    how many blocks the simulation has produced so far.
    """
    eos_chain = generators["eos"].chain
    tezos_chain = generators["tezos"].chain
    xrp_ledger = generators["xrp"].ledger
    pools: List[Tuple[ChainId, EndpointPool, Callable[[], int]]] = []
    pools.append(
        (
            ChainId.EOS,
            EndpointPool(
                [
                    EosRpcEndpoint(
                        eos_chain,
                        profile=_endpoint_profile(f"eos-{index}"),
                        rng=DeterministicRng(100 + index),
                    )
                    for index in range(ENDPOINTS_PER_CHAIN)
                ]
            ),
            lambda: eos_chain.head_height,
        )
    )
    pools.append(
        (
            ChainId.TEZOS,
            EndpointPool(
                [
                    TezosRpcEndpoint(
                        tezos_chain,
                        profile=_endpoint_profile(f"tezos-{index}"),
                        rng=DeterministicRng(200 + index),
                    )
                    for index in range(ENDPOINTS_PER_CHAIN)
                ]
            ),
            lambda: tezos_chain.head_level,
        )
    )
    pools.append(
        (
            ChainId.XRP,
            EndpointPool(
                [
                    XrpRpcEndpoint(
                        xrp_ledger,
                        profile=_endpoint_profile(f"xrp-{index}"),
                        rng=DeterministicRng(300 + index),
                    )
                    for index in range(ENDPOINTS_PER_CHAIN)
                ]
            ),
            lambda: xrp_ledger.head_index,
        )
    )
    return pools


def _run_loop(
    root: str,
    days: int,
    scale: str,
    seed: int,
    workers: int,
    chunk_rows: int,
    batch_seconds: float,
    max_recoveries: int,
    result: Optional[SoakResult] = None,
    plan: Optional["faults.FaultPlan"] = None,
) -> Tuple[Pipeline, FullReport]:
    """Drive ``days`` ingest→update cycles into ``root``; return the pipeline.

    When ``result`` is provided, per-cycle metrics are appended to it and the
    cycle loop samples tracemalloc (the caller is expected to have started
    tracing).  With ``result=None`` this is the bare oracle loop.
    """
    scenario = get_scenario(scale, seed=seed)
    generators = scenario_generators(scenario)
    pools = _build_pools(generators)
    # Heads before any batch is consumed: the cold-start crawl floor.
    baselines = {chain: head_fn() for chain, _, head_fn in pools}
    batches = stream_block_batches(generators, batch_seconds)
    clock = SimulationClock(0.0)
    pipeline = Pipeline(root, chunk_rows=chunk_rows)
    report = FullReport()
    for day in range(days):
        batch = next(batches, None)
        if batch is None:
            break  # scenario window exhausted before the requested horizon
        rows_before = pipeline.store.row_count
        cycle_retries = 0
        cycle_rate_limits = 0
        cycle_rescans = 0
        cycle_crashes = 0
        cycle_worker_deaths = 0
        recoveries = 0
        attempt_workers = workers
        while True:
            try:
                for chain, pool, head_fn in pools:
                    # Only consulted while the chain has no watermark yet:
                    # reach exactly down to the scenario's starting head.
                    backfill = max(head_fn() - baselines[chain], 1)
                    crawl = tail_crawl(
                        pipeline,
                        pool,
                        chain,
                        clock=clock,
                        backfill_blocks=backfill,
                    )
                    cycle_retries += crawl.retries
                    cycle_rate_limits += crawl.rate_limit_hits
                report, stats = pipeline.update(workers=attempt_workers)
                if stats.chains_rescanned:
                    cycle_rescans += len(stats.chains_rescanned)
                elif day > 0 and rows_before > 0 and not stats.used_checkpoint:
                    # The durable checkpoint was unusable (corrupted blob,
                    # or discarded after a truncation): the update silently
                    # fell back to a full scan — count it as a rescan.
                    cycle_rescans += 1
                break
            except faults.InjectedCrash as exc:
                cycle_crashes += 1
                recoveries += 1
                if recoveries > max_recoveries:
                    raise SoakError(
                        f"day {day}: recovery budget exhausted after "
                        f"{recoveries} injected crashes"
                    )
                if plan is not None:
                    plan.note(f"recovered day={day} crash: {exc}")
                # Simulated process death: drop all in-memory state and
                # reopen from disk, exactly like a restarted session.
                pipeline = Pipeline(root, chunk_rows=chunk_rows)
            except AnalysisError as exc:
                cycle_worker_deaths += 1
                recoveries += 1
                if recoveries > max_recoveries:
                    raise SoakError(
                        f"day {day}: recovery budget exhausted after worker "
                        f"death: {exc}"
                    )
                if plan is not None:
                    plan.note(f"recovered day={day} worker death; serial retry")
                pipeline = Pipeline(root, chunk_rows=chunk_rows)
                attempt_workers = 0
            except ReproError as exc:
                # Damage beyond the crash-recovery contract — e.g. a silently
                # bit-flipped chunk failing its checksum on read.  Reopening
                # cannot help; stop the soak and let the fsck gate name it.
                if result is None:
                    raise
                result.failures.append(
                    f"day {day}: store unusable mid-soak: {exc}"
                )
                if plan is not None:
                    plan.note(f"aborted day={day} store damage: {exc}")
                return pipeline, report
        if result is not None:
            cycle = SoakCycle(
                day=day,
                rows_ingested=pipeline.store.row_count - rows_before,
                rows_total=pipeline.store.row_count,
                retries=cycle_retries,
                rate_limit_hits=cycle_rate_limits,
                rescans=cycle_rescans,
                crashes=cycle_crashes,
                worker_deaths=cycle_worker_deaths,
                tracemalloc_bytes=tracemalloc.get_traced_memory()[0]
                if tracemalloc.is_tracing()
                else 0,
            )
            result.cycles.append(cycle)
            result.retries += cycle_retries
            result.rate_limit_hits += cycle_rate_limits
            result.rescans += cycle_rescans
            result.crashes += cycle_crashes
            result.worker_deaths += cycle_worker_deaths
    return pipeline, report


def _peak_rss_kb() -> int:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _check_memory_flat(result: SoakResult) -> bool:
    """True when traced memory grows no faster than the stored rows.

    The pipeline legitimately holds a resident frame, so absolute
    allocation grows linearly with the data over a long soak; a *leak*
    is memory outgrowing the rows — recovery state, caches or fault
    bookkeeping surviving the reopens.
    """
    if len(result.cycles) < 4:
        return True
    mid = result.cycles[len(result.cycles) // 2]
    last = result.cycles[-1]
    row_scale = 1.0
    if mid.rows_total > 0:
        row_scale = max(1.0, last.rows_total / mid.rows_total)
    ceiling = (
        mid.tracemalloc_bytes * row_scale * MEMORY_FLATNESS_FACTOR
        + MEMORY_FLATNESS_SLACK_BYTES
    )
    return last.tracemalloc_bytes <= ceiling


def oracle_root_for(root: str) -> str:
    """Sibling directory holding the fault-free oracle pipeline."""
    return root.rstrip(os.sep) + ".oracle"


def run_soak(
    root: str,
    days: int = 50,
    scale: str = "small",
    seed: int = 7,
    plan: Optional["faults.FaultPlan"] = None,
    workers: int = 0,
    chunk_rows: int = 2_000,
    batch_seconds: float = float(SECONDS_PER_DAY),
    oracle: bool = True,
    max_recoveries: int = MAX_RECOVERIES_PER_CYCLE,
) -> SoakResult:
    """Soak the pipeline for ``days`` simulated days under ``plan``.

    Returns a :class:`SoakResult`; ``result.ok`` is False when any invariant
    failed (the specific gates are listed in ``result.failures``).  Raises
    :class:`SoakError` only for an unrecoverable run (recovery budget blown),
    never for a gate failure — callers decide how loudly to fail.
    """
    result = SoakResult(scale=scale, seed=seed, days_requested=days)
    if plan is not None:
        plan.reset()
    started = time.perf_counter()
    own_trace = not tracemalloc.is_tracing()
    if own_trace:
        tracemalloc.start()
    try:
        with faults.use_plan(plan):
            pipeline, report = _run_loop(
                root,
                days,
                scale,
                seed,
                workers,
                chunk_rows,
                batch_seconds,
                max_recoveries,
                result=result,
                plan=plan,
            )
            # Final convergence pass from a cold open: whatever state the
            # fault schedule left behind must produce the same figures as a
            # run that never crashed.  A store a silent corruption left
            # unreadable is a gate failure, not a harness crash — fsck
            # below will name the damage.
            pipeline = Pipeline(root, chunk_rows=chunk_rows)
            try:
                report, stats = pipeline.update(workers=0)
            except ReproError as exc:
                if isinstance(exc, (faults.InjectedCrash, SoakError)):
                    raise
                result.failures.append(f"store unusable after the soak: {exc}")
            else:
                if stats.chains_rescanned:
                    result.rescans += len(stats.chains_rescanned)
                elif pipeline.store.row_count > 0 and not stats.used_checkpoint:
                    # The schedule corrupted the checkpoint on its final
                    # save: the cold open fell back to a full scan.
                    result.rescans += 1
    finally:
        if own_trace:
            tracemalloc.stop()
    result.elapsed_seconds = time.perf_counter() - started
    result.rows_total = pipeline.store.row_count
    result.report = report
    result.peak_rss_kb = _peak_rss_kb()
    result.injected_fires = plan.total_fires if plan is not None else 0
    result.memory_flat = _check_memory_flat(result)
    if not result.memory_flat:
        result.failures.append("tracemalloc footprint trended upward across cycles")

    fsck_report = run_fsck(root)
    result.fsck_clean = fsck_report.clean
    if not fsck_report.clean:
        details = "; ".join(issue.detail for issue in fsck_report.issues[:3])
        result.failures.append(f"fsck found damage after the soak: {details}")

    if oracle:
        with faults.use_plan(None):
            oracle_pipeline, oracle_report = _run_loop(
                oracle_root_for(root),
                days,
                scale,
                seed,
                0,
                chunk_rows,
                batch_seconds,
                max_recoveries,
            )
            oracle_report, _ = oracle_pipeline.update(workers=0)
        result.oracle_rows = oracle_pipeline.store.row_count
        if result.rows_total != result.oracle_rows:
            result.failures.append(
                f"row count diverged: soak={result.rows_total} "
                f"oracle={result.oracle_rows} (lost or duplicated rows)"
            )
        result.identity_ok = report == oracle_report
        if not result.identity_ok:
            result.failures.append(
                "final report is not figure-for-figure identical to the "
                "fault-free oracle run"
            )

    if plan is not None:
        result.event_log = plan.event_log()
    return result
