"""Canonical scenario configurations.

A *scenario* bundles the workload configurations for the three chains at a
given scale.  The paper-period scenario covers the full 2019-10-01 →
2019-12-31 observation window; the small scenario shrinks the window and the
per-day volume so unit tests run in milliseconds while exercising the same
code paths.
"""

from repro.scenarios.paper import (
    PaperScenario,
    paper_scenario,
    small_scenario,
    medium_scenario,
)

__all__ = [
    "PaperScenario",
    "medium_scenario",
    "paper_scenario",
    "small_scenario",
]
