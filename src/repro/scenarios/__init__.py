"""Canonical scenario configurations.

A *scenario* bundles the workload configurations for the three chains at a
given scale.  The paper-period scenario covers the full 2019-10-01 →
2019-12-31 observation window; the small scenario shrinks the window and the
per-day volume so unit tests run in milliseconds while exercising the same
code paths.  The registry adds named lookup plus stress scenarios
(``eidos_flood``, ``spam_storm``) that exercise the streaming ingest and
single-pass engine at scale.
"""

from repro.scenarios.paper import (
    PaperScenario,
    paper_scenario,
    small_scenario,
    medium_scenario,
)
from repro.scenarios.registry import (
    eidos_flood,
    get_scenario,
    register_scenario,
    scenario_names,
    spam_storm,
)

__all__ = [
    "PaperScenario",
    "eidos_flood",
    "get_scenario",
    "medium_scenario",
    "paper_scenario",
    "register_scenario",
    "scenario_names",
    "small_scenario",
    "spam_storm",
]
