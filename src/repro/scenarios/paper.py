"""The paper-period scenario and its scaled-down variants.

Every scenario records its *scale factor*: the fraction of the paper's real
per-day transaction volume the workload generates.  Analyses that compare
against the paper's absolute numbers (TPS, storage) divide by the scale
factor; analyses of shares and rankings need no adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.clock import SECONDS_PER_DAY, timestamp_from_iso
from repro.eos.workload import EosWorkloadConfig
from repro.tezos.workload import TezosWorkloadConfig
from repro.xrp.workload import XrpWorkloadConfig

#: Real average transactions per day during the observation window, derived
#: from Figure 2 (transactions / days); used to compute scale factors.
REAL_TRANSACTIONS_PER_DAY: Dict[str, float] = {
    "eos": 376_819_512 / 95.0,
    "tezos": 3_345_019 / 93.0,
    "xrp": 151_324_595 / 92.0,
}


@dataclass(frozen=True)
class PaperScenario:
    """Workload configurations for the three chains plus scale bookkeeping."""

    name: str
    eos: EosWorkloadConfig
    tezos: TezosWorkloadConfig
    xrp: XrpWorkloadConfig
    #: Number of time windows the observation period is split into for
    #: shard-parallel dataset generation (see
    #: :mod:`repro.collection.generate`).  ``1`` keeps the classic serial
    #: path; the windowed dataset is *canonical* for tiers that set it
    #: higher — worker count only affects wall-clock, never content.
    generation_windows: int = 1

    @property
    def scale_factors(self) -> Dict[str, float]:
        """Per-chain fraction of the paper's real daily transaction volume.

        The EOS factor accounts for the post-launch EIDOS multiplier and the
        XRP factor for the spam-wave multipliers, because the paper's real
        per-day averages include those events.
        """
        eos = self.eos
        pre_days = max(
            0.0, (eos.eidos_launch_timestamp - eos.start_timestamp) / SECONDS_PER_DAY
        )
        pre_days = min(pre_days, eos.total_days)
        post_days = eos.total_days - pre_days
        eos_daily_average = (
            eos.transactions_per_day
            * (pre_days + post_days * eos.eidos_traffic_multiplier)
            / eos.total_days
        )

        xrp = self.xrp
        wave_extra_days = sum(
            max(
                0.0,
                (
                    min(timestamp_from_iso(end), xrp.end_timestamp)
                    - max(timestamp_from_iso(start), xrp.start_timestamp)
                )
                / SECONDS_PER_DAY,
            )
            * (intensity - 1.0)
            for start, end, intensity in xrp.spam_waves
        )
        xrp_daily_average = (
            xrp.transactions_per_day * (xrp.total_days + wave_extra_days) / xrp.total_days
        )

        tezos_total_per_day = (
            self.tezos.manager_operations_per_block + 32.0
        ) * self.tezos.blocks_per_day
        return {
            "eos": eos_daily_average / REAL_TRANSACTIONS_PER_DAY["eos"],
            "tezos": tezos_total_per_day / REAL_TRANSACTIONS_PER_DAY["tezos"],
            "xrp": xrp_daily_average / REAL_TRANSACTIONS_PER_DAY["xrp"],
        }


def paper_scenario(seed: int = 7) -> PaperScenario:
    """The full three-month observation window at the default (reduced) scale."""
    return PaperScenario(
        name="paper-period",
        eos=EosWorkloadConfig(seed=seed),
        tezos=TezosWorkloadConfig(seed=seed + 1),
        xrp=XrpWorkloadConfig(seed=seed + 2),
    )


def medium_scenario(seed: int = 7) -> PaperScenario:
    """The full 92-day window at reduced per-day volume (benchmark scale).

    Keeping the whole observation window preserves the temporal shapes the
    figures rely on (the EIDOS launch two-thirds of the way in, both XRP spam
    waves, the Babylon promotion) while the reduced daily volume keeps the
    one-off generation cost of the benchmark session in the tens of seconds.
    """
    return PaperScenario(
        name="full-window-benchmark",
        eos=EosWorkloadConfig(
            transactions_per_day=150,
            blocks_per_day=8,
            user_account_count=120,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            blocks_per_day=12,
            baker_count=12,
            user_account_count=200,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            transactions_per_day=600,
            ledgers_per_day=8,
            ordinary_account_count=100,
            spam_accounts_per_wave=30,
            seed=seed + 2,
        ),
    )


def large_scenario(seed: int = 7) -> PaperScenario:
    """The full window at out-of-core scale (~15M rows, window-sharded).

    Built for the out-of-core chunk engine: the generated frame is too big
    to analyse comfortably in one resident pass, so generation is split
    into 8 per-chain time windows (sharded across processes) and analysis
    streams committed chunks.  The windowed dataset is the canonical
    definition of the tier — ``generate_sharded`` with any worker count
    produces identical rows.
    """
    return PaperScenario(
        name="full-window-large",
        eos=EosWorkloadConfig(
            transactions_per_day=8_000,
            blocks_per_day=48,
            user_account_count=400,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            blocks_per_day=144,
            baker_count=12,
            user_account_count=400,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            transactions_per_day=35_000,
            ledgers_per_day=24,
            ordinary_account_count=300,
            spam_accounts_per_wave=60,
            seed=seed + 2,
        ),
        generation_windows=8,
    )


def huge_scenario(seed: int = 7) -> PaperScenario:
    """The full window at roughly 4× the ``large`` tier (~60M rows)."""
    return PaperScenario(
        name="full-window-huge",
        eos=EosWorkloadConfig(
            transactions_per_day=32_000,
            blocks_per_day=96,
            user_account_count=600,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            blocks_per_day=576,
            baker_count=12,
            user_account_count=600,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            transactions_per_day=140_000,
            ledgers_per_day=48,
            ordinary_account_count=400,
            spam_accounts_per_wave=80,
            seed=seed + 2,
        ),
        generation_windows=16,
    )


def small_scenario(seed: int = 7) -> PaperScenario:
    """Two weeks straddling the EIDOS launch and the first spam wave (tests)."""
    return PaperScenario(
        name="two-weeks",
        eos=EosWorkloadConfig(
            start_date="2019-10-25",
            end_date="2019-11-08",
            transactions_per_day=600,
            blocks_per_day=8,
            user_account_count=60,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            start_date="2019-10-25",
            end_date="2019-11-08",
            blocks_per_day=8,
            baker_count=8,
            user_account_count=80,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            start_date="2019-10-25",
            end_date="2019-11-08",
            transactions_per_day=800,
            ledgers_per_day=8,
            ordinary_account_count=60,
            spam_accounts_per_wave=20,
            seed=seed + 2,
        ),
    )
