"""Named scenario registry, including stress scenarios for the engine.

Scenarios are registered as factories taking a ``seed`` so every lookup
produces a fresh, independently seeded configuration.  The built-in entries
cover the paper-period scenario and its scaled variants plus two stress
scenarios designed to hammer the streaming ingest and single-pass engine:

* ``eidos_flood`` — the EIDOS launch with a 10× multiplier on the paper's
  >10× traffic explosion, concentrating almost the whole window's volume
  into boomerang claims (worst case for the airdrop detector and the
  throughput binning).
* ``spam_storm`` — three deliberately *overlapping* XRP spam waves whose
  extra traffic stacks additively, producing a sustained payment storm
  (worst case for the zero-value counters and the spam-wave accounting in
  ``PaperScenario.scale_factors``).
* ``live_tail`` — a dense short window built for the incremental ingestion
  pipeline: all three chains emit blocks continuously, so when the stream
  is cut into timed batches (see
  :func:`repro.pipeline.live.stream_block_batches`) every batch carries
  traffic on every chain — the stress case for checkpointed accumulators
  and live figure updates.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List, Optional

from repro.common.errors import AnalysisError
from repro.eos.workload import EosWorkloadConfig
from repro.scenarios.paper import (
    PaperScenario,
    huge_scenario,
    large_scenario,
    medium_scenario,
    paper_scenario,
    small_scenario,
)
from repro.tezos.workload import TezosWorkloadConfig
from repro.xrp.workload import XrpWorkloadConfig

ScenarioFactory = Callable[[int], PaperScenario]

_REGISTRY: Dict[str, ScenarioFactory] = {}


def register_scenario(
    name: str, factory: Optional[ScenarioFactory] = None, overwrite: bool = False
):
    """Register a scenario factory under ``name`` (usable as a decorator)."""

    def _register(fn: ScenarioFactory) -> ScenarioFactory:
        if not overwrite and name in _REGISTRY:
            raise AnalysisError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str, seed: int = 7) -> PaperScenario:
    """Instantiate the named scenario with the given seed.

    Unknown names raise :class:`~repro.common.errors.AnalysisError` listing
    every registered scenario (and the closest match, when one exists) —
    never a bare ``KeyError`` — so CLI and library callers get an actionable
    message.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        names = scenario_names()
        close = difflib.get_close_matches(name, names, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise AnalysisError(
            f"unknown scenario {name!r}{hint}; registered: {', '.join(names)}"
        ) from None
    return factory(seed)


register_scenario("paper", paper_scenario)
register_scenario("medium", medium_scenario)
register_scenario("small", small_scenario)
register_scenario("large", large_scenario)
register_scenario("huge", huge_scenario)


@register_scenario("eidos_flood")
def eidos_flood(seed: int = 7) -> PaperScenario:
    """EIDOS launch stress test: a 10× multiplier on the paper's explosion.

    The window straddles the launch so the pre-launch baseline stays visible,
    but once EIDOS goes live the per-day volume jumps by 120× (the paper's
    >10× multiplier, scaled up tenfold) with 97 % of actions being boomerang
    claims.  At the default per-day volume this produces hundreds of
    thousands of actions from a month of simulated time — enough to make a
    multi-pass analysis visibly slower than the streaming engine.
    """
    return PaperScenario(
        name="eidos-flood",
        eos=EosWorkloadConfig(
            start_date="2019-10-20",
            end_date="2019-11-20",
            transactions_per_day=400,
            eidos_traffic_multiplier=120.0,
            eidos_share=0.97,
            blocks_per_day=12,
            user_account_count=150,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            start_date="2019-10-20",
            end_date="2019-11-20",
            blocks_per_day=8,
            baker_count=8,
            user_account_count=100,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            start_date="2019-10-20",
            end_date="2019-11-20",
            transactions_per_day=400,
            ledgers_per_day=8,
            ordinary_account_count=60,
            spam_accounts_per_wave=20,
            seed=seed + 2,
        ),
    )


@register_scenario("live_tail")
def live_tail(seed: int = 7) -> PaperScenario:
    """Live-tail stress test: dense multi-chain traffic in timed batches.

    Ten days straddling the EIDOS launch, with enough blocks per day on all
    three chains that every 6-hour batch of the incremental pipeline's
    watch loop carries fresh traffic everywhere: EOS volume explodes
    mid-window (the checkpointed throughput bins must keep up), an XRP spam
    wave ramps the zero-value counters, and Tezos keeps endorsing in the
    background.  Built for ``python -m repro watch``.
    """
    return PaperScenario(
        name="live-tail",
        eos=EosWorkloadConfig(
            start_date="2019-10-28",
            end_date="2019-11-07",
            transactions_per_day=500,
            blocks_per_day=16,
            user_account_count=60,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            start_date="2019-10-28",
            end_date="2019-11-07",
            blocks_per_day=16,
            baker_count=8,
            user_account_count=80,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            start_date="2019-10-28",
            end_date="2019-11-07",
            transactions_per_day=700,
            ledgers_per_day=16,
            ordinary_account_count=60,
            spam_accounts_per_wave=20,
            seed=seed + 2,
        ),
    )


@register_scenario("spam_storm")
def spam_storm(seed: int = 7) -> PaperScenario:
    """XRP spam stress test: three overlapping waves stacking additively.

    The waves overlap through most of November, so the combined intensity
    peaks at ``1 + (3-1) + (4-1) + (2-1) = 8×`` the base payment volume;
    the generator's wave stacking and the scale-factor day accounting must
    agree for the extrapolated TPS to stay meaningful.
    """
    return PaperScenario(
        name="spam-storm",
        eos=EosWorkloadConfig(
            start_date="2019-10-15",
            end_date="2019-12-15",
            transactions_per_day=300,
            blocks_per_day=8,
            user_account_count=80,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            start_date="2019-10-15",
            end_date="2019-12-15",
            blocks_per_day=8,
            baker_count=8,
            user_account_count=100,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            start_date="2019-10-15",
            end_date="2019-12-15",
            transactions_per_day=1_200,
            ledgers_per_day=16,
            ordinary_account_count=120,
            spam_accounts_per_wave=60,
            spam_waves=(
                ("2019-10-25", "2019-11-25", 3.0),
                ("2019-11-05", "2019-12-05", 4.0),
                ("2019-11-15", "2019-11-20", 2.0),
            ),
            seed=seed + 2,
        ),
    )
