"""Tezos substrate: LPoS chain simulator, governance, RPC and workload.

The paper's Tezos measurement depends on the following behaviours:

* **Liquid Proof-of-Stake baking** — any account holding at least one roll
  (10,000 XTZ) can bake; every block must carry at least 32 endorsement
  operations before it is accepted (:mod:`repro.tezos.baking`).
* **Account model** — implicit (``tz1...``) accounts that can bake, and
  originated (``KT1...``) accounts that can act as contracts and delegate
  (:mod:`repro.tezos.accounts`).
* **Operation kinds** — endorsements, transactions, originations, reveals,
  delegations, activations, ballots, proposals
  (:mod:`repro.tezos.operations`).
* **On-chain governance** — the four voting periods and the Babylon 2.0
  amendment timeline analysed in §4.2 (:mod:`repro.tezos.governance`).
* **RPC and workload** — a node RPC endpoint serving blocks, plus a
  calibrated workload where ~82 % of operations are endorsements
  (:mod:`repro.tezos.rpc`, :mod:`repro.tezos.workload`).
"""

from repro.tezos.accounts import TezosAccount, TezosAccountRegistry
from repro.tezos.baking import BakerSet, ENDORSEMENTS_PER_BLOCK, ROLL_SIZE_XTZ
from repro.tezos.chain import TezosChain, TezosChainConfig
from repro.tezos.governance import AmendmentProcess, VotingPeriodKind
from repro.tezos.rpc import TezosRpcEndpoint
from repro.tezos.workload import TezosWorkloadConfig, TezosWorkloadGenerator

__all__ = [
    "AmendmentProcess",
    "BakerSet",
    "ENDORSEMENTS_PER_BLOCK",
    "ROLL_SIZE_XTZ",
    "TezosAccount",
    "TezosAccountRegistry",
    "TezosChain",
    "TezosChainConfig",
    "TezosRpcEndpoint",
    "TezosWorkloadConfig",
    "TezosWorkloadGenerator",
    "VotingPeriodKind",
]
