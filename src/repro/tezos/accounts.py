"""Tezos account model: implicit and originated accounts.

Tezos has two account kinds (§2.3.2):

* **Implicit** accounts (``tz1...`` addresses) are derived from a key pair.
  They can bake blocks and receive delegations, but cannot hold code.
* **Originated** accounts (``KT1...`` addresses) are created by implicit
  accounts, can act as smart contracts, and can delegate their stake to a
  baker's implicit account.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.errors import ChainError
from repro.common.rng import DeterministicRng

IMPLICIT_PREFIX = "tz1"
ORIGINATED_PREFIX = "KT1"
ADDRESS_BODY_LENGTH = 33

_BASE58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"


class TezosAccountKind(str, enum.Enum):
    IMPLICIT = "implicit"
    ORIGINATED = "originated"


def generate_address(rng: DeterministicRng, kind: TezosAccountKind) -> str:
    """Generate a syntactically plausible Tezos address of the given kind."""
    prefix = IMPLICIT_PREFIX if kind is TezosAccountKind.IMPLICIT else ORIGINATED_PREFIX
    body = "".join(rng.choice(_BASE58_ALPHABET) for _ in range(ADDRESS_BODY_LENGTH))
    return prefix + body


def is_implicit_address(address: str) -> bool:
    return address.startswith(("tz1", "tz2", "tz3"))


def is_originated_address(address: str) -> bool:
    return address.startswith("KT1")


@dataclass
class TezosAccount:
    """One Tezos account (implicit or originated)."""

    address: str
    kind: TezosAccountKind
    balance_xtz: float = 0.0
    delegate: Optional[str] = None
    revealed: bool = False
    activated: bool = False
    manager: Optional[str] = None
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is TezosAccountKind.IMPLICIT and not is_implicit_address(self.address):
            raise ChainError(f"implicit account needs a tz address: {self.address!r}")
        if self.kind is TezosAccountKind.ORIGINATED and not is_originated_address(self.address):
            raise ChainError(f"originated account needs a KT1 address: {self.address!r}")

    @property
    def can_bake(self) -> bool:
        """Only implicit accounts can bake (§2.3.2)."""
        return self.kind is TezosAccountKind.IMPLICIT

    def credit(self, amount: float) -> None:
        if amount < 0:
            raise ChainError("credit amount must be non-negative")
        self.balance_xtz += amount

    def debit(self, amount: float) -> None:
        if amount < 0:
            raise ChainError("debit amount must be non-negative")
        if self.balance_xtz + 1e-9 < amount:
            raise ChainError(
                f"insufficient balance on {self.address}: {self.balance_xtz} < {amount}"
            )
        self.balance_xtz -= amount


class TezosAccountRegistry:
    """All Tezos accounts, indexed by address."""

    def __init__(self, rng: Optional[DeterministicRng] = None):
        self._rng = rng or DeterministicRng(0)
        self._accounts: Dict[str, TezosAccount] = {}

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, address: str) -> bool:
        return address in self._accounts

    def get(self, address: str) -> TezosAccount:
        account = self._accounts.get(address)
        if account is None:
            raise ChainError(f"unknown Tezos account: {address!r}")
        return account

    def maybe_get(self, address: str) -> Optional[TezosAccount]:
        return self._accounts.get(address)

    def create_implicit(
        self, balance: float = 0.0, created_at: float = 0.0, address: Optional[str] = None
    ) -> TezosAccount:
        """Create an implicit account (optionally at a fixed address)."""
        if address is None:
            address = generate_address(self._rng, TezosAccountKind.IMPLICIT)
        if address in self._accounts:
            raise ChainError(f"Tezos account already exists: {address!r}")
        account = TezosAccount(
            address=address,
            kind=TezosAccountKind.IMPLICIT,
            balance_xtz=balance,
            created_at=created_at,
        )
        self._accounts[address] = account
        return account

    def originate(
        self,
        manager: str,
        balance: float = 0.0,
        created_at: float = 0.0,
        address: Optional[str] = None,
    ) -> TezosAccount:
        """Originate a contract account managed by ``manager`` (implicit)."""
        manager_account = self.get(manager)
        if manager_account.kind is not TezosAccountKind.IMPLICIT:
            raise ChainError("only implicit accounts can originate contracts")
        if address is None:
            address = generate_address(self._rng, TezosAccountKind.ORIGINATED)
        if address in self._accounts:
            raise ChainError(f"Tezos account already exists: {address!r}")
        account = TezosAccount(
            address=address,
            kind=TezosAccountKind.ORIGINATED,
            balance_xtz=balance,
            manager=manager,
            created_at=created_at,
        )
        self._accounts[address] = account
        return account

    def delegate(self, delegator: str, baker: str) -> None:
        """Point ``delegator``'s stake at ``baker`` (must be implicit)."""
        baker_account = self.get(baker)
        if not baker_account.can_bake:
            raise ChainError("delegation target must be an implicit account")
        self.get(delegator).delegate = baker

    def addresses(self) -> List[str]:
        return sorted(self._accounts)

    def accounts(self) -> Iterable[TezosAccount]:
        return self._accounts.values()

    def implicit_accounts(self) -> List[TezosAccount]:
        return [acc for acc in self._accounts.values() if acc.kind is TezosAccountKind.IMPLICIT]

    def originated_accounts(self) -> List[TezosAccount]:
        return [acc for acc in self._accounts.values() if acc.kind is TezosAccountKind.ORIGINATED]

    def staking_balance(self, baker: str) -> float:
        """Baker's own balance plus everything delegated to it."""
        own = self.get(baker).balance_xtz
        delegated = sum(
            account.balance_xtz
            for account in self._accounts.values()
            if account.delegate == baker and account.address != baker
        )
        return own + delegated

    def staking_balances(self) -> Dict[str, float]:
        """Staking balance of every implicit account, computed in one pass.

        Equivalent to calling :meth:`staking_balance` for each implicit
        account but O(accounts) overall, which matters once airdrop-style
        workloads have created tens of thousands of accounts.
        """
        balances: Dict[str, float] = {
            account.address: account.balance_xtz
            for account in self._accounts.values()
            if account.kind is TezosAccountKind.IMPLICIT
        }
        for account in self._accounts.values():
            delegate = account.delegate
            if delegate and delegate != account.address and delegate in balances:
                balances[delegate] += account.balance_xtz
        return balances

    def total_supply(self) -> float:
        return sum(account.balance_xtz for account in self._accounts.values())
