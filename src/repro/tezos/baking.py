"""Liquid Proof-of-Stake baking and the endorsement rule.

Tezos' LPoS lets the baker set grow and shrink dynamically: any implicit
account whose staking balance (own funds plus delegations) reaches one roll
— 10,000 XTZ — may bake (§2.2).  A baked block must collect at least 32
endorsements from the endorsement-slot holders of that level before it is
accepted; endorsements are themselves operations and are what dominates the
chain's throughput (82 % of operations, Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ChainError
from repro.common.rng import DeterministicRng
from repro.tezos.accounts import TezosAccountRegistry

#: Minimum staking balance required to bake (one roll), in XTZ.
ROLL_SIZE_XTZ = 10_000.0

#: Minimum endorsements a block must carry to be accepted (§2.3.2).
ENDORSEMENTS_PER_BLOCK = 32


@dataclass(frozen=True)
class BakingRight:
    """The right to bake (or endorse) a given level."""

    level: int
    baker: str
    priority: int = 0


class BakerSet:
    """The dynamic set of eligible bakers and their slot assignment."""

    def __init__(self, registry: TezosAccountRegistry, rng: Optional[DeterministicRng] = None):
        self.registry = registry
        self.rng = rng or DeterministicRng(0)
        self._weights_cache: Dict[str, float] = {}
        self._weights_cache_key: int = -1

    def eligible_bakers(self) -> List[str]:
        """Addresses allowed to bake: implicit accounts holding >= one roll."""
        balances = self.registry.staking_balances()
        return sorted(
            address for address, balance in balances.items() if balance >= ROLL_SIZE_XTZ
        )

    def rolls(self, baker: str) -> int:
        """Number of rolls backing ``baker`` (drives selection probability)."""
        return int(self.registry.staking_balance(baker) // ROLL_SIZE_XTZ)

    def _weights(self) -> Dict[str, float]:
        # One pass over the registry per account-set change; the two slot
        # selections a block performs (baker + endorsers) share the result.
        cache_key = len(self.registry)
        if cache_key != self._weights_cache_key:
            balances = self.registry.staking_balances()
            self._weights_cache = {
                address: float(int(balance // ROLL_SIZE_XTZ))
                for address, balance in balances.items()
                if balance >= ROLL_SIZE_XTZ
            }
            self._weights_cache_key = cache_key
        return self._weights_cache

    def baking_right(self, level: int) -> BakingRight:
        """Select the priority-0 baker for ``level``, weighted by rolls."""
        weights = self._weights()
        if not weights:
            raise ChainError("no eligible bakers: every baker is below one roll")
        baker = self.rng.categorical(weights)
        return BakingRight(level=level, baker=baker, priority=0)

    def endorsement_rights(self, level: int, slots: int = ENDORSEMENTS_PER_BLOCK) -> List[str]:
        """Select the holders of the ``slots`` endorsement slots for ``level``.

        A baker with more rolls receives proportionally more slots, so large
        bakers appear several times in the returned list — as on the real
        chain, where one endorsement operation can cover multiple slots.
        """
        weights = self._weights()
        if not weights:
            raise ChainError("no eligible bakers: every baker is below one roll")
        return [self.rng.categorical(weights) for _ in range(slots)]

    def validate_endorsements(self, endorsers: Sequence[str]) -> bool:
        """A block is valid only with at least 32 endorsement slots filled."""
        return len(endorsers) >= ENDORSEMENTS_PER_BLOCK
