"""Tezos chain simulator: block baking with the 32-endorsement rule.

The simulated chain assembles blocks from submitted operations.  Every block
automatically carries the endorsement operations of the previous level
(at least 32 of them), which is why consensus maintenance dominates the
chain's measured throughput (Figure 1, Figure 3b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.clock import SimulationClock
from repro.common.errors import ChainError
from repro.common.records import BlockRecord, ChainId, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.tezos.accounts import TezosAccountRegistry
from repro.tezos.baking import BakerSet, ENDORSEMENTS_PER_BLOCK
from repro.tezos.operations import (
    OperationKind,
    TezosOperation,
    make_endorsement,
)

#: Average block interval in late 2019 (~60 seconds).
BLOCK_INTERVAL_SECONDS = 60.0


@dataclass
class TezosChainConfig:
    """Static parameters of the simulated Tezos chain."""

    chain_start: float = 0.0
    start_level: int = 1
    block_interval: float = BLOCK_INTERVAL_SECONDS
    endorsements_per_block: int = ENDORSEMENTS_PER_BLOCK
    #: Starting value of the operation-id counter, so window-sharded
    #: generation can carve disjoint id ranges per shard.
    operation_id_offset: int = 0


class TezosChain:
    """The simulated Tezos blockchain."""

    def __init__(
        self,
        config: Optional[TezosChainConfig] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.config = config or TezosChainConfig()
        self.rng = rng or DeterministicRng(0)
        self.clock = SimulationClock(self.config.chain_start)
        self.accounts = TezosAccountRegistry(rng=self.rng.fork("accounts"))
        self.bakers = BakerSet(self.accounts, rng=self.rng.fork("baking"))
        self.blocks: List[BlockRecord] = []
        self._level = self.config.start_level - 1
        self._operation_counter = self.config.operation_id_offset

    @property
    def head_level(self) -> int:
        return self._level

    def _next_operation_id(self) -> str:
        self._operation_counter += 1
        return f"xtzop{self._operation_counter:012d}"

    # -- state transition for manager operations ---------------------------------
    def _apply_operation(self, operation: TezosOperation, timestamp: float) -> Dict[str, object]:
        notes: Dict[str, object] = {}
        kind = operation.kind
        if kind is OperationKind.TRANSACTION:
            source = self.accounts.maybe_get(operation.source)
            destination = self.accounts.maybe_get(operation.destination)
            if source is None or destination is None:
                raise ChainError("transaction references an unknown account")
            source.debit(operation.amount_xtz + operation.fee_xtz)
            destination.credit(operation.amount_xtz)
        elif kind is OperationKind.DELEGATION:
            self.accounts.delegate(operation.source, operation.destination)
        elif kind is OperationKind.ORIGINATION:
            originated = self.accounts.originate(
                operation.source, balance=operation.amount_xtz, created_at=timestamp
            )
            notes["originated"] = originated.address
        elif kind is OperationKind.REVEAL:
            self.accounts.get(operation.source).revealed = True
        elif kind is OperationKind.ACTIVATE:
            account = self.accounts.maybe_get(operation.source)
            if account is None:
                account = self.accounts.create_implicit(
                    balance=0.0, created_at=timestamp, address=operation.source
                )
            account.activated = True
            account.credit(operation.amount_xtz)
        # Endorsements, ballots, proposals and evidence only affect consensus
        # and governance bookkeeping, not account balances.
        return notes

    def _record_for_operation(
        self,
        operation: TezosOperation,
        level: int,
        timestamp: float,
        success: bool,
        notes: Dict[str, object],
    ) -> TransactionRecord:
        metadata = dict(operation.data)
        metadata.update(notes)
        metadata["category"] = operation.category.value
        return TransactionRecord(
            chain=ChainId.TEZOS,
            transaction_id=self._next_operation_id(),
            block_height=level,
            timestamp=timestamp,
            type=operation.kind.value,
            sender=operation.source,
            receiver=operation.destination,
            amount=operation.amount_xtz,
            currency="XTZ" if operation.amount_xtz else "",
            fee=operation.fee_xtz,
            success=success,
            metadata=metadata,
        )

    # -- baking --------------------------------------------------------------------
    def bake_block(
        self,
        operations: Iterable[TezosOperation],
        endorsers: Optional[Sequence[str]] = None,
    ) -> BlockRecord:
        """Bake the next block carrying ``operations`` plus the endorsements.

        ``endorsers`` overrides the endorsement-slot selection (used by tests
        to exercise the "fewer than 32 endorsements" rejection path).
        """
        level = self._level + 1
        timestamp = self.clock.now
        baking_right = self.bakers.baking_right(level)
        if endorsers is None:
            endorsers = self.bakers.endorsement_rights(level, self.config.endorsements_per_block)
        if not self.bakers.validate_endorsements(endorsers):
            raise ChainError(
                f"block at level {level} carries {len(endorsers)} endorsements,"
                f" fewer than the required {ENDORSEMENTS_PER_BLOCK}"
            )
        records: List[TransactionRecord] = []
        # Endorsements of the previous level come first, as on the real chain.
        for endorser in endorsers:
            endorsement = make_endorsement(endorser, endorsed_level=level - 1)
            records.append(
                self._record_for_operation(endorsement, level, timestamp, True, {})
            )
        for operation in operations:
            try:
                notes = self._apply_operation(operation, timestamp)
                success = True
            except ChainError as exc:
                notes = {"error": str(exc)}
                success = False
            records.append(
                self._record_for_operation(operation, level, timestamp, success, notes)
            )
        block = BlockRecord(
            chain=ChainId.TEZOS,
            height=level,
            timestamp=timestamp,
            producer=baking_right.baker,
            transactions=tuple(records),
            block_id=self.rng.hex_string(51),
            previous_id=self.blocks[-1].block_id if self.blocks else "",
            metadata={"endorsement_count": len(endorsers)},
        )
        self.blocks.append(block)
        self._level = level
        self.clock.advance(self.config.block_interval)
        return block

    def block_at(self, level: int) -> BlockRecord:
        index = level - self.config.start_level
        if index < 0 or index >= len(self.blocks):
            raise ChainError(f"Tezos block {level} has not been baked")
        return self.blocks[index]

    def head(self) -> Optional[BlockRecord]:
        return self.blocks[-1] if self.blocks else None
