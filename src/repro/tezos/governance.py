"""Tezos on-chain governance: voting periods and the amendment process.

Tezos governance runs in four consecutive periods (§4.2):

1. **Proposal** — bakers submit and upvote amendment proposals; the proposal
   with the most votes advances.
2. **Exploration** — bakers vote ``yay`` / ``nay`` / ``pass``; a dynamic
   quorum and super-majority must be reached.
3. **Testing** — the winning proposal runs on a test network (no votes).
4. **Promotion** — a second ``yay``/``nay``/``pass`` vote; success deploys
   the proposal to the main network.

The module also ships the Babylon 2.0 timeline the paper analyses in
Figure 9 (proposed 2019-08-02, promoted 2019-10-18), so the governance
analysis and its benchmark can regenerate the three vote-evolution series.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.clock import SECONDS_PER_DAY, timestamp_from_iso
from repro.common.errors import ChainError


class VotingPeriodKind(str, enum.Enum):
    PROPOSAL = "proposal"
    EXPLORATION = "exploration"
    TESTING = "testing"
    PROMOTION = "promotion"


class BallotChoice(str, enum.Enum):
    YAY = "yay"
    NAY = "nay"
    PASS = "pass"


#: Period order; after a successful promotion the cycle restarts.
PERIOD_SEQUENCE: Tuple[VotingPeriodKind, ...] = (
    VotingPeriodKind.PROPOSAL,
    VotingPeriodKind.EXPLORATION,
    VotingPeriodKind.TESTING,
    VotingPeriodKind.PROMOTION,
)


@dataclass
class BallotTally:
    """Running tally of one ballot-based period."""

    yay: int = 0
    nay: int = 0
    passes: int = 0

    @property
    def total(self) -> int:
        return self.yay + self.nay + self.passes

    @property
    def approval_rate(self) -> float:
        """Yay share among non-pass ballots (the super-majority criterion)."""
        decided = self.yay + self.nay
        if decided == 0:
            return 0.0
        return self.yay / decided

    def participation(self, total_rolls: int) -> float:
        """Participation rate given the electorate size in rolls."""
        if total_rolls <= 0:
            return 0.0
        return min(1.0, self.total / total_rolls)


@dataclass
class AmendmentProcess:
    """State machine for one amendment cycle.

    Parameters
    ----------
    total_rolls:
        Size of the electorate (number of rolls across all bakers).
    quorum:
        Minimum participation rate for ballot periods.
    supermajority:
        Minimum yay share among non-pass ballots.
    """

    total_rolls: int
    quorum: float = 0.5
    supermajority: float = 0.8
    period: VotingPeriodKind = VotingPeriodKind.PROPOSAL
    proposal_votes: Dict[str, int] = field(default_factory=dict)
    selected_proposal: Optional[str] = None
    exploration_tally: BallotTally = field(default_factory=BallotTally)
    promotion_tally: BallotTally = field(default_factory=BallotTally)
    promoted: bool = False
    failed: bool = False
    _voters: Dict[str, set] = field(default_factory=dict)

    # -- proposal period ---------------------------------------------------
    def submit_proposal(self, baker: str, proposal: str, rolls: int = 1) -> None:
        """Submit or upvote ``proposal`` with ``rolls`` voting weight."""
        if self.period is not VotingPeriodKind.PROPOSAL:
            raise ChainError("proposals are only accepted during the proposal period")
        self.proposal_votes[proposal] = self.proposal_votes.get(proposal, 0) + rolls
        self._voters.setdefault("proposal", set()).add(baker)

    def close_proposal_period(self) -> Optional[str]:
        """Select the winning proposal and advance to exploration."""
        if self.period is not VotingPeriodKind.PROPOSAL:
            raise ChainError("not in the proposal period")
        if not self.proposal_votes:
            self.failed = True
            return None
        winner = max(self.proposal_votes.items(), key=lambda item: (item[1], item[0]))
        self.selected_proposal = winner[0]
        self.period = VotingPeriodKind.EXPLORATION
        return self.selected_proposal

    # -- ballot periods ------------------------------------------------------
    def _tally_for_period(self) -> BallotTally:
        if self.period is VotingPeriodKind.EXPLORATION:
            return self.exploration_tally
        if self.period is VotingPeriodKind.PROMOTION:
            return self.promotion_tally
        raise ChainError(f"no ballots are cast during the {self.period.value} period")

    def cast_ballot(self, baker: str, choice: BallotChoice, rolls: int = 1) -> None:
        """Cast a ballot in the current exploration/promotion period."""
        voters = self._voters.setdefault(self.period.value, set())
        if baker in voters:
            raise ChainError(f"baker {baker} already voted in the {self.period.value} period")
        voters.add(baker)
        tally = self._tally_for_period()
        if choice is BallotChoice.YAY:
            tally.yay += rolls
        elif choice is BallotChoice.NAY:
            tally.nay += rolls
        else:
            tally.passes += rolls

    def _ballot_period_passes(self, tally: BallotTally) -> bool:
        return (
            tally.participation(self.total_rolls) >= self.quorum
            and tally.approval_rate >= self.supermajority
        )

    def close_exploration_period(self) -> bool:
        """Evaluate the exploration vote; advance to testing on success."""
        if self.period is not VotingPeriodKind.EXPLORATION:
            raise ChainError("not in the exploration period")
        if self._ballot_period_passes(self.exploration_tally):
            self.period = VotingPeriodKind.TESTING
            return True
        self.failed = True
        return False

    def close_testing_period(self) -> None:
        """Testing involves no votes; simply advance to promotion."""
        if self.period is not VotingPeriodKind.TESTING:
            raise ChainError("not in the testing period")
        self.period = VotingPeriodKind.PROMOTION

    def close_promotion_period(self) -> bool:
        """Evaluate the promotion vote; mark the amendment promoted on success."""
        if self.period is not VotingPeriodKind.PROMOTION:
            raise ChainError("not in the promotion period")
        if self._ballot_period_passes(self.promotion_tally):
            self.promoted = True
            return True
        self.failed = True
        return False


@dataclass(frozen=True)
class BabylonTimeline:
    """Calendar of the Babylon 2.0 amendment process analysed in §4.2."""

    proposal_start: str = "2019-07-17"
    proposal_end: str = "2019-08-09"
    exploration_start: str = "2019-08-09"
    exploration_end: str = "2019-09-01"
    testing_start: str = "2019-09-01"
    testing_end: str = "2019-09-25"
    promotion_start: str = "2019-09-25"
    promotion_end: str = "2019-10-18"
    proposals: Tuple[str, ...] = ("Babylon", "Babylon 2.0")
    #: Participation rates reported by the paper.
    proposal_participation: float = 0.49
    exploration_participation: float = 0.81
    promotion_nay_share: float = 0.15

    def period_bounds(self, period: VotingPeriodKind) -> Tuple[float, float]:
        """(start, end) timestamps of a voting period."""
        mapping = {
            VotingPeriodKind.PROPOSAL: (self.proposal_start, self.proposal_end),
            VotingPeriodKind.EXPLORATION: (self.exploration_start, self.exploration_end),
            VotingPeriodKind.TESTING: (self.testing_start, self.testing_end),
            VotingPeriodKind.PROMOTION: (self.promotion_start, self.promotion_end),
        }
        start, end = mapping[period]
        return timestamp_from_iso(start), timestamp_from_iso(end)

    def period_days(self, period: VotingPeriodKind) -> int:
        start, end = self.period_bounds(period)
        return int((end - start) // SECONDS_PER_DAY)


@dataclass(frozen=True)
class VoteEvent:
    """One governance vote event with its timestamp, used for Figure 9."""

    timestamp: float
    period: VotingPeriodKind
    baker: str
    rolls: int
    proposal: str = ""
    ballot: str = ""


def cumulative_vote_series(
    events: List[VoteEvent], period: VotingPeriodKind, key: str
) -> List[Tuple[float, int]]:
    """Cumulative vote count over time for one proposal name or ballot choice.

    ``key`` is a proposal name during the proposal period and a ballot choice
    (``yay``/``nay``/``pass``) during exploration/promotion — exactly the
    series Figure 9 plots.
    """
    selected = [
        event
        for event in events
        if event.period is period
        and (event.proposal == key or event.ballot == key)
    ]
    selected.sort(key=lambda event: event.timestamp)
    series: List[Tuple[float, int]] = []
    running = 0
    for event in selected:
        running += event.rolls
        series.append((event.timestamp, running))
    return series
