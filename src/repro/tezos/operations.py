"""Tezos operation kinds.

Tezos calls its transactions "operations".  The paper classifies them into
consensus-related, governance-related and manager operations (§2.3.2); the
operation kinds observed in the dataset are those of Figure 1's Tezos column.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping


class OperationKind(str, enum.Enum):
    """Operation kinds appearing in the paper's Tezos dataset (Figure 1)."""

    ENDORSEMENT = "Endorsement"
    TRANSACTION = "Transaction"
    ORIGINATION = "Origination"
    REVEAL = "Reveal"
    ACTIVATE = "Activate"
    DELEGATION = "Delegation"
    REVEAL_NONCE = "Reveal nonce"
    BALLOT = "Ballot"
    PROPOSALS = "Proposals"
    DOUBLE_BAKING_EVIDENCE = "Double baking evidence"


class OperationCategory(str, enum.Enum):
    """The paper's three-way classification (§2.3.2)."""

    CONSENSUS = "consensus"
    GOVERNANCE = "governance"
    MANAGER = "manager"


#: Mapping from operation kind to the paper's category.
OPERATION_CATEGORIES: Dict[OperationKind, OperationCategory] = {
    OperationKind.ENDORSEMENT: OperationCategory.CONSENSUS,
    OperationKind.REVEAL_NONCE: OperationCategory.CONSENSUS,
    OperationKind.DOUBLE_BAKING_EVIDENCE: OperationCategory.CONSENSUS,
    OperationKind.BALLOT: OperationCategory.GOVERNANCE,
    OperationKind.PROPOSALS: OperationCategory.GOVERNANCE,
    OperationKind.TRANSACTION: OperationCategory.MANAGER,
    OperationKind.ORIGINATION: OperationCategory.MANAGER,
    OperationKind.REVEAL: OperationCategory.MANAGER,
    OperationKind.ACTIVATE: OperationCategory.MANAGER,
    OperationKind.DELEGATION: OperationCategory.MANAGER,
}


def category_for(kind: OperationKind) -> OperationCategory:
    """Paper category for an operation kind."""
    return OPERATION_CATEGORIES[kind]


@dataclass(frozen=True)
class TezosOperation:
    """One operation to be included in a Tezos block."""

    kind: OperationKind
    source: str
    destination: str = ""
    amount_xtz: float = 0.0
    fee_xtz: float = 0.0
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def category(self) -> OperationCategory:
        return category_for(self.kind)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "source": self.source,
            "destination": self.destination,
            "amount_xtz": self.amount_xtz,
            "fee_xtz": self.fee_xtz,
            "data": dict(self.data),
        }


def make_endorsement(baker: str, endorsed_level: int, slots: int = 1) -> TezosOperation:
    """Endorsement of block ``endorsed_level`` by ``baker``."""
    return TezosOperation(
        kind=OperationKind.ENDORSEMENT,
        source=baker,
        data={"level": endorsed_level, "slots": slots},
    )


def make_transaction(source: str, destination: str, amount: float, fee: float = 0.001) -> TezosOperation:
    """Peer-to-peer XTZ transfer."""
    return TezosOperation(
        kind=OperationKind.TRANSACTION,
        source=source,
        destination=destination,
        amount_xtz=amount,
        fee_xtz=fee,
    )


def make_delegation(source: str, baker: str, fee: float = 0.001) -> TezosOperation:
    """Delegate ``source``'s stake to ``baker``."""
    return TezosOperation(
        kind=OperationKind.DELEGATION,
        source=source,
        destination=baker,
        fee_xtz=fee,
    )


def make_origination(manager: str, balance: float, fee: float = 0.001) -> TezosOperation:
    """Originate a new contract account funded with ``balance``."""
    return TezosOperation(
        kind=OperationKind.ORIGINATION,
        source=manager,
        amount_xtz=balance,
        fee_xtz=fee,
    )


def make_reveal(source: str) -> TezosOperation:
    """Reveal the public key of ``source``."""
    return TezosOperation(kind=OperationKind.REVEAL, source=source)


def make_activation(source: str, amount: float) -> TezosOperation:
    """Activate a fundraiser account holding ``amount`` XTZ."""
    return TezosOperation(kind=OperationKind.ACTIVATE, source=source, amount_xtz=amount)


def make_ballot(baker: str, proposal: str, vote: str) -> TezosOperation:
    """Cast a governance ballot (``yay`` / ``nay`` / ``pass``)."""
    if vote not in ("yay", "nay", "pass"):
        raise ValueError(f"invalid ballot: {vote!r}")
    return TezosOperation(
        kind=OperationKind.BALLOT,
        source=baker,
        data={"proposal": proposal, "ballot": vote},
    )


def make_proposal(baker: str, proposals: tuple) -> TezosOperation:
    """Submit (or upvote) one or more amendment proposals."""
    return TezosOperation(
        kind=OperationKind.PROPOSALS,
        source=baker,
        data={"proposals": list(proposals)},
    )
