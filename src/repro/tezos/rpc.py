"""Simulated Tezos node RPC.

The paper runs its own Tezos full node and crawls it through the node RPC
(``/chains/main/blocks/<level>``).  The simulated endpoint mirrors the two
calls the crawler needs — head level and block by level — behind the same
generic interface the EOS and XRP endpoints expose, so the collection layer
is chain-agnostic.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.common.errors import BlockNotFound, EndpointUnavailable
from repro.common.jsonrpc import RpcDispatcher, RpcRequest
from repro.common.ratelimit import TokenBucket
from repro.common.records import BlockRecord
from repro.common.rng import DeterministicRng
from repro.eos.rpc import EndpointProfile
from repro.tezos.chain import TezosChain


class TezosRpcEndpoint:
    """A simulated self-hosted Tezos node RPC."""

    chain_name = "tezos"

    def __init__(
        self,
        chain: TezosChain,
        profile: Optional[EndpointProfile] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.chain = chain
        # A self-hosted node has effectively no rate limit compared to the
        # public endpoints, but the knob still exists for fault-injection.
        self.profile = profile or EndpointProfile(
            name="tezos-local-node", requests_per_second=1000.0, burst=1000.0
        )
        self.rng = rng or DeterministicRng(0)
        self._bucket = TokenBucket(
            rate=self.profile.requests_per_second, capacity=self.profile.burst
        )
        self._dispatcher = RpcDispatcher()
        self._dispatcher.register("header", self._handle_header)
        self._dispatcher.register("block", self._handle_block)
        self.requests_served = 0

    @property
    def name(self) -> str:
        return self.profile.name

    def head_height(self, now: float) -> int:
        result = self.call("header", {}, now)
        return int(result["level"])

    def fetch_block(self, height: int, now: float) -> BlockRecord:
        result = self.call("block", {"level": height}, now)
        return BlockRecord.from_dict(result)

    def latency(self) -> float:
        return self.profile.base_latency * (1.0 + 0.2 * self.rng.random())

    def call(self, method: str, params: Mapping[str, Any], now: float) -> Any:
        self._bucket.acquire_or_raise(now)
        if self.profile.failure_rate and self.rng.bernoulli(self.profile.failure_rate):
            raise EndpointUnavailable(f"{self.name} transient failure")
        response = self._dispatcher.dispatch(RpcRequest(method=method, params=params))
        self.requests_served += 1
        return response.raise_for_error()

    def _handle_header(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        head = self.chain.head()
        return {
            "chain_id": "tezos-mainnet-sim",
            "level": head.height if head else self.chain.config.start_level - 1,
            "timestamp": head.timestamp if head else self.chain.clock.now,
        }

    def _handle_block(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        level = int(params.get("level", -1))
        try:
            block = self.chain.block_at(level)
        except Exception as exc:
            raise BlockNotFound(level) from exc
        return block.to_dict()
