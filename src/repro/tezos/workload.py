"""Calibrated Tezos workload generator.

Regenerates the shape of the Tezos traffic the paper observed
(2019-09-29 → 2019-12-31):

* every baked block carries 32 endorsement operations, so consensus
  maintenance accounts for ~82 % of all operations (Figure 1, Figure 3b);
* manager operations are dominated by peer-to-peer transactions (~16 % of
  total), with small numbers of reveals, delegations, originations and
  activations;
* governance operations are extremely rare (245 in the whole window);
* the most active senders follow two patterns (Figure 6): baker payout
  accounts that pay each of their delegators repeatedly, and airdrop-style
  distributors that send exactly one transaction to tens of thousands of
  distinct accounts;
* the Babylon 2.0 amendment vote series of Figure 9 is generated from the
  published timeline and participation rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.clock import SECONDS_PER_DAY, timestamp_from_iso
from repro.common.records import BlockRecord, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.tezos.baking import ROLL_SIZE_XTZ
from repro.tezos.chain import TezosChain, TezosChainConfig
from repro.tezos.governance import (
    BabylonTimeline,
    BallotChoice,
    VoteEvent,
    VotingPeriodKind,
)
from repro.tezos.operations import (
    OperationKind,
    TezosOperation,
    make_activation,
    make_ballot,
    make_delegation,
    make_origination,
    make_proposal,
    make_reveal,
    make_transaction,
)

#: Share of manager (non-endorsement) operations per kind, from Figure 1.
MANAGER_OPERATION_MIX: Dict[str, float] = {
    "transaction": 0.885,
    "reveal": 0.044,
    "reveal_nonce": 0.044,
    "delegation": 0.022,
    "origination": 0.003,
    "activate": 0.0015,
    "governance": 0.0005,
}


@dataclass
class TezosWorkloadConfig:
    """Knobs of the calibrated Tezos workload."""

    start_date: str = "2019-09-29"
    end_date: str = "2020-01-01"
    #: Virtual blocks per day (the real chain bakes ~1,440; scaled down).
    blocks_per_day: int = 24
    #: Mean number of manager operations per block; with 32 endorsements per
    #: block a mean of ~7.2 reproduces the 82 % endorsement share.
    manager_operations_per_block: float = 7.2
    baker_count: int = 12
    user_account_count: int = 300
    #: Number of airdrop-style distributor accounts (Figure 6 pattern 2).
    distributor_count: int = 2
    #: Number of baker payout accounts (Figure 6 pattern 1).
    payout_account_count: int = 3
    #: Level of the first generated block (the paper window's real start).
    #: Window-sharded generation continues a previous shard's level range.
    start_level: int = 628_951
    #: Starting value of the operation-id counter; window shards carve
    #: disjoint id ranges so concatenated shards never collide on ids.
    operation_id_offset: int = 0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.blocks_per_day <= 0:
            raise ValueError("blocks_per_day must be positive")
        if self.manager_operations_per_block < 0:
            raise ValueError("manager_operations_per_block must be non-negative")
        if self.baker_count < 1:
            raise ValueError("baker_count must be at least 1")
        if timestamp_from_iso(self.end_date) <= timestamp_from_iso(self.start_date):
            raise ValueError("end_date must be after start_date")

    @property
    def start_timestamp(self) -> float:
        return timestamp_from_iso(self.start_date)

    @property
    def end_timestamp(self) -> float:
        return timestamp_from_iso(self.end_date)

    @property
    def total_days(self) -> float:
        return (self.end_timestamp - self.start_timestamp) / SECONDS_PER_DAY


class TezosWorkloadGenerator:
    """Drives a :class:`TezosChain` with the calibrated operation mix."""

    def __init__(self, config: Optional[TezosWorkloadConfig] = None):
        self.config = config or TezosWorkloadConfig()
        self.rng = DeterministicRng(self.config.seed)
        self.chain = self._build_chain()
        self.bakers: List[str] = []
        self.users: List[str] = []
        self.distributors: List[str] = []
        self.payout_accounts: List[str] = []
        self._distributor_targets: Dict[str, int] = {}
        self._bootstrap_accounts()

    # -- setup -------------------------------------------------------------------
    def _build_chain(self) -> TezosChain:
        chain_config = TezosChainConfig(
            chain_start=self.config.start_timestamp,
            start_level=self.config.start_level,
            block_interval=SECONDS_PER_DAY / self.config.blocks_per_day,
            operation_id_offset=self.config.operation_id_offset,
        )
        return TezosChain(config=chain_config, rng=self.rng.fork("chain"))

    def _bootstrap_accounts(self) -> None:
        config = self.config
        now = config.start_timestamp
        registry = self.chain.accounts
        for index in range(config.baker_count):
            # Bakers hold several rolls so the baker set stays diverse.
            rolls = 2 + self.rng.zipf_index(50, exponent=1.3)
            baker = registry.create_implicit(
                balance=rolls * ROLL_SIZE_XTZ, created_at=now
            )
            self.bakers.append(baker.address)
        for _ in range(config.user_account_count):
            user = registry.create_implicit(
                balance=round(self.rng.lognormal(3.0, 1.5), 2), created_at=now
            )
            self.users.append(user.address)
        for _ in range(config.distributor_count):
            # Airdrop distributors stay below one roll so they never appear in
            # the baker set; their balance is topped up as they spend it.
            distributor = registry.create_implicit(balance=9_500.0, created_at=now)
            self.distributors.append(distributor.address)
            self._distributor_targets[distributor.address] = 0
        for _ in range(config.payout_account_count):
            payout = registry.create_implicit(balance=200_000.0, created_at=now)
            self.payout_accounts.append(payout.address)

    # -- operation builders ----------------------------------------------------------
    def _random_user(self) -> str:
        return self.users[self.rng.zipf_index(len(self.users), exponent=1.1)]

    def _transaction_operation(self) -> TezosOperation:
        choice = self.rng.random()
        if choice < 0.30:
            # Baker payout pattern: repeated small payments to delegators.
            sender = self.rng.choice(self.payout_accounts)
            receiver = self.users[self.rng.randint(0, min(60, len(self.users)) - 1)]
        elif choice < 0.55:
            # Airdrop distributor pattern: exactly one payment per receiver,
            # to a freshly seen address (the tz1Mzpyj... pattern of Figure 6).
            sender = self.rng.choice(self.distributors)
            self._distributor_targets[sender] += 1
            sender_account = self.chain.accounts.get(sender)
            if sender_account.balance_xtz < 100.0:
                # Off-chain refill keeps the distributor spending without ever
                # crossing the one-roll baking threshold.
                sender_account.credit(9_000.0)
            receiver = self.chain.accounts.create_implicit(
                balance=0.0, created_at=self.chain.clock.now
            ).address
        else:
            sender = self._random_user()
            receiver = self._random_user()
        amount = round(self.rng.lognormal(0.0, 1.5), 4)
        return make_transaction(sender, receiver, amount)

    def _governance_operation(self) -> TezosOperation:
        baker = self.rng.choice(self.bakers)
        if self.rng.bernoulli(0.6):
            return make_ballot(baker, "PsBabyM1", self.rng.choice(("yay", "nay", "pass")))
        return make_proposal(baker, ("PsBabyM1",))

    def _manager_operation(self) -> TezosOperation:
        kind = self.rng.categorical(MANAGER_OPERATION_MIX)
        if kind == "transaction":
            return self._transaction_operation()
        if kind == "reveal":
            return make_reveal(self._random_user())
        if kind == "reveal_nonce":
            baker = self.rng.choice(self.bakers)
            return TezosOperation(kind=OperationKind.REVEAL_NONCE, source=baker)
        if kind == "delegation":
            return make_delegation(self._random_user(), self.rng.choice(self.bakers))
        if kind == "origination":
            return make_origination(self._random_user(), balance=0.0)
        if kind == "activate":
            address = "tz1" + self.rng.hex_string(30)
            return make_activation(address, round(self.rng.lognormal(4.0, 1.0), 2))
        return self._governance_operation()

    # -- block generation ---------------------------------------------------------------
    def _operations_for_block(self) -> List[TezosOperation]:
        count = self.rng.poisson(self.config.manager_operations_per_block)
        return [self._manager_operation() for _ in range(count)]

    def generate_blocks(self) -> Iterator[BlockRecord]:
        """Bake blocks covering the configured observation window."""
        config = self.config
        total_blocks = int(config.total_days * config.blocks_per_day)
        for _ in range(total_blocks):
            if self.chain.clock.now >= config.end_timestamp:
                break
            yield self.chain.bake_block(self._operations_for_block())

    def generate(self) -> List[BlockRecord]:
        """Materialise the full observation window as a list of blocks."""
        return list(self.generate_blocks())

    def stream_records(self) -> Iterator[TransactionRecord]:
        """Stream canonical records without materialising block lists.

        Feed straight into :meth:`repro.common.columns.TxFrame.extend`.
        """
        for block in self.generate_blocks():
            yield from block.transactions

    # -- Babylon 2.0 governance series (Figure 9) ---------------------------------------
    def generate_babylon_votes(
        self, timeline: Optional[BabylonTimeline] = None, electorate_rolls: int = 460
    ) -> List[VoteEvent]:
        """Vote events reproducing the three Figure 9 series.

        The proposal period sees two competing proposals (Babylon, then
        Babylon 2.0) accumulating upvotes; the exploration period is
        essentially unanimous ``yay`` with a single explicit ``pass`` (the
        Tezos Foundation); the promotion period repeats the pattern with
        ~15 % ``nay`` votes after the testing-period breakages.
        """
        timeline = timeline or BabylonTimeline()
        rng = self.rng.fork("babylon")
        events: List[VoteEvent] = []

        def spread_votes(
            period: VotingPeriodKind,
            count: int,
            proposal: str = "",
            ballot: str = "",
            start_fraction: float = 0.0,
        ) -> None:
            start, end = timeline.period_bounds(period)
            span = end - start
            for _ in range(count):
                offset = start_fraction + (1.0 - start_fraction) * rng.random()
                events.append(
                    VoteEvent(
                        timestamp=start + offset * span,
                        period=period,
                        baker=f"baker{rng.randint(0, 400)}",
                        rolls=1 + rng.zipf_index(60, exponent=1.4),
                        proposal=proposal,
                        ballot=ballot,
                    )
                )

        participating = int(electorate_rolls * timeline.proposal_participation)
        # Babylon gathers the first wave; Babylon 2.0 arrives mid-period and
        # overtakes it (votes on Babylon are never withdrawn).
        spread_votes(VotingPeriodKind.PROPOSAL, int(participating * 0.45), proposal="Babylon")
        spread_votes(
            VotingPeriodKind.PROPOSAL,
            int(participating * 0.55),
            proposal="Babylon 2.0",
            start_fraction=0.4,
        )
        # Guarantee the published outcome: Babylon 2.0 ends the period ahead
        # in roll-weighted votes regardless of the random roll draws.
        def rolls_for(proposal: str) -> int:
            return sum(
                event.rolls
                for event in events
                if event.period is VotingPeriodKind.PROPOSAL and event.proposal == proposal
            )

        deficit = rolls_for("Babylon") - rolls_for("Babylon 2.0")
        if deficit >= 0:
            start, end = timeline.period_bounds(VotingPeriodKind.PROPOSAL)
            events.append(
                VoteEvent(
                    timestamp=end - 1.0,
                    period=VotingPeriodKind.PROPOSAL,
                    baker="cryptium-labs",
                    rolls=deficit + 1,
                    proposal="Babylon 2.0",
                )
            )

        exploration_voters = int(electorate_rolls * timeline.exploration_participation)
        spread_votes(VotingPeriodKind.EXPLORATION, exploration_voters - 1, ballot="yay")
        spread_votes(VotingPeriodKind.EXPLORATION, 1, ballot="pass")

        promotion_voters = exploration_voters
        nay_votes = int(promotion_voters * timeline.promotion_nay_share)
        spread_votes(VotingPeriodKind.PROMOTION, promotion_voters - nay_votes - 1, ballot="yay")
        spread_votes(VotingPeriodKind.PROMOTION, nay_votes, ballot="nay")
        spread_votes(VotingPeriodKind.PROMOTION, 1, ballot="pass")
        return events
