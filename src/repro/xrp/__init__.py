"""XRP ledger substrate: accounts, trust lines, DEX, transaction engine.

The paper's XRP measurement depends on:

* **Accounts** identified by base-58 addresses, activated by a parent
  account's payment, optionally tagged with destination tags and usernames
  (:mod:`repro.xrp.accounts`).
* **IOU mechanics** — any account can issue an IOU for any currency code;
  value only flows along trust lines, and an IOU's worth is whatever the
  on-ledger DEX says it exchanges for against XRP
  (:mod:`repro.xrp.amounts`, :mod:`repro.xrp.trustlines`).
* **Decentralised exchange** — OfferCreate / OfferCancel and offer crossing
  (:mod:`repro.xrp.orderbook`).
* **Transaction engine** — Payment, OfferCreate, OfferCancel, TrustSet,
  AccountSet, escrows and the result codes the paper cites (``PATH_DRY``,
  ``tecUNFUNDED_OFFER``); unsuccessful transactions are recorded on-ledger
  with only the fee deducted (:mod:`repro.xrp.transactions`).
* **Ledger close loop and RPC** (:mod:`repro.xrp.ledger`,
  :mod:`repro.xrp.rpc`) and the calibrated workload with the Huobi-linked
  offer bots, the payment-spam waves and the self-dealt BTC IOU trades
  (:mod:`repro.xrp.workload`).
"""

from repro.xrp.accounts import XrpAccount, XrpAccountRegistry
from repro.xrp.amounts import IouAmount, XRP_CURRENCY, drops_to_xrp, xrp_to_drops
from repro.xrp.ledger import XrpLedger, XrpLedgerConfig
from repro.xrp.orderbook import Offer, OrderBook
from repro.xrp.rpc import XrpRpcEndpoint
from repro.xrp.transactions import TransactionType, XrpTransaction
from repro.xrp.workload import XrpWorkloadConfig, XrpWorkloadGenerator

__all__ = [
    "IouAmount",
    "Offer",
    "OrderBook",
    "TransactionType",
    "XRP_CURRENCY",
    "XrpAccount",
    "XrpAccountRegistry",
    "XrpLedger",
    "XrpLedgerConfig",
    "XrpRpcEndpoint",
    "XrpTransaction",
    "XrpWorkloadConfig",
    "XrpWorkloadGenerator",
    "drops_to_xrp",
    "xrp_to_drops",
]
