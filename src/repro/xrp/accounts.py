"""XRP ledger account model.

Accounts are identified by base-58 addresses starting with ``r``.  A handful
of special addresses serve fixed purposes and cannot sign transactions
(funds sent there are lost).  A new account only exists on the ledger once a
*parent* account has sent it the reserve — the activation relationship the
paper uses (via XRP Scan metadata) to cluster exchange-controlled accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.errors import ChainError
from repro.common.rng import DeterministicRng
from repro.xrp.amounts import ACCOUNT_RESERVE_XRP

#: Special addresses that are not derived from a key pair (§2.3.3); funds
#: sent to them are permanently lost.
SPECIAL_ADDRESSES = {
    "rrrrrrrrrrrrrrrrrrrrrhoLvTp": "ACCOUNT_ZERO",
    "rrrrrrrrrrrrrrrrrrrrBZbvji": "ACCOUNT_ONE",
    "rrrrrrrrrrrrrrrrrNAMEtxvNvQ": "NAME_RESERVATION_BLACKHOLE",
    "rrrrrrrrrrrrrrrrrrrn5RM1rHd": "NAN_ADDRESS",
}

_BASE58_ALPHABET = "rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz"
ADDRESS_BODY_LENGTH = 24


def generate_address(rng: DeterministicRng) -> str:
    """Generate a syntactically plausible (non-special) XRP address."""
    body = "".join(rng.choice(_BASE58_ALPHABET) for _ in range(ADDRESS_BODY_LENGTH))
    return "r" + body


def is_special_address(address: str) -> bool:
    return address in SPECIAL_ADDRESSES


@dataclass
class XrpAccount:
    """One XRP ledger account."""

    address: str
    xrp_balance: float = 0.0
    parent: str = ""
    username: str = ""
    activated_at: float = 0.0
    sequence: int = 1
    domain: str = ""
    regular_key: str = ""
    signer_list: tuple = ()

    @property
    def is_special(self) -> bool:
        return is_special_address(self.address)

    @property
    def spendable_xrp(self) -> float:
        """XRP available above the account reserve."""
        return max(0.0, self.xrp_balance - ACCOUNT_RESERVE_XRP)

    def credit_xrp(self, amount: float) -> None:
        if amount < 0:
            raise ChainError("credit amount must be non-negative")
        self.xrp_balance += amount

    def debit_xrp(self, amount: float, respect_reserve: bool = True) -> None:
        if amount < 0:
            raise ChainError("debit amount must be non-negative")
        available = self.spendable_xrp if respect_reserve else self.xrp_balance
        if available + 1e-9 < amount:
            raise ChainError(
                f"insufficient XRP on {self.address}: {available} available < {amount}"
            )
        self.xrp_balance -= amount

    def next_sequence(self) -> int:
        """Consume and return the account's next transaction sequence number."""
        sequence = self.sequence
        self.sequence += 1
        return sequence


class XrpAccountRegistry:
    """All accounts known to the ledger, with the activation (parent) graph."""

    def __init__(self, rng: Optional[DeterministicRng] = None):
        self._rng = rng or DeterministicRng(0)
        self._accounts: Dict[str, XrpAccount] = {}

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, address: str) -> bool:
        return address in self._accounts

    def addresses(self) -> List[str]:
        """Every known address, in creation order."""
        return list(self._accounts)

    def get(self, address: str) -> XrpAccount:
        account = self._accounts.get(address)
        if account is None:
            raise ChainError(f"unknown XRP account: {address!r}")
        return account

    def maybe_get(self, address: str) -> Optional[XrpAccount]:
        return self._accounts.get(address)

    def create_genesis(self, address: Optional[str] = None, balance: float = 0.0, username: str = "") -> XrpAccount:
        """Create an account with no parent (genesis / pre-window accounts)."""
        if address is None:
            address = generate_address(self._rng)
        if address in self._accounts:
            raise ChainError(f"XRP account already exists: {address!r}")
        account = XrpAccount(address=address, xrp_balance=balance, username=username)
        self._accounts[address] = account
        return account

    def activate(
        self,
        parent: str,
        initial_xrp: float,
        timestamp: float = 0.0,
        address: Optional[str] = None,
        username: str = "",
    ) -> XrpAccount:
        """Activate a new account funded by ``parent`` (must cover the reserve)."""
        if initial_xrp < ACCOUNT_RESERVE_XRP:
            raise ChainError(
                f"activation requires at least the {ACCOUNT_RESERVE_XRP} XRP reserve"
            )
        parent_account = self.get(parent)
        parent_account.debit_xrp(initial_xrp)
        if address is None:
            address = generate_address(self._rng)
        if address in self._accounts:
            raise ChainError(f"XRP account already exists: {address!r}")
        account = XrpAccount(
            address=address,
            xrp_balance=initial_xrp,
            parent=parent,
            activated_at=timestamp,
            username=username,
        )
        self._accounts[address] = account
        return account

    def addresses(self) -> List[str]:
        return sorted(self._accounts)

    def accounts(self) -> Iterable[XrpAccount]:
        return self._accounts.values()

    def descendants(self, ancestor: str) -> List[str]:
        """Addresses activated (directly or transitively) by ``ancestor``."""
        children: Dict[str, List[str]] = {}
        for account in self._accounts.values():
            if account.parent:
                children.setdefault(account.parent, []).append(account.address)
        result: List[str] = []
        frontier = list(children.get(ancestor, []))
        while frontier:
            address = frontier.pop()
            result.append(address)
            frontier.extend(children.get(address, []))
        return sorted(result)

    def cluster_identifier(self, address: str) -> str:
        """Cluster label for an account, following the paper's §3.3 rule.

        Accounts are clustered by username; accounts without a username
        inherit their parent's username with a ``-- descendant`` suffix, and
        fall back to their own address when no ancestor has a username.
        """
        account = self.maybe_get(address)
        if account is None:
            return address
        if account.username:
            return account.username
        seen = set()
        parent = account.parent
        while parent and parent not in seen:
            seen.add(parent)
            parent_account = self.maybe_get(parent)
            if parent_account is None:
                break
            if parent_account.username:
                return f"{parent_account.username} -- descendant"
            parent = parent_account.parent
        return address

    def total_xrp(self) -> float:
        """Total XRP held across all accounts (conserved minus burned fees)."""
        return sum(account.xrp_balance for account in self._accounts.values())
