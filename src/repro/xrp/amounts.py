"""XRP and IOU amount arithmetic.

The XRP ledger supports two kinds of value:

* the native currency **XRP**, counted in integer *drops*
  (1 XRP = 1,000,000 drops) and never issued as an IOU;
* **IOU tokens**, identified by a ``(currency, issuer)`` pair.  Any account
  can issue an IOU with any ticker — which is exactly why the paper insists
  that an IOU's ticker says nothing about its value (§4.3): "BTC" issued by a
  random account is not bitcoin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ChainError

#: Currency code of the native asset.
XRP_CURRENCY = "XRP"

#: Number of drops per XRP.
DROPS_PER_XRP = 1_000_000

#: Standard transaction fee in drops (10 drops in late 2019).
STANDARD_FEE_DROPS = 10

#: Reserve that a new account must hold to exist on the ledger (20 XRP).
ACCOUNT_RESERVE_XRP = 20.0


def xrp_to_drops(xrp: float) -> int:
    """Convert an XRP amount to integer drops."""
    if xrp < 0:
        raise ChainError("XRP amounts must be non-negative")
    return int(round(xrp * DROPS_PER_XRP))


def drops_to_xrp(drops: int) -> float:
    """Convert integer drops to an XRP amount."""
    if drops < 0:
        raise ChainError("drop amounts must be non-negative")
    return drops / DROPS_PER_XRP


@dataclass(frozen=True)
class IouAmount:
    """An amount of an issuer-specific IOU token (or of native XRP).

    ``issuer`` is empty for native XRP; for IOUs the same currency code with
    a different issuer is a *different asset* — the distinction on which the
    paper's zero-value analysis rests.
    """

    currency: str
    value: float
    issuer: str = ""

    def __post_init__(self) -> None:
        if not self.currency:
            raise ChainError("currency code must not be empty")
        if self.currency == XRP_CURRENCY and self.issuer:
            raise ChainError("native XRP cannot have an issuer")
        if self.currency != XRP_CURRENCY and not self.issuer:
            raise ChainError(f"IOU amount of {self.currency} requires an issuer")

    @property
    def is_native(self) -> bool:
        return self.currency == XRP_CURRENCY

    @property
    def asset_key(self) -> tuple:
        """Hashable identifier of the asset: (currency, issuer)."""
        return (self.currency, self.issuer)

    def with_value(self, value: float) -> "IouAmount":
        return IouAmount(currency=self.currency, value=value, issuer=self.issuer)

    def __add__(self, other: "IouAmount") -> "IouAmount":
        self._check_same_asset(other)
        return self.with_value(self.value + other.value)

    def __sub__(self, other: "IouAmount") -> "IouAmount":
        self._check_same_asset(other)
        return self.with_value(self.value - other.value)

    def _check_same_asset(self, other: "IouAmount") -> None:
        if self.asset_key != other.asset_key:
            raise ChainError(
                f"cannot combine amounts of different assets: {self.asset_key} vs {other.asset_key}"
            )

    def to_dict(self) -> dict:
        return {"currency": self.currency, "value": self.value, "issuer": self.issuer}

    @classmethod
    def native(cls, xrp: float) -> "IouAmount":
        """Construct a native XRP amount."""
        return cls(currency=XRP_CURRENCY, value=xrp)

    @classmethod
    def iou(cls, currency: str, value: float, issuer: str) -> "IouAmount":
        """Construct an issuer-specific IOU amount."""
        return cls(currency=currency, value=value, issuer=issuer)
