"""XRP ledger close loop and a simplified consensus model.

The XRP Ledger Consensus Protocol closes a new ledger version every few
seconds once the validators on overlapping Unique Node Lists (UNLs) agree on
a transaction set; the paper notes that convergence requires roughly 90 %
UNL overlap (§2.2).  The simulator keeps a lightweight model of that check
(validators and their UNL overlap) and focuses on what the measurement needs:
every submitted transaction — successful or not — is recorded in a closed
ledger together with its result code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.common.clock import SimulationClock
from repro.common.errors import ChainError
from repro.common.records import BlockRecord, ChainId, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.xrp.accounts import XrpAccountRegistry
from repro.xrp.amounts import XRP_CURRENCY
from repro.xrp.orderbook import OrderBook
from repro.xrp.transactions import (
    AppliedTransaction,
    TransactionType,
    XrpTransaction,
    XrpTransactionEngine,
)
from repro.xrp.trustlines import TrustLineTable

#: Average ledger close interval in late 2019 (~4 seconds).
LEDGER_CLOSE_SECONDS = 4.0

#: Minimum UNL overlap required for convergence (§2.2).
UNL_OVERLAP_THRESHOLD = 0.9


@dataclass(frozen=True)
class Validator:
    """One validator and the unique node list it listens to."""

    name: str
    unl: frozenset

    def overlap_with(self, other: "Validator") -> float:
        """Fraction of this validator's UNL shared with ``other``'s UNL."""
        if not self.unl:
            return 0.0
        return len(self.unl & other.unl) / len(self.unl)


def check_unl_convergence(validators: Sequence[Validator]) -> bool:
    """Whether every pair of validators overlaps by at least 90 %."""
    for first in validators:
        for second in validators:
            if first.name == second.name:
                continue
            if first.overlap_with(second) < UNL_OVERLAP_THRESHOLD:
                return False
    return True


@dataclass
class XrpLedgerConfig:
    """Static parameters of the simulated XRP ledger."""

    chain_start: float = 0.0
    start_index: int = 1
    close_interval: float = LEDGER_CLOSE_SECONDS
    validator_count: int = 5
    #: Starting value of the transaction-id counter, so window-sharded
    #: generation can carve disjoint id ranges per shard.
    transaction_id_offset: int = 0


class XrpLedger:
    """The simulated XRP ledger: state + close loop producing block records."""

    def __init__(
        self,
        config: Optional[XrpLedgerConfig] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.config = config or XrpLedgerConfig()
        self.rng = rng or DeterministicRng(0)
        self.clock = SimulationClock(self.config.chain_start)
        self.accounts = XrpAccountRegistry(rng=self.rng.fork("accounts"))
        self.trustlines = TrustLineTable()
        self.orderbook = OrderBook()
        self.engine = XrpTransactionEngine(self.accounts, self.trustlines, self.orderbook)
        self.validators = self._build_validators(self.config.validator_count)
        self.blocks: List[BlockRecord] = []
        self._ledger_index = self.config.start_index - 1
        self._tx_counter = self.config.transaction_id_offset

    @staticmethod
    def _build_validators(count: int) -> List[Validator]:
        names = [f"validator{index + 1}" for index in range(count)]
        unl = frozenset(names)
        return [Validator(name=name, unl=unl) for name in names]

    @property
    def head_index(self) -> int:
        return self._ledger_index

    def _next_tx_id(self) -> str:
        self._tx_counter += 1
        return f"xrptx{self._tx_counter:012d}"

    def _record_for(
        self, applied: AppliedTransaction, index: int, timestamp: float
    ) -> TransactionRecord:
        transaction = applied.transaction
        amount = 0.0
        currency = ""
        issuer = ""
        reference = transaction.amount or transaction.taker_gets
        if reference is not None:
            amount = reference.value
            currency = reference.currency
            issuer = reference.issuer
        metadata: Dict[str, object] = dict(transaction.data)
        if transaction.destination_tag is not None:
            metadata["destination_tag"] = transaction.destination_tag
        if transaction.taker_gets is not None and transaction.taker_pays is not None:
            metadata["taker_gets"] = transaction.taker_gets.to_dict()
            metadata["taker_pays"] = transaction.taker_pays.to_dict()
        if applied.offer_id:
            metadata["offer_id"] = applied.offer_id
        if applied.executions:
            metadata["executed"] = True
            metadata["execution_count"] = len(applied.executions)
        return TransactionRecord(
            chain=ChainId.XRP,
            transaction_id=self._next_tx_id(),
            block_height=index,
            timestamp=timestamp,
            type=transaction.type.value,
            sender=transaction.account,
            receiver=transaction.destination,
            amount=amount,
            currency=currency,
            issuer=issuer,
            fee=applied.fee_xrp,
            success=applied.success,
            error_code="" if applied.success else applied.result.value,
            metadata=metadata,
        )

    def close_ledger(self, transactions: Iterable[XrpTransaction]) -> BlockRecord:
        """Apply ``transactions`` and close the next ledger version."""
        if not check_unl_convergence(self.validators):
            raise ChainError("validator UNLs overlap below 90%: consensus not assured")
        index = self._ledger_index + 1
        timestamp = self.clock.now
        records: List[TransactionRecord] = []
        for transaction in transactions:
            try:
                applied = self.engine.apply(transaction, timestamp)
            except ChainError:
                # Transactions from unknown accounts never reach a ledger.
                continue
            records.append(self._record_for(applied, index, timestamp))
        block = BlockRecord(
            chain=ChainId.XRP,
            height=index,
            timestamp=timestamp,
            producer="consensus",
            transactions=tuple(records),
            block_id=self.rng.hex_string(64),
            previous_id=self.blocks[-1].block_id if self.blocks else "",
            metadata={"validator_count": len(self.validators)},
        )
        self.blocks.append(block)
        self._ledger_index = index
        self.clock.advance(self.config.close_interval)
        return block

    def block_at(self, index: int) -> BlockRecord:
        offset = index - self.config.start_index
        if offset < 0 or offset >= len(self.blocks):
            raise ChainError(f"XRP ledger {index} has not been closed")
        return self.blocks[offset]

    def head(self) -> Optional[BlockRecord]:
        return self.blocks[-1] if self.blocks else None
