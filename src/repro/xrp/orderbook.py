"""The XRP ledger's decentralised exchange: offers and offer crossing.

``OfferCreate`` places an order to exchange one asset for another; when the
order book contains a crossing counter-offer the trade executes immediately,
otherwise the offer rests on the book until cancelled, superseded or
expired.  The paper finds that only ~0.2 % of successfully created offers are
ever fulfilled to any extent (Figure 7), and uses executed exchanges against
XRP as the *only* reliable price oracle for IOU tokens (§4.3) — both of
which the analysis layer computes from the structures defined here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ChainError
from repro.xrp.amounts import XRP_CURRENCY, IouAmount


@dataclass
class Offer:
    """A resting order: pay ``taker_gets`` to receive ``taker_pays``.

    ``taker_gets`` is what the offer owner is selling, ``taker_pays`` what
    they ask in return (the XRP ledger's naming, seen from the taker).
    """

    offer_id: int
    owner: str
    taker_gets: IouAmount
    taker_pays: IouAmount
    created_at: float = 0.0
    filled_gets: float = 0.0
    filled_pays: float = 0.0
    cancelled: bool = False

    @property
    def price(self) -> float:
        """Price of one unit of ``taker_gets`` expressed in ``taker_pays``."""
        if self.taker_gets.value <= 0:
            raise ChainError("offer must sell a positive amount")
        return self.taker_pays.value / self.taker_gets.value

    @property
    def remaining_gets(self) -> float:
        return max(0.0, self.taker_gets.value - self.filled_gets)

    @property
    def is_open(self) -> bool:
        return not self.cancelled and self.remaining_gets > 1e-12

    @property
    def was_filled(self) -> bool:
        """Whether the offer was fulfilled to any extent (Figure 7's criterion)."""
        return self.filled_gets > 1e-12

    @property
    def pair(self) -> Tuple[tuple, tuple]:
        return (self.taker_gets.asset_key, self.taker_pays.asset_key)


@dataclass(frozen=True)
class ExchangeExecution:
    """One executed exchange between two offers (or an offer and a taker)."""

    timestamp: float
    buyer: str
    seller: str
    sold: IouAmount
    bought: IouAmount

    @property
    def rate(self) -> float:
        """Units of ``bought`` per unit of ``sold``."""
        if self.sold.value <= 0:
            return 0.0
        return self.bought.value / self.sold.value


class OrderBook:
    """All resting offers on the ledger's DEX, with crossing on insert."""

    #: How many of the most recent offers :meth:`recent_open_offers` exposes.
    RECENT_WINDOW = 512

    def __init__(self) -> None:
        self._offers: Dict[int, Offer] = {}
        self._next_id = 1
        self.executions: List[ExchangeExecution] = []
        # Per-(gets, pays) index of offer ids so crossing only scans the
        # opposite side of the relevant pair, not every offer ever placed.
        self._by_pair: Dict[Tuple[tuple, tuple], List[int]] = {}
        self._recent: Deque[int] = deque(maxlen=self.RECENT_WINDOW)

    def __len__(self) -> int:
        return len([offer for offer in self._offers.values() if offer.is_open])

    def all_offers(self) -> List[Offer]:
        return list(self._offers.values())

    def recent_open_offers(self) -> List[Offer]:
        """The most recently placed offers that are still open (cheap lookup)."""
        return [
            self._offers[offer_id]
            for offer_id in self._recent
            if self._offers[offer_id].is_open
        ]

    def open_offers(self, gets_asset: tuple, pays_asset: tuple) -> List[Offer]:
        """Open offers selling ``gets_asset`` for ``pays_asset``, best price first."""
        pair = (gets_asset, pays_asset)
        offer_ids = self._by_pair.get(pair, [])
        live_ids = [offer_id for offer_id in offer_ids if self._offers[offer_id].is_open]
        # Prune closed offers so the index does not grow without bound.
        if len(live_ids) != len(offer_ids):
            self._by_pair[pair] = live_ids
        book = [self._offers[offer_id] for offer_id in live_ids]
        return sorted(book, key=lambda offer: offer.price)

    def get(self, offer_id: int) -> Offer:
        offer = self._offers.get(offer_id)
        if offer is None:
            raise ChainError(f"unknown offer: {offer_id}")
        return offer

    def place(
        self,
        owner: str,
        taker_gets: IouAmount,
        taker_pays: IouAmount,
        timestamp: float = 0.0,
    ) -> Tuple[Offer, List[ExchangeExecution]]:
        """Place an offer, crossing it against the opposite side of the book.

        Returns the (possibly partially or fully filled) offer and the list
        of executions it triggered.
        """
        if taker_gets.value <= 0 or taker_pays.value <= 0:
            raise ChainError("offers must exchange positive amounts")
        if taker_gets.asset_key == taker_pays.asset_key:
            raise ChainError("offers must exchange two distinct assets")
        offer = Offer(
            offer_id=self._next_id,
            owner=owner,
            taker_gets=taker_gets,
            taker_pays=taker_pays,
            created_at=timestamp,
        )
        self._next_id += 1
        executions = self._cross(offer, timestamp)
        self._offers[offer.offer_id] = offer
        self._by_pair.setdefault(offer.pair, []).append(offer.offer_id)
        self._recent.append(offer.offer_id)
        return offer, executions

    def _cross(self, incoming: Offer, timestamp: float) -> List[ExchangeExecution]:
        """Match ``incoming`` against resting offers on the opposite side."""
        executions: List[ExchangeExecution] = []
        # The opposite side sells what the incoming offer wants to receive.
        opposite = self.open_offers(
            incoming.taker_pays.asset_key, incoming.taker_gets.asset_key
        )
        incoming_price = incoming.price
        for resting in opposite:
            if incoming.remaining_gets <= 1e-12:
                break
            # The resting offer's price is expressed in the incoming offer's
            # "gets" units; a trade happens when the combined prices cross.
            if resting.price * incoming_price > 1.0 + 1e-9:
                break
            # Trade size limited by both sides, measured in the incoming
            # offer's "gets" asset (what the incoming owner is selling).
            resting_wants = resting.taker_pays.value - resting.filled_pays
            trade_gets = min(incoming.remaining_gets, resting_wants)
            if trade_gets <= 1e-12:
                continue
            trade_pays = trade_gets * incoming_price
            incoming.filled_gets += trade_gets
            incoming.filled_pays += trade_pays
            resting.filled_pays += trade_gets
            resting.filled_gets += trade_pays
            executions.append(
                ExchangeExecution(
                    timestamp=timestamp,
                    buyer=resting.owner,
                    seller=incoming.owner,
                    sold=incoming.taker_gets.with_value(trade_gets),
                    bought=incoming.taker_pays.with_value(trade_pays),
                )
            )
        self.executions.extend(executions)
        return executions

    def cancel(self, offer_id: int, owner: str) -> Offer:
        """Cancel a resting offer (the ``OfferCancel`` transaction)."""
        offer = self.get(offer_id)
        if offer.owner != owner:
            raise ChainError("only the offer owner may cancel it")
        offer.cancelled = True
        return offer

    # -- price oracle -----------------------------------------------------------
    def executed_rates_vs_xrp(self, currency: str, issuer: str) -> List[Tuple[float, float]]:
        """(timestamp, XRP per token) for every execution of the IOU against XRP."""
        asset = (currency, issuer)
        rates: List[Tuple[float, float]] = []
        for execution in self.executions:
            sold_key = execution.sold.asset_key
            bought_key = execution.bought.asset_key
            if sold_key == asset and bought_key == (XRP_CURRENCY, ""):
                if execution.sold.value > 0:
                    rates.append((execution.timestamp, execution.bought.value / execution.sold.value))
            elif bought_key == asset and sold_key == (XRP_CURRENCY, ""):
                if execution.bought.value > 0:
                    rates.append((execution.timestamp, execution.sold.value / execution.bought.value))
        return sorted(rates)

    def average_rate_vs_xrp(self, currency: str, issuer: str) -> float:
        """Average executed XRP rate of the IOU; 0.0 when it never traded."""
        rates = [rate for _, rate in self.executed_rates_vs_xrp(currency, issuer)]
        if not rates:
            return 0.0
        return sum(rates) / len(rates)

    def fill_fraction(self) -> float:
        """Share of offers that were fulfilled to any extent (Figure 7)."""
        offers = list(self._offers.values())
        if not offers:
            return 0.0
        return sum(1 for offer in offers if offer.was_filled) / len(offers)
