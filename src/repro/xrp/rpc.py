"""Simulated XRP ledger RPC / Data API endpoints.

The paper uses three data sources for XRP: the community full-history
websocket endpoint (``ledger`` method), the XRP Scan explorer API for
account metadata (username, parent account), and the Ripple Data API for
issuer-specific exchange rates.  The simulated endpoint exposes all three
behind the same interface the other chains' endpoints implement, so the
crawler and the value analysis do not care which chain they are talking to.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.common.errors import BlockNotFound, EndpointUnavailable
from repro.common.jsonrpc import RpcDispatcher, RpcRequest
from repro.common.ratelimit import TokenBucket
from repro.common.records import BlockRecord
from repro.common.rng import DeterministicRng
from repro.eos.rpc import EndpointProfile
from repro.xrp.ledger import XrpLedger


class XrpRpcEndpoint:
    """Simulated full-history endpoint + explorer + data API for XRP."""

    chain_name = "xrp"

    def __init__(
        self,
        ledger: XrpLedger,
        profile: Optional[EndpointProfile] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.ledger = ledger
        self.profile = profile or EndpointProfile(
            name="xrp-full-history", requests_per_second=50.0, burst=100.0
        )
        self.rng = rng or DeterministicRng(0)
        self._bucket = TokenBucket(
            rate=self.profile.requests_per_second, capacity=self.profile.burst
        )
        self._dispatcher = RpcDispatcher()
        self._dispatcher.register("server_info", self._handle_server_info)
        self._dispatcher.register("ledger", self._handle_ledger)
        self._dispatcher.register("account_info", self._handle_account_info)
        self._dispatcher.register("exchange_rate", self._handle_exchange_rate)
        self.requests_served = 0

    @property
    def name(self) -> str:
        return self.profile.name

    # -- crawler protocol ---------------------------------------------------------
    def head_height(self, now: float) -> int:
        result = self.call("server_info", {}, now)
        return int(result["validated_ledger_index"])

    def fetch_block(self, height: int, now: float) -> BlockRecord:
        result = self.call("ledger", {"ledger_index": height}, now)
        return BlockRecord.from_dict(result)

    def latency(self) -> float:
        return self.profile.base_latency * (1.0 + 0.2 * self.rng.random())

    # -- explorer / data API ---------------------------------------------------------
    def account_info(self, address: str, now: float) -> Mapping[str, Any]:
        """Username and parent account, as served by XRP Scan."""
        return self.call("account_info", {"account": address}, now)

    def exchange_rate(self, currency: str, issuer: str, now: float) -> float:
        """Average executed XRP rate of an IOU, as served by the Data API."""
        result = self.call("exchange_rate", {"currency": currency, "issuer": issuer}, now)
        return float(result["rate"])

    # -- plumbing -----------------------------------------------------------------
    def call(self, method: str, params: Mapping[str, Any], now: float) -> Any:
        self._bucket.acquire_or_raise(now)
        if self.profile.failure_rate and self.rng.bernoulli(self.profile.failure_rate):
            raise EndpointUnavailable(f"{self.name} transient failure")
        response = self._dispatcher.dispatch(RpcRequest(method=method, params=params))
        self.requests_served += 1
        return response.raise_for_error()

    def _handle_server_info(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        head = self.ledger.head()
        return {
            "validated_ledger_index": head.height if head else self.ledger.config.start_index - 1,
            "close_time": head.timestamp if head else self.ledger.clock.now,
        }

    def _handle_ledger(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        index = int(params.get("ledger_index", -1))
        try:
            block = self.ledger.block_at(index)
        except Exception as exc:
            raise BlockNotFound(index) from exc
        return block.to_dict()

    def _handle_account_info(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        address = str(params.get("account", ""))
        account = self.ledger.accounts.maybe_get(address)
        if account is None:
            return {"account": address, "username": "", "parent": ""}
        return {
            "account": address,
            "username": account.username,
            "parent": account.parent,
            "activated_at": account.activated_at,
        }

    def _handle_exchange_rate(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        currency = str(params.get("currency", ""))
        issuer = str(params.get("issuer", ""))
        rate = self.ledger.orderbook.average_rate_vs_xrp(currency, issuer)
        return {"currency": currency, "issuer": issuer, "rate": rate}
