"""XRP transaction types, result codes and the transaction engine.

The XRP ledger defines a fixed set of transaction types (Figure 1's XRP
column).  A transaction that fails validation *after* being included in a
ledger is still recorded — its only effect is the fee deduction — which is
why roughly 10 % of the throughput the paper measures consists of failed
transactions (§3.2).  The two failure codes the paper highlights are
``PATH_DRY`` (Payment: no usable path/liquidity) and ``tecUNFUNDED_OFFER``
(OfferCreate: the creator does not hold the funds promised).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ChainError
from repro.xrp.accounts import XrpAccountRegistry, is_special_address
from repro.xrp.amounts import (
    ACCOUNT_RESERVE_XRP,
    STANDARD_FEE_DROPS,
    XRP_CURRENCY,
    IouAmount,
    drops_to_xrp,
)
from repro.xrp.orderbook import ExchangeExecution, OrderBook
from repro.xrp.trustlines import TrustLineTable


class TransactionType(str, enum.Enum):
    """Transaction types observed in the paper's dataset (Figure 1)."""

    PAYMENT = "Payment"
    OFFER_CREATE = "OfferCreate"
    OFFER_CANCEL = "OfferCancel"
    TRUST_SET = "TrustSet"
    ACCOUNT_SET = "AccountSet"
    SIGNER_LIST_SET = "SignerListSet"
    SET_REGULAR_KEY = "SetRegularKey"
    ESCROW_CREATE = "EscrowCreate"
    ESCROW_FINISH = "EscrowFinish"
    ESCROW_CANCEL = "EscrowCancel"
    PAYMENT_CHANNEL_CREATE = "PaymentChannelCreate"
    PAYMENT_CHANNEL_CLAIM = "PaymentChannelClaim"
    ENABLE_AMENDMENT = "EnableAmendment"


class ResultCode(str, enum.Enum):
    """Engine result codes (successful and recorded-failure codes)."""

    SUCCESS = "tesSUCCESS"
    PATH_DRY = "tecPATH_DRY"
    UNFUNDED_OFFER = "tecUNFUNDED_OFFER"
    UNFUNDED_PAYMENT = "tecUNFUNDED_PAYMENT"
    NO_DST = "tecNO_DST"
    NO_LINE = "tecNO_LINE"
    NO_ENTRY = "tecNO_ENTRY"
    BAD_AMOUNT = "temBAD_AMOUNT"

    @property
    def is_success(self) -> bool:
        return self is ResultCode.SUCCESS


@dataclass(frozen=True)
class XrpTransaction:
    """One submitted XRP ledger transaction."""

    type: TransactionType
    account: str
    destination: str = ""
    amount: Optional[IouAmount] = None
    taker_gets: Optional[IouAmount] = None
    taker_pays: Optional[IouAmount] = None
    offer_sequence: int = 0
    limit: Optional[IouAmount] = None
    destination_tag: Optional[int] = None
    fee_drops: int = STANDARD_FEE_DROPS
    finish_after: float = 0.0
    escrow_id: int = 0
    data: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class Escrow:
    """An XRP amount locked until ``finish_after`` (EscrowCreate/Finish/Cancel)."""

    escrow_id: int
    owner: str
    destination: str
    amount_xrp: float
    finish_after: float
    finished: bool = False
    cancelled: bool = False

    @property
    def is_open(self) -> bool:
        return not self.finished and not self.cancelled


@dataclass
class AppliedTransaction:
    """Outcome of applying a transaction to the ledger state."""

    transaction: XrpTransaction
    result: ResultCode
    fee_xrp: float
    executions: List[ExchangeExecution] = field(default_factory=list)
    offer_id: int = 0
    delivered: Optional[IouAmount] = None

    @property
    def success(self) -> bool:
        return self.result.is_success


class XrpTransactionEngine:
    """Applies transactions to the ledger state (accounts, lines, DEX, escrows)."""

    def __init__(
        self,
        accounts: XrpAccountRegistry,
        trustlines: Optional[TrustLineTable] = None,
        orderbook: Optional[OrderBook] = None,
    ) -> None:
        self.accounts = accounts
        # ``is None`` rather than ``or``: an empty table/book is falsy (it
        # defines __len__) but must still be shared with the caller.
        self.trustlines = trustlines if trustlines is not None else TrustLineTable()
        self.orderbook = orderbook if orderbook is not None else OrderBook()
        self.escrows: Dict[int, Escrow] = {}
        self._next_escrow_id = 1
        self.fees_burned_xrp = 0.0

    # -- helpers -----------------------------------------------------------------
    def _charge_fee(self, transaction: XrpTransaction) -> float:
        """Deduct the fee from the sender; fees are burned, not redistributed."""
        fee_xrp = drops_to_xrp(transaction.fee_drops)
        account = self.accounts.get(transaction.account)
        # Fees are always charged, even for failed transactions; they may dip
        # into the reserve rather than fail.
        account.debit_xrp(min(fee_xrp, account.xrp_balance), respect_reserve=False)
        self.fees_burned_xrp += fee_xrp
        return fee_xrp

    # -- dispatch ---------------------------------------------------------------
    def apply(self, transaction: XrpTransaction, timestamp: float = 0.0) -> AppliedTransaction:
        """Apply one transaction, returning its recorded outcome."""
        if transaction.account not in self.accounts:
            raise ChainError(f"sender account does not exist: {transaction.account}")
        fee_xrp = self._charge_fee(transaction)
        handler = {
            TransactionType.PAYMENT: self._apply_payment,
            TransactionType.OFFER_CREATE: self._apply_offer_create,
            TransactionType.OFFER_CANCEL: self._apply_offer_cancel,
            TransactionType.TRUST_SET: self._apply_trust_set,
            TransactionType.ESCROW_CREATE: self._apply_escrow_create,
            TransactionType.ESCROW_FINISH: self._apply_escrow_finish,
            TransactionType.ESCROW_CANCEL: self._apply_escrow_cancel,
        }.get(transaction.type, self._apply_noop)
        result, executions, offer_id, delivered = handler(transaction, timestamp)
        self.accounts.get(transaction.account).next_sequence()
        return AppliedTransaction(
            transaction=transaction,
            result=result,
            fee_xrp=fee_xrp,
            executions=executions,
            offer_id=offer_id,
            delivered=delivered,
        )

    _NOOP_RESULT: Tuple[ResultCode, list, int, Optional[IouAmount]] = (
        ResultCode.SUCCESS,
        [],
        0,
        None,
    )

    def _apply_noop(self, transaction: XrpTransaction, timestamp: float):
        """Account settings transactions succeed without moving value."""
        return self._NOOP_RESULT

    # -- Payment -----------------------------------------------------------------
    def _apply_payment(self, transaction: XrpTransaction, timestamp: float):
        amount = transaction.amount
        if amount is None or amount.value <= 0:
            return ResultCode.BAD_AMOUNT, [], 0, None
        destination = transaction.destination
        sender = self.accounts.get(transaction.account)
        if amount.is_native:
            if destination not in self.accounts and not is_special_address(destination):
                return ResultCode.NO_DST, [], 0, None
            if sender.spendable_xrp + 1e-9 < amount.value:
                return ResultCode.UNFUNDED_PAYMENT, [], 0, None
            sender.debit_xrp(amount.value)
            if destination in self.accounts:
                self.accounts.get(destination).credit_xrp(amount.value)
            # XRP sent to special addresses is permanently lost (§2.3.3).
            return ResultCode.SUCCESS, [], 0, amount
        # IOU payment: must ride trust lines end to end.
        if destination not in self.accounts:
            return ResultCode.NO_DST, [], 0, None
        if not self.trustlines.can_send(transaction.account, amount):
            return ResultCode.PATH_DRY, [], 0, None
        if not self.trustlines.can_receive(destination, amount):
            return ResultCode.PATH_DRY, [], 0, None
        self.trustlines.transfer(transaction.account, destination, amount)
        return ResultCode.SUCCESS, [], 0, amount

    # -- OfferCreate / OfferCancel --------------------------------------------------
    def _offer_is_funded(self, owner: str, taker_gets: IouAmount) -> bool:
        if taker_gets.is_native:
            return self.accounts.get(owner).spendable_xrp + 1e-9 >= taker_gets.value
        return self.trustlines.can_send(owner, taker_gets)

    def _apply_offer_create(self, transaction: XrpTransaction, timestamp: float):
        taker_gets = transaction.taker_gets
        taker_pays = transaction.taker_pays
        if taker_gets is None or taker_pays is None:
            return ResultCode.BAD_AMOUNT, [], 0, None
        if not self._offer_is_funded(transaction.account, taker_gets):
            return ResultCode.UNFUNDED_OFFER, [], 0, None
        offer, executions = self.orderbook.place(
            transaction.account, taker_gets, taker_pays, timestamp
        )
        for execution in executions:
            self._settle_execution(execution)
        return ResultCode.SUCCESS, executions, offer.offer_id, None

    def _settle_execution(self, execution: ExchangeExecution) -> None:
        """Move balances for one executed exchange (best-effort settlement)."""
        for sender, receiver, amount in (
            (execution.seller, execution.buyer, execution.sold),
            (execution.buyer, execution.seller, execution.bought),
        ):
            try:
                if amount.is_native:
                    self.accounts.get(sender).debit_xrp(amount.value)
                    self.accounts.get(receiver).credit_xrp(amount.value)
                else:
                    self.trustlines.credit(receiver, amount)
                    if sender != amount.issuer and self.trustlines.has_line(
                        sender, amount.currency, amount.issuer
                    ):
                        line = self.trustlines.get(sender, amount.currency, amount.issuer)
                        line.balance = max(0.0, line.balance - amount.value)
            except ChainError:
                # Settlement shortfalls do not unwind the executed exchange in
                # the simulator; the analysis only relies on execution records.
                continue

    def _apply_offer_cancel(self, transaction: XrpTransaction, timestamp: float):
        try:
            self.orderbook.cancel(transaction.offer_sequence, transaction.account)
        except ChainError:
            return ResultCode.NO_ENTRY, [], 0, None
        return ResultCode.SUCCESS, [], 0, None

    # -- TrustSet -----------------------------------------------------------------
    def _apply_trust_set(self, transaction: XrpTransaction, timestamp: float):
        limit = transaction.limit
        if limit is None or limit.is_native:
            return ResultCode.BAD_AMOUNT, [], 0, None
        try:
            self.trustlines.set_trust(
                transaction.account, limit.currency, limit.issuer, limit.value
            )
        except ChainError:
            return ResultCode.NO_LINE, [], 0, None
        return ResultCode.SUCCESS, [], 0, None

    # -- Escrows ------------------------------------------------------------------
    def _apply_escrow_create(self, transaction: XrpTransaction, timestamp: float):
        amount = transaction.amount
        if amount is None or not amount.is_native or amount.value <= 0:
            return ResultCode.BAD_AMOUNT, [], 0, None
        sender = self.accounts.get(transaction.account)
        if sender.spendable_xrp + 1e-9 < amount.value:
            return ResultCode.UNFUNDED_PAYMENT, [], 0, None
        sender.debit_xrp(amount.value)
        escrow = Escrow(
            escrow_id=self._next_escrow_id,
            owner=transaction.account,
            destination=transaction.destination or transaction.account,
            amount_xrp=amount.value,
            finish_after=transaction.finish_after,
        )
        self.escrows[escrow.escrow_id] = escrow
        self._next_escrow_id += 1
        return ResultCode.SUCCESS, [], escrow.escrow_id, None

    def _apply_escrow_finish(self, transaction: XrpTransaction, timestamp: float):
        escrow = self.escrows.get(transaction.escrow_id)
        if escrow is None or not escrow.is_open:
            return ResultCode.NO_ENTRY, [], 0, None
        if timestamp < escrow.finish_after:
            return ResultCode.NO_ENTRY, [], 0, None
        escrow.finished = True
        destination = escrow.destination
        if destination in self.accounts:
            self.accounts.get(destination).credit_xrp(escrow.amount_xrp)
        delivered = IouAmount.native(escrow.amount_xrp)
        return ResultCode.SUCCESS, [], escrow.escrow_id, delivered

    def _apply_escrow_cancel(self, transaction: XrpTransaction, timestamp: float):
        escrow = self.escrows.get(transaction.escrow_id)
        if escrow is None or not escrow.is_open:
            return ResultCode.NO_ENTRY, [], 0, None
        escrow.cancelled = True
        self.accounts.get(escrow.owner).credit_xrp(escrow.amount_xrp)
        return ResultCode.SUCCESS, [], escrow.escrow_id, None
