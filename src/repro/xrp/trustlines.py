"""Trust lines: how issuer-specific IOU balances live on the XRP ledger.

An account can only hold an IOU of ``(currency, issuer)`` if it has opened a
trust line towards the issuer (the ``TrustSet`` transaction) with a limit at
least as large as the balance.  Payments of IOUs move balances along trust
lines; if the required lines do not exist or have no capacity, the payment
fails with ``PATH_DRY`` — the most common Payment failure in the paper's
dataset (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.common.errors import ChainError
from repro.xrp.amounts import XRP_CURRENCY, IouAmount


@dataclass
class TrustLine:
    """A trust line from ``holder`` towards ``issuer`` for ``currency``."""

    holder: str
    issuer: str
    currency: str
    limit: float
    balance: float = 0.0

    def __post_init__(self) -> None:
        if self.currency == XRP_CURRENCY:
            raise ChainError("trust lines cannot be established for native XRP")
        if self.limit < 0:
            raise ChainError("trust line limit must be non-negative")

    @property
    def capacity(self) -> float:
        """How much more of the IOU the holder is willing to accept."""
        return max(0.0, self.limit - self.balance)


class TrustLineTable:
    """All trust lines on the ledger, indexed by (holder, currency, issuer)."""

    def __init__(self) -> None:
        self._lines: Dict[Tuple[str, str, str], TrustLine] = {}

    def __len__(self) -> int:
        return len(self._lines)

    def _key(self, holder: str, currency: str, issuer: str) -> Tuple[str, str, str]:
        return (holder, currency, issuer)

    def set_trust(self, holder: str, currency: str, issuer: str, limit: float) -> TrustLine:
        """Create or update a trust line (the ``TrustSet`` transaction)."""
        if holder == issuer:
            raise ChainError("an issuer does not need a trust line to itself")
        key = self._key(holder, currency, issuer)
        line = self._lines.get(key)
        if line is None:
            line = TrustLine(holder=holder, issuer=issuer, currency=currency, limit=limit)
            self._lines[key] = line
        else:
            if limit < line.balance:
                raise ChainError("cannot lower a trust line limit below its balance")
            line.limit = limit
        return line

    def get(self, holder: str, currency: str, issuer: str) -> TrustLine:
        line = self._lines.get(self._key(holder, currency, issuer))
        if line is None:
            raise ChainError(
                f"no trust line from {holder} for {currency}/{issuer}"
            )
        return line

    def has_line(self, holder: str, currency: str, issuer: str) -> bool:
        return self._key(holder, currency, issuer) in self._lines

    def balance(self, holder: str, currency: str, issuer: str) -> float:
        line = self._lines.get(self._key(holder, currency, issuer))
        return line.balance if line else 0.0

    def lines_of(self, holder: str) -> List[TrustLine]:
        return [line for line in self._lines.values() if line.holder == holder]

    def lines_towards(self, issuer: str) -> List[TrustLine]:
        return [line for line in self._lines.values() if line.issuer == issuer]

    def all_lines(self) -> Iterable[TrustLine]:
        return self._lines.values()

    # -- IOU movement ---------------------------------------------------------
    def can_receive(self, holder: str, amount: IouAmount) -> bool:
        """Whether ``holder`` can accept ``amount`` over an existing line."""
        if amount.is_native:
            return True
        line = self._lines.get(self._key(holder, amount.currency, amount.issuer))
        if line is None:
            return False
        return line.capacity + 1e-9 >= amount.value

    def can_send(self, holder: str, amount: IouAmount) -> bool:
        """Whether ``holder`` holds enough of the IOU (issuers mint freely)."""
        if amount.is_native:
            return True
        if holder == amount.issuer:
            return True
        return self.balance(holder, amount.currency, amount.issuer) + 1e-9 >= amount.value

    def transfer(self, sender: str, receiver: str, amount: IouAmount) -> None:
        """Move an IOU balance from ``sender`` to ``receiver``.

        Issuing (sender == issuer) creates new IOUs; redemption
        (receiver == issuer) destroys them.  Everything else rides existing
        trust lines, which must have enough balance / capacity.
        """
        if amount.is_native:
            raise ChainError("native XRP does not move over trust lines")
        if amount.value < 0:
            raise ChainError("transfer amount must be non-negative")
        if sender != amount.issuer:
            line = self.get(sender, amount.currency, amount.issuer)
            if line.balance + 1e-9 < amount.value:
                raise ChainError("insufficient IOU balance (PATH_DRY)")
            line.balance -= amount.value
        if receiver != amount.issuer:
            line = self.get(receiver, amount.currency, amount.issuer)
            if line.capacity + 1e-9 < amount.value:
                raise ChainError("receiving trust line has no capacity (PATH_DRY)")
            line.balance += amount.value

    def credit(self, holder: str, amount: IouAmount) -> None:
        """Force-credit an IOU balance (used when seeding scenario state)."""
        if amount.is_native:
            raise ChainError("native XRP does not live on trust lines")
        line = self._lines.get(self._key(holder, amount.currency, amount.issuer))
        if line is None:
            line = self.set_trust(holder, amount.currency, amount.issuer, limit=max(amount.value, 1e9))
        line.balance += amount.value
        if line.balance > line.limit:
            line.limit = line.balance
