"""Calibrated XRP ledger workload generator.

Regenerates the shape of the XRP traffic the paper observed
(2019-10-01 → 2019-12-31):

* the transaction-type mix of Figure 1 / Figure 7 — ~50 % ``OfferCreate``,
  ~46 % ``Payment``, a few percent of ``TrustSet`` / ``OfferCancel`` /
  account-settings transactions, and ~10 % recorded failures
  (``PATH_DRY`` payments, ``tecUNFUNDED_OFFER`` offers);
* a handful of offer-bot accounts, activated by a Huobi-named parent, that
  produce >98 % ``OfferCreate`` traffic with the destination tag 104398 on
  their rare payments (Figure 8);
* two payment-spam waves driven by accounts activated by a single parent,
  shuffling a worthless BTC IOU among themselves (§4.3);
* exchange-to-exchange XRP payments (Binance, Bithumb, Coinbase, ...) plus
  Ripple's monthly escrow release-and-return, carrying essentially all the
  real value (Figure 12);
* issuer-specific BTC IOU exchange rates, including the self-dealt
  ``rKRN...`` / ``rMyronE...`` trades whose rate collapses from 30,500 XRP
  to below 1 XRP (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.clock import SECONDS_PER_DAY, timestamp_from_iso
from repro.common.records import BlockRecord, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.xrp.accounts import generate_address
from repro.xrp.amounts import IouAmount
from repro.xrp.ledger import XrpLedger, XrpLedgerConfig
from repro.xrp.transactions import TransactionType, XrpTransaction

#: Destination tag shared by the Huobi-linked bot accounts (§3.3).
HUOBI_DESTINATION_TAG = 104_398

#: Well-known issuer addresses used by the workload (shapes of the real ones).
BITSTAMP_ISSUER = "rvYAfWj5gh67oV6fW32ZzP3Aw4Eubs59B"
GATEHUB_ISSUER = "rchGBxcD1A1C2tdxF6papQYZ8kjRKMYcL"
LIQUID_LINKED_ISSUER = "rKRNtZzfrkTwE4ggqXbmfgoy57RBJYS7TS"
MYRONE_ACCOUNT = "rMyronEjVcAdqUvhzx4MaBDwBPSPCrDHYm"
SPAM_PARENT = "rpJZ5WyotdphojwMLxCr2prhULvG3Voe3X"
RIPPLE_ACCOUNT = "rRippLeEscrowAccountSimulated1"
MAKER_ACCOUNT = "rs9tBKt96q9gwrePKPqimUuF7vErgMaker"

#: Exchange clusters seeded with usernames (Figure 12 participants).
EXCHANGE_USERNAMES = (
    "Binance",
    "Huobi Global",
    "Bithumb",
    "Coinbase",
    "Bitstamp",
    "UPbit",
    "Bittrex",
    "BitGo",
    "Liquid",
    "Uphold",
)

#: Transaction-type mix (Figure 1, XRP column), excluding engineered cases.
TYPE_MIX: Dict[str, float] = {
    "offer_bot": 0.40,          # OfferCreate from the Huobi-linked bots
    "offer_user": 0.103,        # OfferCreate from ordinary accounts
    "offer_taker": 0.002,       # OfferCreate crossing a resting offer (rare)
    "payment_value": 0.024,     # value-bearing payments (XRP / valued IOUs)
    "payment_no_value": 0.33,   # payments of worthless IOUs (incl. spam waves)
    "payment_failed": 0.05,     # PATH_DRY payments
    "offer_failed": 0.055,      # tecUNFUNDED_OFFER offers
    "offer_cancel": 0.015,
    "trust_set": 0.019,
    "account_set": 0.001,
    "other": 0.001,
}

#: Typical IOU payment sizes per currency, chosen so the XRP-denominated
#: fiat/BTC flows stay an order of magnitude below the native XRP flows, as
#: in Figure 12 (43 billion XRP vs ~0.8 billion XRP-equivalent of USD).
IOU_PAYMENT_SCALE: Dict[str, float] = {
    "BTC": 0.01,
    "USD": 40.0,
    "EUR": 10.0,
    "CNY": 30.0,
}


@dataclass
class XrpWorkloadConfig:
    """Knobs of the calibrated XRP workload."""

    start_date: str = "2019-10-01"
    end_date: str = "2020-01-01"
    #: Ledgers closed per day (the real ledger closes ~22,000; scaled down).
    ledgers_per_day: int = 24
    #: Mean transactions per day (scaled down from ~1.6M real).
    transactions_per_day: int = 3_000
    #: Number of Huobi-linked offer-bot accounts (Figure 8).
    offer_bot_count: int = 5
    #: Number of accounts the spam parent activates for each wave (§4.3).
    spam_accounts_per_wave: int = 50
    #: Spam waves as (start_date, end_date, intensity multiplier on payments).
    spam_waves: Tuple[Tuple[str, str, float], ...] = (
        ("2019-10-25", "2019-11-05", 2.0),
        ("2019-11-25", "2019-12-08", 3.0),
    )
    ordinary_account_count: int = 150
    #: Size of the December self-dealt BTC IOU issuance (§4.3).  The paper's
    #: real figure is 360,222 BTC IOU (an 11-billion-XRP valuation); the
    #: default is scaled down in proportion to the workload's reduced volume
    #: so the Figure 12 flows keep the paper's XRP-dominant shape.
    myrone_btc_amount: float = 3.60222
    #: Index of the first generated ledger (the paper window's real start).
    #: Window-sharded generation continues a previous shard's index range.
    start_index: int = 50_400_001
    #: Starting value of the transaction-id counter; window shards carve
    #: disjoint id ranges so concatenated shards never collide on ids.
    transaction_id_offset: int = 0
    seed: int = 23

    def __post_init__(self) -> None:
        if self.ledgers_per_day <= 0:
            raise ValueError("ledgers_per_day must be positive")
        if self.transactions_per_day <= 0:
            raise ValueError("transactions_per_day must be positive")
        if timestamp_from_iso(self.end_date) <= timestamp_from_iso(self.start_date):
            raise ValueError("end_date must be after start_date")

    @property
    def start_timestamp(self) -> float:
        return timestamp_from_iso(self.start_date)

    @property
    def end_timestamp(self) -> float:
        return timestamp_from_iso(self.end_date)

    @property
    def total_days(self) -> float:
        return (self.end_timestamp - self.start_timestamp) / SECONDS_PER_DAY


class XrpWorkloadGenerator:
    """Drives an :class:`XrpLedger` with the calibrated transaction mix."""

    def __init__(self, config: Optional[XrpWorkloadConfig] = None):
        self.config = config or XrpWorkloadConfig()
        self.rng = DeterministicRng(self.config.seed)
        self.ledger = self._build_ledger()
        self.exchange_accounts: Dict[str, str] = {}
        self.exchange_hot_wallets: Dict[str, List[str]] = {}
        self.offer_bots: List[str] = []
        self.spam_accounts: List[str] = []
        self.ordinary_accounts: List[str] = []
        self._myrone_trade_done = False
        self._bootstrap_state()

    # -- setup --------------------------------------------------------------------
    def _build_ledger(self) -> XrpLedger:
        ledger_config = XrpLedgerConfig(
            chain_start=self.config.start_timestamp,
            start_index=self.config.start_index,
            close_interval=SECONDS_PER_DAY / self.config.ledgers_per_day,
            transaction_id_offset=self.config.transaction_id_offset,
        )
        return XrpLedger(config=ledger_config, rng=self.rng.fork("ledger"))

    def _bootstrap_state(self) -> None:
        config = self.config
        accounts = self.ledger.accounts
        trustlines = self.ledger.trustlines
        now = config.start_timestamp

        # Ripple's escrow/operations account (Figure 12's largest sender).
        accounts.create_genesis(RIPPLE_ACCOUNT, balance=5_000_000.0, username="Ripple")

        # Exchanges with registered usernames and a couple of hot wallets each.
        for username in EXCHANGE_USERNAMES:
            parent = accounts.create_genesis(balance=2_000_000.0, username=username)
            self.exchange_accounts[username] = parent.address
            wallets = []
            for _ in range(2):
                wallet = accounts.activate(
                    parent.address, initial_xrp=100_000.0, timestamp=now
                )
                wallets.append(wallet.address)
            self.exchange_hot_wallets[username] = wallets

        # Gateways issuing IOUs that actually trade against XRP.
        accounts.create_genesis(BITSTAMP_ISSUER, balance=500_000.0, username="Bitstamp")
        accounts.create_genesis(GATEHUB_ISSUER, balance=500_000.0, username="Gatehub Fifth")

        # The Liquid-linked issuer and the Myrone account (Figure 11b).
        liquid_parent = self.exchange_accounts["Liquid"]
        uphold_parent = self.exchange_accounts["Uphold"]
        accounts.activate(liquid_parent, initial_xrp=50_000.0, timestamp=now, address=LIQUID_LINKED_ISSUER)
        accounts.activate(uphold_parent, initial_xrp=800_000.0, timestamp=now, address=MYRONE_ACCOUNT)

        # Huobi-linked offer bots (Figure 8): descendants of Huobi Global.
        huobi_parent = self.exchange_accounts["Huobi Global"]
        for _ in range(config.offer_bot_count):
            bot = accounts.activate(huobi_parent, initial_xrp=200_000.0, timestamp=now)
            self.offer_bots.append(bot.address)
        # The standalone market-maker account from Figure 8.
        accounts.create_genesis(MAKER_ACCOUNT, balance=300_000.0)

        # The spam parent; it activates its swarm lazily at the wave starts.
        accounts.create_genesis(SPAM_PARENT, balance=1_000_000.0)

        # Ordinary user accounts.
        for _ in range(config.ordinary_account_count):
            account = accounts.create_genesis(
                balance=round(50.0 + self.rng.pareto_amount(40.0), 2)
            )
            self.ordinary_accounts.append(account.address)

        # Trust lines + seed balances for the valued IOUs (USD/EUR/BTC/CNY).
        self._valued_ious = [
            IouAmount.iou("USD", 0.0, BITSTAMP_ISSUER),
            IouAmount.iou("EUR", 0.0, GATEHUB_ISSUER),
            IouAmount.iou("BTC", 0.0, BITSTAMP_ISSUER),
            IouAmount.iou("BTC", 0.0, GATEHUB_ISSUER),
            IouAmount.iou("CNY", 0.0, self.exchange_accounts["Huobi Global"]),
        ]
        holders = (
            [wallet for wallets in self.exchange_hot_wallets.values() for wallet in wallets]
            + self.offer_bots
            + [MAKER_ACCOUNT]
        )
        for asset in self._valued_ious:
            for holder in holders:
                trustlines.set_trust(holder, asset.currency, asset.issuer, limit=1e9)
                trustlines.credit(holder, asset.with_value(10_000.0))

        # The worthless BTC IOU shuffled by the spam swarm is issued by the
        # spam parent itself and never trades on the DEX, so its oracle rate
        # stays at zero.  The Liquid-linked issuer's BTC IOU is a *different*
        # asset, reserved for the December self-dealt trades (Figure 11b).
        self._worthless_btc = IouAmount.iou("BTC", 0.0, SPAM_PARENT)
        trustlines.set_trust(MYRONE_ACCOUNT, "BTC", LIQUID_LINKED_ISSUER, limit=1e9)

        # A privately issued "BTC" that never trades on the DEX — the kind of
        # token the paper's Figure 10 tweet mistook for real bitcoin.  Every
        # ordinary account trusts it so zero-value payments succeed.
        self._private_issuer = self.ordinary_accounts[0]
        self._private_btc = IouAmount.iou("BTC", 0.0, self._private_issuer)
        for address in self.ordinary_accounts[1:]:
            trustlines.set_trust(address, "BTC", self._private_issuer, limit=1e9)
            trustlines.credit(address, self._private_btc.with_value(1_000.0))

        # Establish on-ledger reference rates by executing real exchanges
        # against XRP for the valued IOUs (the paper's price oracle, §4.3).
        self._seed_reference_rates()

    def _seed_reference_rates(self) -> None:
        """Execute a few genuine DEX trades so valued IOUs have an XRP rate."""
        rates = {
            ("BTC", BITSTAMP_ISSUER): 36_050.0,
            ("BTC", GATEHUB_ISSUER): 35_817.0,
            ("USD", BITSTAMP_ISSUER): 5.4,
            ("EUR", GATEHUB_ISSUER): 4.9,
            ("CNY", self.exchange_accounts["Huobi Global"]): 0.7,
        }
        bitstamp_wallet = self.exchange_hot_wallets["Bitstamp"][0]
        binance_wallet = self.exchange_hot_wallets["Binance"][0]
        transactions: List[XrpTransaction] = []
        for (currency, issuer), rate in rates.items():
            amount = 1.0 if currency == "BTC" else 100.0
            # Seller offers the IOU for XRP; buyer crosses it at the same rate.
            transactions.append(
                XrpTransaction(
                    type=TransactionType.OFFER_CREATE,
                    account=bitstamp_wallet,
                    taker_gets=IouAmount.iou(currency, amount, issuer),
                    taker_pays=IouAmount.native(amount * rate),
                )
            )
            transactions.append(
                XrpTransaction(
                    type=TransactionType.OFFER_CREATE,
                    account=binance_wallet,
                    taker_gets=IouAmount.native(amount * rate),
                    taker_pays=IouAmount.iou(currency, amount, issuer),
                )
            )
        self.ledger.close_ledger(transactions)

    # -- helpers --------------------------------------------------------------------
    def _in_spam_wave(self, timestamp: float) -> Optional[float]:
        """Combined spam intensity if ``timestamp`` falls inside any wave.

        Overlapping waves stack additively on their *extra* traffic
        (intensity ``1 + Σ (i - 1)``), which keeps the generated volume
        consistent with the per-wave day accounting in
        :meth:`repro.scenarios.paper.PaperScenario.scale_factors` and lets
        stress scenarios pile waves on top of each other.  For the paper's
        non-overlapping waves this reduces to the wave's own intensity.
        """
        extra = 0.0
        active = False
        for start, end, intensity in self.config.spam_waves:
            if timestamp_from_iso(start) <= timestamp < timestamp_from_iso(end):
                active = True
                extra += intensity - 1.0
        if not active:
            return None
        return 1.0 + extra

    def _ensure_spam_accounts(self, timestamp: float) -> None:
        """Activate the spam swarm the first time a wave is entered."""
        if self.spam_accounts:
            return
        accounts = self.ledger.accounts
        trustlines = self.ledger.trustlines
        per_account = 1_000_000.0 / (self.config.spam_accounts_per_wave * 2 * 10)
        for _ in range(self.config.spam_accounts_per_wave):
            account = accounts.activate(
                SPAM_PARENT,
                initial_xrp=max(25.0, per_account),
                timestamp=timestamp,
            )
            trustlines.set_trust(
                account.address, self._worthless_btc.currency, self._worthless_btc.issuer, limit=1e9
            )
            trustlines.credit(account.address, self._worthless_btc.with_value(1_000.0))
            self.spam_accounts.append(account.address)

    def _random_ordinary(self) -> str:
        return self.ordinary_accounts[self.rng.zipf_index(len(self.ordinary_accounts), exponent=1.1)]

    def _random_exchange_wallet(self, bias: str = "") -> str:
        """A hot wallet of a random exchange, optionally biased towards one."""
        if bias and self.rng.bernoulli(0.25):
            username = bias
        else:
            username = self.rng.choice(EXCHANGE_USERNAMES)
        return self.rng.choice(self.exchange_hot_wallets[username])

    # -- transaction builders -----------------------------------------------------------
    def _offer_bot_transaction(self) -> XrpTransaction:
        """Unfilled CNY/XRP offers from the Huobi-linked bots (Figure 8)."""
        bot = self.rng.choice(self.offer_bots + [MAKER_ACCOUNT])
        cny = IouAmount.iou("CNY", round(self.rng.lognormal(4.0, 1.0), 2), self.exchange_accounts["Huobi Global"])
        # Ask far above the reference rate so the offer rests unfilled.
        ask_rate = 0.7 * self.rng.uniform(3.0, 10.0)
        if self.rng.bernoulli(0.995):
            return XrpTransaction(
                type=TransactionType.OFFER_CREATE,
                account=bot,
                taker_gets=cny,
                taker_pays=IouAmount.native(round(cny.value * ask_rate, 6)),
            )
        # The bots' rare payments carry the shared destination tag 104398.
        return XrpTransaction(
            type=TransactionType.PAYMENT,
            account=bot,
            destination=self.rng.choice(self.exchange_hot_wallets["Huobi Global"]),
            amount=IouAmount.native(round(self.rng.lognormal(3.0, 1.0), 2)),
            destination_tag=HUOBI_DESTINATION_TAG,
        )

    def _offer_user_transaction(self) -> XrpTransaction:
        """Ordinary accounts placing resting offers in valued IOUs."""
        owner = self._random_exchange_wallet()
        asset = self.rng.choice(self._valued_ious)
        amount = round(self.rng.lognormal(2.0, 1.0), 4)
        reference = {"BTC": 36_000.0, "USD": 5.4, "EUR": 4.9, "CNY": 0.7}[asset.currency]
        # Asks sit a little above the market so the offers rest unfilled but,
        # when a rare taker crosses them, the executed rate stays close to
        # the gateway reference rates of Figure 11a.
        rate = reference * self.rng.uniform(1.02, 1.3)
        return XrpTransaction(
            type=TransactionType.OFFER_CREATE,
            account=owner,
            taker_gets=IouAmount.iou(asset.currency, amount, asset.issuer),
            taker_pays=IouAmount.native(round(amount * rate, 6)),
        )

    def _value_payment_transaction(self) -> XrpTransaction:
        """Value-bearing payments: exchange-to-exchange XRP or valued IOUs.

        Ripple's escrow-release/return payments account for roughly a tenth of
        the XRP volume (Figure 12); the bulk flows between exchange clusters,
        with Binance the most active of them.
        """
        roll = self.rng.random()
        if roll < 0.05:
            # Ripple escrow operations: large but comparatively rare payments.
            return XrpTransaction(
                type=TransactionType.PAYMENT,
                account=RIPPLE_ACCOUNT,
                destination=self._random_exchange_wallet(),
                amount=IouAmount.native(round(self.rng.uniform(2_000.0, 6_000.0), 2)),
            )
        if roll < 0.85:
            sender = self._random_exchange_wallet(bias="Binance")
            receiver = self._random_exchange_wallet()
            return XrpTransaction(
                type=TransactionType.PAYMENT,
                account=sender,
                destination=receiver,
                amount=IouAmount.native(round(self.rng.pareto_amount(600.0), 2)),
                destination_tag=self.rng.randint(1, 999_999),
            )
        asset = self.rng.choice(self._valued_ious)
        scale = IOU_PAYMENT_SCALE.get(asset.currency, 1.0)
        amount = round(scale * self.rng.lognormal(0.0, 0.8), 6)
        return XrpTransaction(
            type=TransactionType.PAYMENT,
            account=self._random_exchange_wallet(),
            destination=self._random_exchange_wallet(),
            amount=IouAmount.iou(asset.currency, max(amount, 1e-6), asset.issuer),
        )

    def _no_value_payment_transaction(self, timestamp: float) -> XrpTransaction:
        """Payments of IOUs with no XRP exchange rate (spam swarm traffic)."""
        intensity = self._in_spam_wave(timestamp)
        if intensity is not None:
            self._ensure_spam_accounts(timestamp)
        if self.spam_accounts and (intensity is not None or self.rng.bernoulli(0.3)):
            sender = self.rng.choice(self.spam_accounts)
            receiver = self.rng.choice(self.spam_accounts)
            amount = self._worthless_btc.with_value(round(self.rng.lognormal(0.0, 1.0), 6))
            return XrpTransaction(
                type=TransactionType.PAYMENT,
                account=sender,
                destination=receiver,
                amount=amount,
            )
        # Outside waves: ordinary accounts moving an unexchanged private IOU.
        sender = self._random_ordinary()
        receiver = self._random_ordinary()
        while receiver == self._private_issuer:
            receiver = self._random_ordinary()
        if sender == self._private_issuer:
            sender = self.ordinary_accounts[1]
        amount = IouAmount.iou(
            "BTC", round(self.rng.lognormal(0.0, 1.0), 6), self._private_issuer
        )
        return XrpTransaction(
            type=TransactionType.PAYMENT, account=sender, destination=receiver, amount=amount
        )

    def _failed_payment_transaction(self) -> XrpTransaction:
        """IOU payment with no usable trust line: recorded as PATH_DRY."""
        sender = self._random_ordinary()
        receiver = self._random_ordinary()
        asset = IouAmount.iou("USD", round(self.rng.lognormal(1.0, 1.0), 2), BITSTAMP_ISSUER)
        return XrpTransaction(
            type=TransactionType.PAYMENT, account=sender, destination=receiver, amount=asset
        )

    def _failed_offer_transaction(self) -> XrpTransaction:
        """Offer selling funds the creator does not hold: tecUNFUNDED_OFFER."""
        owner = self._random_ordinary()
        asset = IouAmount.iou("BTC", round(self.rng.lognormal(0.0, 0.5), 4), GATEHUB_ISSUER)
        return XrpTransaction(
            type=TransactionType.OFFER_CREATE,
            account=owner,
            taker_gets=asset,
            taker_pays=IouAmount.native(round(asset.value * 30_000.0, 2)),
        )

    def _offer_taker_transaction(self) -> XrpTransaction:
        """An offer that crosses a resting offer, producing an execution.

        Only a sliver of the mix: the paper finds that merely 0.2 % of
        successfully created offers are ever fulfilled to any extent.
        """
        resting = self.ledger.orderbook.recent_open_offers()
        if not resting:
            return self._offer_user_transaction()
        target = self.rng.choice(resting)
        taker = self._random_exchange_wallet()
        remaining = max(target.remaining_gets, 1e-6)
        wanted = remaining * target.price
        return XrpTransaction(
            type=TransactionType.OFFER_CREATE,
            account=taker,
            taker_gets=target.taker_pays.with_value(round(wanted, 6)),
            taker_pays=target.taker_gets.with_value(round(remaining, 6)),
        )

    def _offer_cancel_transaction(self) -> XrpTransaction:
        open_offers = self.ledger.orderbook.recent_open_offers()
        if open_offers:
            offer = self.rng.choice(open_offers)
            return XrpTransaction(
                type=TransactionType.OFFER_CANCEL,
                account=offer.owner,
                offer_sequence=offer.offer_id,
            )
        return XrpTransaction(
            type=TransactionType.OFFER_CANCEL,
            account=self._random_ordinary(),
            offer_sequence=999_999_999,
        )

    def _trust_set_transaction(self) -> XrpTransaction:
        holder = self._random_ordinary()
        asset = self.rng.choice(self._valued_ious)
        return XrpTransaction(
            type=TransactionType.TRUST_SET,
            account=holder,
            limit=IouAmount.iou(asset.currency, 1_000_000.0, asset.issuer),
        )

    def _account_set_transaction(self) -> XrpTransaction:
        return XrpTransaction(
            type=TransactionType.ACCOUNT_SET, account=self._random_ordinary()
        )

    def _other_transaction(self, timestamp: float) -> XrpTransaction:
        kind = self.rng.categorical(
            {
                TransactionType.SIGNER_LIST_SET: 0.5,
                TransactionType.SET_REGULAR_KEY: 0.2,
                TransactionType.ESCROW_CREATE: 0.2,
                TransactionType.PAYMENT_CHANNEL_CREATE: 0.05,
                TransactionType.PAYMENT_CHANNEL_CLAIM: 0.05,
            }
        )
        if kind is TransactionType.ESCROW_CREATE:
            return XrpTransaction(
                type=kind,
                account=RIPPLE_ACCOUNT,
                destination=RIPPLE_ACCOUNT,
                amount=IouAmount.native(round(self.rng.uniform(1_000.0, 5_000.0), 2)),
                finish_after=timestamp + 30 * SECONDS_PER_DAY,
            )
        return XrpTransaction(type=kind, account=self._random_ordinary())

    def _myrone_trades(self, timestamp: float) -> List[XrpTransaction]:
        """The self-dealt BTC IOU payment and exchange of Figure 11b (§4.3)."""
        issue = XrpTransaction(
            type=TransactionType.PAYMENT,
            account=LIQUID_LINKED_ISSUER,
            destination=MYRONE_ACCOUNT,
            amount=IouAmount.iou("BTC", self.config.myrone_btc_amount, LIQUID_LINKED_ISSUER),
        )
        sell = XrpTransaction(
            type=TransactionType.OFFER_CREATE,
            account=MYRONE_ACCOUNT,
            taker_gets=IouAmount.iou("BTC", 1.0, LIQUID_LINKED_ISSUER),
            taker_pays=IouAmount.native(30_500.0),
        )
        buy = XrpTransaction(
            type=TransactionType.OFFER_CREATE,
            account=MYRONE_ACCOUNT,
            taker_gets=IouAmount.native(30_500.0),
            taker_pays=IouAmount.iou("BTC", 1.0, LIQUID_LINKED_ISSUER),
        )
        return [issue, sell, buy]

    _BUILDERS = {
        "offer_bot": "_offer_bot_transaction",
        "offer_user": "_offer_user_transaction",
        "offer_taker": "_offer_taker_transaction",
        "payment_value": "_value_payment_transaction",
        "payment_failed": "_failed_payment_transaction",
        "offer_failed": "_failed_offer_transaction",
        "offer_cancel": "_offer_cancel_transaction",
        "trust_set": "_trust_set_transaction",
        "account_set": "_account_set_transaction",
    }

    def _build_transaction(self, kind: str, timestamp: float) -> XrpTransaction:
        if kind == "payment_no_value":
            return self._no_value_payment_transaction(timestamp)
        if kind == "other":
            return self._other_transaction(timestamp)
        return getattr(self, self._BUILDERS[kind])()

    # -- ledger generation -----------------------------------------------------------------
    def _transactions_for_ledger(self, timestamp: float) -> List[XrpTransaction]:
        config = self.config
        per_ledger_mean = config.transactions_per_day / config.ledgers_per_day
        intensity = self._in_spam_wave(timestamp)
        if intensity is not None:
            per_ledger_mean *= intensity
        count = max(1, self.rng.poisson(per_ledger_mean))
        transactions: List[XrpTransaction] = []
        for _ in range(count):
            kind = self.rng.categorical(TYPE_MIX)
            if intensity is not None and kind in ("payment_value", "offer_user"):
                # During spam waves the extra traffic is almost entirely
                # worthless payments, which is what makes the waves visible
                # in the Figure 3c Payment series.
                kind = "payment_no_value"
            transactions.append(self._build_transaction(kind, timestamp))
        # The Myrone self-trade happens once, in mid-December (Figure 11b).
        if not self._myrone_trade_done and timestamp >= timestamp_from_iso("2019-12-14"):
            transactions.extend(self._myrone_trades(timestamp))
            self._myrone_trade_done = True
        return transactions

    def generate_blocks(self) -> Iterator[BlockRecord]:
        """Close ledgers covering the configured observation window."""
        config = self.config
        total_ledgers = int(config.total_days * config.ledgers_per_day)
        for _ in range(total_ledgers):
            timestamp = self.ledger.clock.now
            if timestamp >= config.end_timestamp:
                break
            yield self.ledger.close_ledger(self._transactions_for_ledger(timestamp))

    def generate(self) -> List[BlockRecord]:
        """Materialise the full observation window as a list of ledgers."""
        return list(self.generate_blocks())

    def stream_records(self) -> Iterator[TransactionRecord]:
        """Stream canonical records without materialising ledger lists.

        Feed straight into :meth:`repro.common.columns.TxFrame.extend`.
        """
        for block in self.generate_blocks():
            yield from block.transactions

    # -- ground truth for tests ------------------------------------------------------
    def valued_assets(self) -> List[Tuple[str, str]]:
        """(currency, issuer) pairs that have a genuine XRP exchange rate."""
        return [(asset.currency, asset.issuer) for asset in self._valued_ious]
