"""Tests for top-account tables (Figures 4, 5, 6, 8)."""

import pytest

from repro.common.records import ChainId, TransactionRecord
from repro.analysis.accounts import (
    single_transaction_account_share,
    top_receivers,
    top_sender_receiver_pairs,
    top_senders,
    traffic_concentration,
    transactions_per_account_distribution,
)


def record(sender, receiver, type_="transfer"):
    return TransactionRecord(
        chain=ChainId.EOS,
        transaction_id=f"{sender}-{receiver}-{type_}",
        block_height=1,
        timestamp=0.0,
        type=type_,
        sender=sender,
        receiver=receiver,
    )


SIMPLE = (
    [record("a", "token") for _ in range(5)]
    + [record("b", "token") for _ in range(3)]
    + [record("b", "dex", "trade") for _ in range(3)]
    + [record("c", "dex", "trade")]
)


class TestTopReceivers:
    def test_ranking_and_shares(self):
        receivers = top_receivers(SIMPLE, limit=2)
        assert receivers[0].account == "token"
        assert receivers[0].total == 8
        assert receivers[0].share_of_chain == pytest.approx(8 / 12)
        assert receivers[1].account == "dex"

    def test_type_breakdown(self):
        receivers = top_receivers(SIMPLE, limit=1)
        name, count, share = receivers[0].top_type()
        assert name == "transfer"
        assert count == 8
        assert share == 1.0

    def test_custom_key(self):
        receivers = top_receivers(SIMPLE, limit=1, key=lambda record: record.receiver.upper())
        assert receivers[0].account == "TOKEN"

    def test_empty(self):
        assert top_receivers([]) == []

    def test_generated_eos_top_receivers_match_figure4(self, eos_records):
        receivers = [activity.account for activity in top_receivers(eos_records, limit=6)]
        assert "eosio.token" in receivers[:3]
        assert "betdicetasks" in receivers
        assert "eidosonecoin" in receivers


class TestTopSenders:
    def test_ranking(self):
        senders = top_senders(SIMPLE, limit=2)
        assert senders[0].account == "b"
        assert senders[0].total == 6

    def test_generated_xrp_top_senders_are_offer_bots(self, xrp_records, xrp_generator):
        senders = top_senders(xrp_records, limit=6)
        bots = set(xrp_generator.offer_bots)
        assert sum(1 for activity in senders if activity.account in bots) >= 3
        for activity in senders:
            if activity.account in bots:
                name, _, share = activity.top_type()
                assert name == "OfferCreate"
                assert share > 0.9


class TestSenderReceiverPairs:
    def test_profiles_report_fanout_statistics(self):
        records = [record("payer", f"user{i}") for i in range(10)]
        records += [record("payer", "user0") for _ in range(10)]
        profiles = top_sender_receiver_pairs(records, limit_senders=1)
        profile = profiles[0]
        assert profile.sender == "payer"
        assert profile.sent_count == 20
        assert profile.unique_receivers == 10
        assert profile.mean_per_receiver == pytest.approx(2.0)
        assert profile.stdev_per_receiver > 0.0
        assert profile.top_receivers[0][0] == "user0"

    def test_airdrop_pattern_has_unit_mean(self):
        records = [record("airdrop", f"user{i}") for i in range(50)]
        profile = top_sender_receiver_pairs(records, limit_senders=1)[0]
        assert profile.mean_per_receiver == pytest.approx(1.0)
        assert profile.stdev_per_receiver == pytest.approx(0.0)

    def test_generated_eos_top_pairs_match_figure5(self, eos_records, scenario):
        # The organic (pre-EIDOS) traffic is where the Figure 5 senders
        # dominate; after the launch the claimer accounts swamp the ranking.
        launch = scenario.eos.eidos_launch_timestamp
        organic = [record for record in eos_records if record.timestamp < launch]
        profiles = top_sender_receiver_pairs(organic, limit_senders=5)
        betdice = next((p for p in profiles if p.sender == "betdicegroup"), None)
        assert betdice is not None
        assert betdice.top_receivers[0][0] == "betdicetasks"


class TestConcentration:
    def test_traffic_concentration(self):
        records = [record("whale", "x") for _ in range(90)]
        records += [record(f"small{i}", "x") for i in range(10)]
        assert traffic_concentration(records, top_n=1) == pytest.approx(0.9)

    def test_single_transaction_share(self):
        records = [record("once", "x"), record("twice", "x"), record("twice", "y")]
        assert single_transaction_account_share(records) == pytest.approx(0.5)

    def test_distribution(self):
        records = [record("a", "x"), record("a", "y"), record("b", "x")]
        assert transactions_per_account_distribution(records) == {"a": 2, "b": 1}

    def test_empty_inputs(self):
        assert traffic_concentration([]) == 0.0
        assert single_transaction_account_share([]) == 0.0

    def test_generated_xrp_traffic_is_concentrated(self, xrp_records):
        # The paper: the 18 most active accounts produce half the traffic.
        assert traffic_concentration(xrp_records, top_n=18) > 0.4
