"""Tests for the EIDOS airdrop / boomerang analysis (§4.1)."""

import pytest

from repro.common.clock import timestamp_from_iso
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.airdrop import (
    analyze_airdrop,
    analyze_congestion,
    detect_boomerang_claims,
)
from repro.eos.resources import CongestionSample


def transfer(tx_id, sender, receiver_contract, amount, timestamp, currency="EOS", inline=False, transfer_to=None):
    metadata = {}
    if inline:
        metadata["inline"] = True
    if transfer_to is not None:
        metadata["transfer_to"] = transfer_to
    return TransactionRecord(
        chain=ChainId.EOS,
        transaction_id=tx_id,
        block_height=1,
        timestamp=timestamp,
        type="transfer",
        sender=sender,
        receiver=receiver_contract,
        contract=receiver_contract,
        amount=amount,
        currency=currency,
        metadata=metadata,
    )


def boomerang_claim(tx_id, claimer, timestamp):
    """The four transfer records one EIDOS claim produces."""
    return [
        transfer(tx_id, claimer, "eosio.token", 0.0001, timestamp, transfer_to="eidosonecoin"),
        transfer(tx_id, claimer, "eidosonecoin", 0.0001, timestamp, transfer_to="eidosonecoin"),
        transfer(tx_id, "eidosonecoin", "eosio.token", 0.0001, timestamp, inline=True, transfer_to=claimer),
        transfer(tx_id, "eidosonecoin", "eidosonecoin", 50.0, timestamp, currency="EIDOS", inline=True, transfer_to=claimer),
    ]


LAUNCH = timestamp_from_iso("2019-11-01")


class TestDetection:
    def test_detects_synthetic_boomerang(self):
        records = boomerang_claim("claim1", "alice", LAUNCH + 10.0)
        claims = detect_boomerang_claims(records)
        assert len(claims) == 1
        claim = claims[0]
        assert claim.claimer == "alice"
        assert claim.eos_amount == pytest.approx(0.0001)
        assert claim.eidos_granted == pytest.approx(50.0)

    def test_ordinary_transfer_not_a_claim(self):
        records = [transfer("tx1", "alice", "eosio.token", 5.0, LAUNCH, transfer_to="bob")]
        assert detect_boomerang_claims(records) == []

    def test_refund_amount_must_match(self):
        records = [
            transfer("tx1", "alice", "eosio.token", 1.0, LAUNCH, transfer_to="eidosonecoin"),
            transfer("tx1", "eidosonecoin", "eosio.token", 0.5, LAUNCH, inline=True, transfer_to="alice"),
        ]
        assert detect_boomerang_claims(records) == []

    def test_detects_claims_in_generated_traffic(self, eos_records, eos_generator):
        claims = detect_boomerang_claims(eos_records)
        assert claims
        # Every detected claim corresponds to a contract-recorded claim.
        assert len(claims) <= eos_generator.eidos_contract().claims


class TestAirdropReport:
    def test_synthetic_report(self):
        pre = [transfer(f"pre{i}", "alice", "eosio.token", 1.0, LAUNCH - 1_000.0 - i, transfer_to="bob") for i in range(5)]
        post = []
        for index in range(20):
            post.extend(boomerang_claim(f"claim{index}", "alice", LAUNCH + index))
        report = analyze_airdrop(pre + post)
        assert report.claim_count == 20
        assert report.boomerang_action_share_post_launch == 1.0
        assert report.dominates_post_launch_traffic
        assert report.unique_claimers == 1

    def test_generated_traffic_report(self, eos_records, scenario):
        report = analyze_airdrop(eos_records, launch_date=scenario.eos.eidos_launch_date)
        assert report.claim_count > 0
        assert report.boomerang_action_share_post_launch > 0.6
        assert report.traffic_multiplier > 3.0
        assert report.unique_claimers > 1
        assert report.dominates_post_launch_traffic

    def test_empty_stream(self):
        report = analyze_airdrop([])
        assert report.claim_count == 0
        assert report.total_actions == 0


class TestCongestion:
    def test_congestion_report_from_history(self):
        history = [
            CongestionSample(timestamp=LAUNCH - 10, utilization=0.05, congested=False, cpu_price=0.0001),
            CongestionSample(timestamp=LAUNCH + 10, utilization=0.95, congested=True, cpu_price=0.5),
            CongestionSample(timestamp=LAUNCH + 20, utilization=0.99, congested=True, cpu_price=1.0),
        ]
        report = analyze_congestion(history, LAUNCH)
        assert report.congested_share == pytest.approx(1.0)
        assert report.cpu_price_increase == pytest.approx(1.0 / 0.0001)

    def test_empty_history(self):
        report = analyze_congestion([], LAUNCH)
        assert report.samples == 0
        assert report.congested_share == 0.0

    def test_generated_market_enters_congestion(self, eos_generator, scenario):
        history = eos_generator.chain.resources.history()
        report = analyze_congestion(history, scenario.eos.eidos_launch_timestamp)
        assert report.congested_samples > 0
        # The paper reports the CPU price spiking by orders of magnitude.
        assert report.cpu_price_increase > 100.0
