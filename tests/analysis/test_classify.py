"""Tests for transaction classification (Figure 1 and EOS categories)."""

import pytest

from repro.common.records import ChainId, TransactionRecord
from repro.analysis.classify import (
    action_breakdown_by_contract,
    category_distribution,
    classify_eos_category,
    distribution_as_mapping,
    figure1_group,
    tezos_category_distribution,
    type_distribution,
)
from repro.eos.workload import CATEGORY_BETTING, CATEGORY_OTHERS, CATEGORY_TOKENS


def eos_record(type_="transfer", contract="eosio.token", receiver=None):
    return TransactionRecord(
        chain=ChainId.EOS,
        transaction_id="tx",
        block_height=1,
        timestamp=0.0,
        type=type_,
        sender="alice",
        receiver=receiver or contract,
        contract=contract,
    )


class TestFigure1Groups:
    def test_eos_transfer_is_p2p(self):
        assert figure1_group(eos_record("transfer", "eosio.token")) == "P2P transaction"

    def test_eos_user_defined_goes_to_others(self):
        assert figure1_group(eos_record("verifytrade2", "whaleextrust")) == "Others"

    def test_eos_system_account_action(self):
        assert figure1_group(eos_record("newaccount", "eosio")) == "Account actions"

    def test_tezos_groups(self):
        endorsement = TransactionRecord(
            chain=ChainId.TEZOS, transaction_id="op", block_height=1, timestamp=0.0,
            type="Endorsement", sender="tz1baker", receiver="",
        )
        transaction = TransactionRecord(
            chain=ChainId.TEZOS, transaction_id="op", block_height=1, timestamp=0.0,
            type="Transaction", sender="tz1a", receiver="tz1b",
        )
        assert figure1_group(endorsement) == "Other actions"
        assert figure1_group(transaction) == "P2P transaction"

    def test_xrp_groups(self):
        offer = TransactionRecord(
            chain=ChainId.XRP, transaction_id="t", block_height=1, timestamp=0.0,
            type="OfferCreate", sender="rA", receiver="",
        )
        payment = TransactionRecord(
            chain=ChainId.XRP, transaction_id="t", block_height=1, timestamp=0.0,
            type="Payment", sender="rA", receiver="rB",
        )
        trust = TransactionRecord(
            chain=ChainId.XRP, transaction_id="t", block_height=1, timestamp=0.0,
            type="TrustSet", sender="rA", receiver="",
        )
        assert figure1_group(offer) == "Other actions"
        assert figure1_group(payment) == "P2P transaction"
        assert figure1_group(trust) == "Account actions"


class TestTypeDistribution:
    def test_counts_and_shares(self):
        records = [eos_record("transfer")] * 3 + [eos_record("doit", "somedapp")] * 1
        rows = type_distribution(records)
        shares = distribution_as_mapping(rows, ChainId.EOS)
        assert shares["transfer"] == pytest.approx(0.75)
        assert shares["Others"] == pytest.approx(0.25)

    def test_user_defined_actions_collapsed_into_others(self):
        records = [eos_record("actionone", "dappone"), eos_record("actiontwo", "dapptwo")]
        rows = [row for row in type_distribution(records) if row.chain is ChainId.EOS]
        assert len(rows) == 1
        assert rows[0].type_name == "Others"
        assert rows[0].count == 2

    def test_multiple_chains_are_independent(self):
        records = [
            eos_record("transfer"),
            TransactionRecord(
                chain=ChainId.XRP, transaction_id="t", block_height=1, timestamp=0.0,
                type="Payment", sender="rA", receiver="rB",
            ),
        ]
        rows = type_distribution(records)
        eos_share = distribution_as_mapping(rows, ChainId.EOS)
        xrp_share = distribution_as_mapping(rows, ChainId.XRP)
        assert eos_share["transfer"] == 1.0
        assert xrp_share["Payment"] == 1.0

    def test_empty_input(self):
        assert type_distribution([]) == []

    def test_paper_shape_on_generated_eos_traffic(self, eos_records, scenario):
        # Over the full post-launch window the paper reports 91.6% transfers.
        # In the two-week test window (half pre-launch) the share is lower but
        # transfers must still dominate every other named type.
        shares = distribution_as_mapping(type_distribution(eos_records), ChainId.EOS)
        assert shares["transfer"] > 0.6
        assert shares["transfer"] == max(shares.values())

    def test_paper_shape_on_generated_tezos_traffic(self, tezos_records):
        shares = distribution_as_mapping(type_distribution(tezos_records), ChainId.TEZOS)
        assert 0.70 <= shares["Endorsement"] <= 0.92
        assert shares["Transaction"] > 0.05

    def test_paper_shape_on_generated_xrp_traffic(self, xrp_records):
        shares = distribution_as_mapping(type_distribution(xrp_records), ChainId.XRP)
        assert shares["Payment"] + shares["OfferCreate"] > 0.85
        assert shares.get("TrustSet", 0.0) < 0.1


class TestEosCategories:
    def test_known_contracts_mapped(self):
        assert classify_eos_category(eos_record("transfer", "eosio.token")) == CATEGORY_TOKENS
        assert classify_eos_category(eos_record("log", "betdicetasks")) == CATEGORY_BETTING

    def test_unknown_contract_is_others(self):
        assert classify_eos_category(eos_record("doit", "randomdapp")) == CATEGORY_OTHERS

    def test_custom_label_table(self):
        labels = {"mydapp": "Games"}
        assert classify_eos_category(eos_record("doit", "mydapp"), labels) == "Games"

    def test_non_eos_record_rejected(self):
        record = TransactionRecord(
            chain=ChainId.XRP, transaction_id="t", block_height=1, timestamp=0.0,
            type="Payment", sender="rA", receiver="rB",
        )
        with pytest.raises(ValueError):
            classify_eos_category(record)

    def test_category_distribution_sums_to_one(self, eos_records):
        distribution = category_distribution(eos_records)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution[CATEGORY_TOKENS] == max(distribution.values())

    def test_action_breakdown_for_token_contract(self, eos_records):
        breakdown = action_breakdown_by_contract(eos_records, "eosio.token")
        assert breakdown
        name, count, share = breakdown[0]
        assert name == "transfer"
        assert share > 0.99

    def test_action_breakdown_for_betting_contract(self, eos_records):
        breakdown = dict(
            (name, share) for name, _, share in action_breakdown_by_contract(eos_records, "betdicetasks")
        )
        assert breakdown["removetask"] > breakdown.get("betrecord", 0.0)

    def test_action_breakdown_unknown_contract(self):
        assert action_breakdown_by_contract([], "ghost") == []


class TestTezosCategories:
    def test_consensus_dominates(self, tezos_records):
        distribution = tezos_category_distribution(tezos_records)
        assert distribution["consensus"] > 0.7
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_empty(self):
        assert tezos_category_distribution([]) == {}
