"""Tests for XRP account clustering and common-control evidence."""

import pytest

from repro.common.records import ChainId, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.analysis.clustering import (
    AccountClusterer,
    cluster_transaction_counts,
    common_control_evidence,
    shared_destination_tags,
)
from repro.xrp.accounts import XrpAccountRegistry


@pytest.fixture
def registry():
    reg = XrpAccountRegistry(rng=DeterministicRng(21))
    huobi = reg.create_genesis(balance=10_000.0, username="Huobi Global")
    binance = reg.create_genesis(balance=10_000.0, username="Binance")
    reg.activate(huobi.address, initial_xrp=100.0, address="rHuobiBot1")
    reg.activate(huobi.address, initial_xrp=100.0, address="rHuobiBot2")
    reg.activate(binance.address, initial_xrp=100.0, address="rBinanceHot")
    reg.create_genesis(address="rLoner", balance=50.0)
    return reg


def xrp_record(sender, receiver="rSomeone", type_="OfferCreate", tag=None, currency=""):
    metadata = {} if tag is None else {"destination_tag": tag}
    return TransactionRecord(
        chain=ChainId.XRP,
        transaction_id=f"{sender}-{type_}-{tag}",
        block_height=1,
        timestamp=0.0,
        type=type_,
        sender=sender,
        receiver=receiver,
        currency=currency,
        metadata=metadata,
    )


class TestClusterer:
    def test_cluster_by_username_and_parent(self, registry):
        clusterer = AccountClusterer(registry)
        assert clusterer.cluster_of("rHuobiBot1") == "Huobi Global -- descendant"
        assert clusterer.cluster_of("rBinanceHot") == "Binance -- descendant"
        assert clusterer.cluster_of("rLoner") == "rLoner"

    def test_clusters_grouping(self, registry):
        clusterer = AccountClusterer(registry)
        clusters = clusterer.clusters(["rHuobiBot1", "rHuobiBot2", "rBinanceHot", "rLoner"])
        names = {cluster.name: cluster.size for cluster in clusters}
        assert names["Huobi Global -- descendant"] == 2
        assert names["Binance -- descendant"] == 1
        assert clusters[0].name == "Huobi Global -- descendant"

    def test_is_descendant_of(self, registry):
        clusterer = AccountClusterer(registry)
        assert clusterer.is_descendant_of("rHuobiBot1", "Huobi Global")
        assert not clusterer.is_descendant_of("rBinanceHot", "Huobi Global")

    def test_cache_returns_same_result(self, registry):
        clusterer = AccountClusterer(registry)
        assert clusterer.cluster_of("rHuobiBot1") == clusterer.cluster_of("rHuobiBot1")


class TestHelpers:
    def test_cluster_transaction_counts(self, registry):
        clusterer = AccountClusterer(registry)
        records = [xrp_record("rHuobiBot1"), xrp_record("rHuobiBot2"), xrp_record("rLoner")]
        counts = cluster_transaction_counts(records, clusterer, side="sender")
        assert counts["Huobi Global -- descendant"] == 2
        assert counts["rLoner"] == 1

    def test_cluster_counts_invalid_side(self, registry):
        with pytest.raises(ValueError):
            cluster_transaction_counts([], AccountClusterer(registry), side="middle")

    def test_shared_destination_tags(self):
        records = [
            xrp_record("rA", type_="Payment", tag=104_398),
            xrp_record("rB", type_="Payment", tag=104_398),
            xrp_record("rC", type_="Payment", tag=7),
        ]
        shared = shared_destination_tags(records)
        assert shared == {104_398: ["rA", "rB"]}

    def test_common_control_evidence(self, registry):
        clusterer = AccountClusterer(registry)
        records = (
            [xrp_record("rHuobiBot1", type_="OfferCreate", currency="CNY") for _ in range(99)]
            + [xrp_record("rHuobiBot1", type_="Payment", tag=104_398)]
            + [xrp_record("rLoner", type_="Payment")]
        )
        evidence = common_control_evidence(
            records, clusterer, ["rHuobiBot1", "rLoner"], parent_username="Huobi Global"
        )
        bot = evidence["rHuobiBot1"]
        assert bot["descends_from_parent"] is True
        assert bot["offer_create_share"] == pytest.approx(0.99)
        assert 104_398 in bot["destination_tags"]
        assert "CNY" in bot["currencies"]
        assert evidence["rLoner"]["descends_from_parent"] is False

    def test_figure8_evidence_on_generated_traffic(self, xrp_records, xrp_generator):
        clusterer = AccountClusterer(xrp_generator.ledger.accounts)
        evidence = common_control_evidence(
            xrp_records, clusterer, xrp_generator.offer_bots, parent_username="Huobi Global"
        )
        assert all(item["descends_from_parent"] for item in evidence.values())
        assert all(item["offer_create_share"] > 0.9 for item in evidence.values())
