"""Tests for the single-pass analysis engine and its orchestration."""

import pytest

from repro.common.columns import TxFrame
from repro.common.errors import AnalysisError
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.classify import (
    CategoryDistributionAccumulator,
    TypeDistributionAccumulator,
)
from repro.analysis.engine import (
    Accumulator,
    AnalysisEngine,
    TxStatsAccumulator,
    run_single_pass,
)
from repro.analysis.report import compute_chain_figures, full_report
from repro.analysis.value import ExchangeRateOracle


def _record(chain=ChainId.EOS, tx="tx1", ts=100.0, **overrides):
    values = dict(
        chain=chain,
        transaction_id=tx,
        block_height=1,
        timestamp=ts,
        type="transfer",
        sender="alice",
        receiver="bob",
        contract="eosio.token",
    )
    values.update(overrides)
    return TransactionRecord(**values)


class CountingAccumulator(Accumulator):
    """Counts rows and how many times bind() ran (pass-count witness)."""

    def __init__(self, name):
        self.name = name
        self.bind_calls = 0

    def bind(self, frame):
        self.bind_calls += 1
        self._rows = []
        return self._rows.append

    def finalize(self):
        return list(self._rows)


class TestAnalysisEngine:
    def test_requires_accumulators(self):
        with pytest.raises(AnalysisError):
            AnalysisEngine([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(AnalysisError):
            AnalysisEngine([TxStatsAccumulator(), TxStatsAccumulator()])

    def test_single_iteration_feeds_every_accumulator(self):
        frame = TxFrame.from_records(
            [_record(tx=f"tx{i}", ts=float(i)) for i in range(5)]
        )
        first = CountingAccumulator("first")
        second = CountingAccumulator("second")
        third = CountingAccumulator("third")
        result = AnalysisEngine([first, second, third]).run(frame)
        assert result.rows_processed == 5
        assert result["first"] == result["second"] == result["third"] == list(range(5))
        assert (first.bind_calls, second.bind_calls, third.bind_calls) == (1, 1, 1)

    def test_runs_on_views(self):
        records = [_record(tx=f"e{i}", ts=float(i)) for i in range(4)] + [
            _record(chain=ChainId.XRP, tx=f"x{i}", ts=float(i), type="Payment")
            for i in range(3)
        ]
        frame = TxFrame.from_records(records)
        result = run_single_pass(frame.chain_view(ChainId.XRP), [TxStatsAccumulator()])
        assert result["tx_stats"].action_count == 3

    def test_combined_result_matches_individual_runs(self):
        records = [
            _record(tx=f"tx{i}", ts=float(i), contract="betdicetasks" if i % 2 else "eosio.token")
            for i in range(20)
        ]
        frame = TxFrame.from_records(records)
        combined = AnalysisEngine(
            [TypeDistributionAccumulator(), CategoryDistributionAccumulator(), TxStatsAccumulator()]
        ).run(frame)
        assert combined["type_distribution"] == TypeDistributionAccumulator().run(frame)
        assert combined["category_distribution"] == CategoryDistributionAccumulator().run(frame)
        assert combined["tx_stats"] == TxStatsAccumulator().run(frame)

    def test_tx_stats_distinguishes_transactions_from_actions(self):
        frame = TxFrame.from_records(
            [
                _record(tx="shared", ts=0.0),
                _record(tx="shared", ts=5.0),
                _record(tx="solo", ts=10.0),
            ]
        )
        stats = TxStatsAccumulator().run(frame)
        assert stats.action_count == 3
        assert stats.transaction_count == 2
        assert stats.duration_seconds == 10.0
        assert stats.tps() == pytest.approx(0.2)
        assert stats.tps(count_actions=True) == pytest.approx(0.3)


class TestChainFigures:
    @pytest.fixture(scope="class")
    def small_frames(self, eos_records, tezos_records, xrp_records):
        return (
            TxFrame.from_records(eos_records),
            TxFrame.from_records(tezos_records),
            TxFrame.from_records(xrp_records),
        )

    def test_eos_figures_in_one_pass(self, small_frames, eos_records):
        figures = compute_chain_figures(small_frames[0], ChainId.EOS)
        assert figures.stats.action_count == len(eos_records)
        assert figures.tps > 0
        assert figures.throughput.bin_count > 0
        assert figures.categories["Tokens"] == max(figures.categories.values())
        assert figures.wash_trading is not None
        assert figures.top_receivers and figures.top_senders

    def test_xrp_figures_include_decomposition(self, small_frames, xrp_generator):
        oracle = ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)
        figures = compute_chain_figures(small_frames[2], ChainId.XRP, oracle=oracle)
        assert figures.decomposition is not None
        assert 0.0 < figures.decomposition.economic_value_share < 0.2
        summary = figures.to_summary()
        assert summary.value_share == pytest.approx(
            figures.decomposition.economic_value_share
        )

    def test_full_report_on_chain_view_excludes_other_chains(
        self, eos_records, tezos_records
    ):
        mixed = TxFrame()
        mixed.extend(eos_records)
        mixed.extend(tezos_records)
        report = full_report(mixed.chain_view(ChainId.EOS))
        assert set(report.chains) == {ChainId.EOS}

    def test_time_window_view_anchors_throughput_to_the_window(self, small_frames):
        frame = small_frames[0]
        bounds = frame.chain_bounds(ChainId.EOS)
        mid = (bounds[0] + bounds[1]) / 2
        window = frame.time_window(mid, bounds[1] + 1.0)
        figures = compute_chain_figures(window, ChainId.EOS)
        # The series starts at the window's first row, not the frame's, so
        # there are no leading phantom bins diluting per-bin averages.
        assert figures.throughput.start >= mid
        assert figures.throughput.bins[0]
        assert figures.stats.action_count == len(window)

    def test_full_report_summary_matches_builder(
        self, small_frames, eos_records, tezos_records, xrp_records, xrp_generator
    ):
        from repro.analysis.report import build_summary_report

        oracle = ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)
        eos_frame, tezos_frame, xrp_frame = small_frames
        mixed = TxFrame()
        for records in (eos_records, tezos_records, xrp_records):
            mixed.extend(records)
        report = full_report(mixed, oracle=oracle)
        assert set(report.chains) == {ChainId.EOS, ChainId.TEZOS, ChainId.XRP}
        expected = build_summary_report(
            eos_records=eos_frame,
            tezos_records=tezos_frame,
            xrp_records=xrp_frame,
            xrp_oracle=oracle,
        )
        assert report.summary().to_rows() == expected.to_rows()
