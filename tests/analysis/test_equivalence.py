"""Equivalence: every accumulator matches its record-based seed predecessor.

The public analysis functions are now thin wrappers over the single-pass
engine; :mod:`repro.analysis.legacy` keeps the seed's dedicated-pass
implementations.  These tests drive both over the same generated small
scenario (plus synthetic edge cases) and require identical results, which is
what licenses the wrappers to keep their seed signatures and return values.
"""

import pytest

from repro.analysis import legacy
from repro.analysis.accounts import (
    single_transaction_account_share,
    top_receivers,
    top_sender_receiver_pairs,
    top_senders,
    traffic_concentration,
    transactions_per_account_distribution,
)
from repro.analysis.airdrop import analyze_airdrop
from repro.analysis.classify import (
    category_distribution,
    classify_eos_category,
    tezos_category_distribution,
    type_distribution,
)
from repro.analysis.clustering import AccountClusterer
from repro.analysis.flows import aggregate_value_flows
from repro.analysis.throughput import DEFAULT_BIN_SECONDS, bin_throughput
from repro.analysis.value import ExchangeRateOracle, XrpValueAnalyzer
from repro.analysis.washtrading import analyze_wash_trading


@pytest.fixture(scope="module")
def all_records(eos_records, tezos_records, xrp_records):
    return eos_records + tezos_records + xrp_records


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


class TestClassifyEquivalence:
    def test_type_distribution_mixed_chains(self, all_records):
        assert type_distribution(all_records) == legacy.type_distribution(all_records)

    def test_category_distribution(self, eos_records):
        assert category_distribution(eos_records) == legacy.category_distribution(
            eos_records
        )

    def test_category_distribution_custom_labels(self, eos_records):
        table = {"eosio.token": "X", "betdicetasks": "Y"}
        assert category_distribution(eos_records, table) == legacy.category_distribution(
            eos_records, table
        )

    def test_tezos_category_distribution(self, tezos_records):
        assert tezos_category_distribution(
            tezos_records
        ) == legacy.tezos_category_distribution(tezos_records)


class TestThroughputEquivalence:
    def test_bin_throughput_eos_categories(self, eos_records):
        new = bin_throughput(eos_records, classify_eos_category, DEFAULT_BIN_SECONDS)
        old = legacy.bin_throughput(eos_records, classify_eos_category, DEFAULT_BIN_SECONDS)
        assert new == old

    def test_bin_throughput_with_explicit_window(self, xrp_records):
        categorizer = lambda record: record.type
        start = min(record.timestamp for record in xrp_records) + 3 * DEFAULT_BIN_SECONDS
        end = start + 20 * DEFAULT_BIN_SECONDS
        new = bin_throughput(xrp_records, categorizer, DEFAULT_BIN_SECONDS, start, end)
        old = legacy.bin_throughput(xrp_records, categorizer, DEFAULT_BIN_SECONDS, start, end)
        assert new == old


class TestAccountsEquivalence:
    def test_top_receivers(self, eos_records):
        assert top_receivers(eos_records, limit=10) == legacy.top_receivers(
            eos_records, limit=10
        )

    def test_top_senders(self, xrp_records):
        assert top_senders(xrp_records, limit=10) == legacy.top_senders(
            xrp_records, limit=10
        )

    def test_top_senders_tezos(self, tezos_records):
        assert top_senders(tezos_records, limit=8) == legacy.top_senders(
            tezos_records, limit=8
        )

    def test_top_sender_receiver_pairs(self, eos_records):
        assert top_sender_receiver_pairs(eos_records) == legacy.top_sender_receiver_pairs(
            eos_records
        )

    def test_concentration_and_singles(self, xrp_records):
        assert traffic_concentration(xrp_records) == pytest.approx(
            legacy.traffic_concentration(xrp_records)
        )
        assert single_transaction_account_share(xrp_records) == pytest.approx(
            legacy.single_transaction_account_share(xrp_records)
        )
        assert transactions_per_account_distribution(
            xrp_records
        ) == legacy.transactions_per_account_distribution(xrp_records)


class TestValueEquivalence:
    def test_decomposition(self, xrp_records, xrp_oracle):
        analyzer = XrpValueAnalyzer(xrp_oracle)
        assert analyzer.decompose(xrp_records) == legacy.decompose(
            xrp_records, xrp_oracle
        )

    def test_value_flows(self, xrp_records, xrp_generator, xrp_oracle):
        clusterer = AccountClusterer(xrp_generator.ledger.accounts)
        new = aggregate_value_flows(xrp_records, clusterer, xrp_oracle)
        old = legacy.aggregate_value_flows(xrp_records, clusterer, xrp_oracle)
        assert new.flows == old.flows
        assert new.total_xrp_value == pytest.approx(old.total_xrp_value)
        assert new.by_sender == old.by_sender
        assert new.by_receiver == old.by_receiver
        assert new.by_currency == old.by_currency
        assert new.currency_face_value == old.currency_face_value

    def test_value_flows_include_valueless(self, xrp_records, xrp_generator, xrp_oracle):
        clusterer = AccountClusterer(xrp_generator.ledger.accounts)
        new = aggregate_value_flows(xrp_records, clusterer, xrp_oracle, include_valueless=True)
        old = legacy.aggregate_value_flows(xrp_records, clusterer, xrp_oracle, include_valueless=True)
        assert new.by_currency == old.by_currency
        assert sorted(
            (flow.sender_cluster, flow.receiver_cluster, flow.currency, flow.payment_count)
            for flow in new.flows
        ) == sorted(
            (flow.sender_cluster, flow.receiver_cluster, flow.currency, flow.payment_count)
            for flow in old.flows
        )


class TestCaseStudyEquivalence:
    def test_wash_trading(self, eos_records):
        assert analyze_wash_trading(eos_records) == legacy.analyze_wash_trading(
            eos_records
        )

    def test_airdrop(self, eos_records):
        assert analyze_airdrop(eos_records) == legacy.analyze_airdrop(eos_records)

    def test_airdrop_empty(self):
        assert analyze_airdrop([]) == legacy.analyze_airdrop([])

    def test_wash_trading_unknown_contract(self, eos_records):
        assert analyze_wash_trading(
            eos_records, contract="nonexistent11"
        ) == legacy.analyze_wash_trading(eos_records, contract="nonexistent11")
