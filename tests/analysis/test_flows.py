"""Tests for the Figure 12 value-flow aggregation."""

import pytest

from repro.common.records import ChainId, TransactionRecord
from repro.common.rng import DeterministicRng
from repro.analysis.clustering import AccountClusterer
from repro.analysis.flows import aggregate_value_flows
from repro.analysis.value import ExchangeRateOracle
from repro.xrp.accounts import XrpAccountRegistry
from repro.xrp.workload import RIPPLE_ACCOUNT


def payment(sender, receiver, amount, currency="XRP", issuer="", success=True):
    return TransactionRecord(
        chain=ChainId.XRP,
        transaction_id=f"{sender}-{receiver}-{currency}-{amount}",
        block_height=1,
        timestamp=0.0,
        type="Payment",
        sender=sender,
        receiver=receiver,
        amount=amount,
        currency=currency,
        issuer=issuer,
        success=success,
    )


@pytest.fixture
def clusterer():
    registry = XrpAccountRegistry(rng=DeterministicRng(31))
    binance = registry.create_genesis(balance=1_000.0, username="Binance", address="rBinance")
    registry.activate(binance.address, initial_xrp=100.0, address="rBinanceHot")
    registry.create_genesis(balance=1_000.0, username="Ripple", address="rRipple")
    registry.create_genesis(balance=10.0, address="rNobody")
    return AccountClusterer(registry)


class TestAggregation:
    def test_flows_grouped_by_cluster_and_currency(self, clusterer):
        oracle = ExchangeRateOracle({("USD", "rGateway"): 5.0})
        records = [
            payment("rRipple", "rBinanceHot", 100.0),
            payment("rRipple", "rBinanceHot", 50.0),
            payment("rBinanceHot", "rNobody", 10.0, currency="USD", issuer="rGateway"),
        ]
        report = aggregate_value_flows(records, clusterer, oracle)
        assert report.total_xrp_value == pytest.approx(200.0)
        assert report.by_sender["Ripple"] == pytest.approx(150.0)
        assert report.by_sender["Binance -- descendant"] == pytest.approx(50.0)
        assert report.by_currency["USD"] == pytest.approx(50.0)
        assert report.currency_face_value["USD"] == pytest.approx(10.0)
        top_flow = report.flows[0]
        assert top_flow.sender_cluster == "Ripple"
        assert top_flow.receiver_cluster == "Binance -- descendant"
        assert top_flow.payment_count == 2

    def test_valueless_tokens_excluded_by_default(self, clusterer):
        oracle = ExchangeRateOracle()
        records = [payment("rRipple", "rNobody", 1_000_000.0, currency="BTC", issuer="rJunk")]
        report = aggregate_value_flows(records, clusterer, oracle)
        assert report.total_xrp_value == 0.0
        assert report.flows == []

    def test_valueless_tokens_counted_when_requested(self, clusterer):
        oracle = ExchangeRateOracle()
        records = [payment("rRipple", "rNobody", 5.0, currency="BTC", issuer="rJunk")]
        report = aggregate_value_flows(records, clusterer, oracle, include_valueless=True)
        assert report.total_xrp_value == 0.0
        assert report.flows[0].payment_count == 1
        assert report.currency_face_value["BTC"] == pytest.approx(5.0)

    def test_failed_and_non_payment_records_ignored(self, clusterer):
        oracle = ExchangeRateOracle()
        offer = TransactionRecord(
            chain=ChainId.XRP, transaction_id="o", block_height=1, timestamp=0.0,
            type="OfferCreate", sender="rRipple", receiver="", amount=10.0, currency="XRP",
        )
        records = [offer, payment("rRipple", "rNobody", 10.0, success=False)]
        report = aggregate_value_flows(records, clusterer, oracle)
        assert report.total_xrp_value == 0.0

    def test_concentration_and_tops(self, clusterer):
        oracle = ExchangeRateOracle()
        records = [payment("rRipple", "rBinanceHot", 90.0), payment("rNobody", "rRipple", 10.0)]
        report = aggregate_value_flows(records, clusterer, oracle)
        assert report.top_senders(1)[0][0] == "Ripple"
        assert report.top_receivers(1)[0][0] == "Binance -- descendant"
        assert report.sender_share("Ripple") == pytest.approx(0.9)
        assert report.top_sender_concentration(1) == pytest.approx(0.9)


class TestGeneratedFlows:
    def test_figure12_shape(self, xrp_records, xrp_generator):
        clusterer = AccountClusterer(xrp_generator.ledger.accounts)
        oracle = ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)
        report = aggregate_value_flows(xrp_records, clusterer, oracle)
        assert report.total_xrp_value > 0.0
        # XRP is by far the most used currency by value.
        currencies = dict(report.top_currencies(10))
        assert max(currencies, key=currencies.get) == "XRP"
        # Ripple is among the top senders (escrow-release payments).
        top_senders = [name for name, _ in report.top_senders(5)]
        assert "Ripple" in top_senders
        # The top clusters cover a large share of the value moved (§3.3 / Fig 12).
        assert report.top_sender_concentration(10) > 0.4
