"""Tests for the Tezos governance analysis (§4.2, Figure 9)."""

import pytest

from repro.analysis.governance import (
    analyze_governance,
    figure9_series,
    summarize_period,
)
from repro.tezos.governance import VoteEvent, VotingPeriodKind


def vote(period, timestamp=0.0, rolls=1, proposal="", ballot=""):
    return VoteEvent(
        timestamp=timestamp,
        period=period,
        baker="baker",
        rolls=rolls,
        proposal=proposal,
        ballot=ballot,
    )


class TestPeriodSummary:
    def test_tally_and_rates(self):
        events = [
            vote(VotingPeriodKind.EXPLORATION, ballot="yay", rolls=8),
            vote(VotingPeriodKind.EXPLORATION, ballot="yay", rolls=2),
            vote(VotingPeriodKind.EXPLORATION, ballot="pass", rolls=1),
        ]
        summary = summarize_period(events, VotingPeriodKind.EXPLORATION, electorate_rolls=10)
        assert summary.yay == 10
        assert summary.passes == 1
        assert summary.approval_rate == 1.0
        assert summary.nay_share == 0.0
        assert 0.0 < summary.participation <= 1.0

    def test_other_period_events_ignored(self):
        events = [vote(VotingPeriodKind.PROMOTION, ballot="nay", rolls=3)]
        summary = summarize_period(events, VotingPeriodKind.EXPLORATION, 10)
        assert summary.total == 0


class TestGovernanceReport:
    def _events(self):
        events = [
            vote(VotingPeriodKind.PROPOSAL, timestamp=1.0, proposal="Babylon", rolls=10),
            vote(VotingPeriodKind.PROPOSAL, timestamp=2.0, proposal="Babylon 2.0", rolls=20),
        ]
        events += [vote(VotingPeriodKind.EXPLORATION, timestamp=3.0, ballot="yay", rolls=1) for _ in range(40)]
        events += [vote(VotingPeriodKind.EXPLORATION, timestamp=3.5, ballot="pass", rolls=1)]
        events += [vote(VotingPeriodKind.PROMOTION, timestamp=4.0, ballot="yay", rolls=1) for _ in range(34)]
        events += [vote(VotingPeriodKind.PROMOTION, timestamp=4.5, ballot="nay", rolls=1) for _ in range(6)]
        return events

    def test_report_fields(self):
        report = analyze_governance(self._events(), electorate_rolls=50)
        assert report.winning_proposal == "Babylon 2.0"
        assert report.exploration_unanimous
        assert report.could_merge_periods
        assert report.promotion.nay_share == pytest.approx(6 / 40)
        assert report.exploration.participation > report.proposal_participation

    def test_governance_operation_count_from_records(self, tezos_records):
        report = analyze_governance(self._events(), records=tezos_records)
        governance_records = [
            record for record in tezos_records if record.type in ("Ballot", "Proposals")
        ]
        assert report.governance_operation_count == len(governance_records)
        # Governance operations are a negligible share of Tezos traffic.
        assert report.governance_operation_count < 0.01 * len(tezos_records)

    def test_generated_babylon_votes_match_paper_shape(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        report = analyze_governance(events, electorate_rolls=460)
        assert report.winning_proposal == "Babylon 2.0"
        assert report.exploration_unanimous
        assert report.exploration.approval_rate > 0.99
        # Promotion sees ~15% nay votes after the testing-period breakages.
        assert 0.05 < report.promotion.nay_share < 0.3
        assert report.could_merge_periods


class TestFigure9Series:
    def test_three_panels_present(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        panels = figure9_series(events)
        assert set(panels) == {"proposal", "exploration", "promotion"}
        assert set(panels["proposal"]) == {"Babylon", "Babylon 2.0"}
        assert set(panels["exploration"]) == {"yay", "nay", "pass"}

    def test_series_are_cumulative_and_ordered(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        panels = figure9_series(events)
        for panel in panels.values():
            for series in panel.values():
                timestamps = [timestamp for timestamp, _ in series]
                counts = [count for _, count in series]
                assert timestamps == sorted(timestamps)
                assert counts == sorted(counts)

    def test_babylon2_overtakes_babylon(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        panels = figure9_series(events)
        babylon = panels["proposal"]["Babylon"]
        babylon2 = panels["proposal"]["Babylon 2.0"]
        assert babylon2[-1][1] > babylon[-1][1] * 0.8
        # Babylon 2.0 only starts receiving votes partway into the period.
        assert babylon2[0][0] > babylon[0][0]
