"""Out-of-core chunk engine: store scans reproduce the in-memory engine.

The chunk engine never materialises the full frame in any process — the
parent reads only the store manifest, workers stream contiguous chunk
ranges.  These tests pin the two properties the engine exists for:

* **identity** — :func:`parallel_report_from_store` over a committed store
  equals the serial in-memory :func:`~repro.analysis.report.full_report`,
  figure for figure, on both kernel backends, across ragged chunk sizes
  that split chains mid-chunk, and for every task-partition count;
* **bounded memory** — the in-process scan's allocation peak stays well
  below the materialised frame's footprint, and stays flat as chunk count
  grows.

Floating-point caveat: folding chunk-range subtotals reorders the Figure 12
value sums, so those compare to within strict relative tolerance (see
``tests/analysis/test_parallel.py``); everything else must match exactly.
"""

from __future__ import annotations

import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import AccountClusterer
from repro.analysis.parallel import (
    chunk_ranges,
    chunk_scan_states,
    parallel_report_from_store,
)
from repro.analysis.report import full_report
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import FrameStore
from repro.common import kernels
from repro.common.columns import TxFrame
from repro.common.records import ChainId

from tests.pipeline.util import assert_reports_identical

BACKENDS = ["python"] + (["numpy"] if kernels.numpy_available() else [])

#: Deliberately ragged: not a divisor of any chain's row count, so chunk
#: boundaries fall mid-chain and chains straddle chunks.
RAGGED_CHUNK_ROWS = 977


@pytest.fixture(scope="module")
def all_records(eos_records, tezos_records, xrp_records):
    return eos_records + tezos_records + xrp_records


@pytest.fixture(scope="module")
def combined_frame(all_records):
    return TxFrame.from_records(all_records)


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


@pytest.fixture(scope="module")
def serial_report(combined_frame, xrp_oracle, xrp_clusterer):
    return full_report(combined_frame, oracle=xrp_oracle, clusterer=xrp_clusterer)


def _build_store(directory, records, chunk_rows):
    store = FrameStore(chunk_rows=chunk_rows, directory=str(directory))
    store.add_records(records)
    store.flush()
    return store


@pytest.fixture(scope="module")
def ragged_store_dir(tmp_path_factory, all_records):
    directory = tmp_path_factory.mktemp("ragged-store")
    _build_store(directory, all_records, RAGGED_CHUNK_ROWS)
    return str(directory)


@pytest.fixture(scope="module")
def sliced_records(eos_records, tezos_records, xrp_records):
    """A few thousand rows of each chain — cheap per-test store builds."""
    return eos_records[:1500] + tezos_records[:1500] + xrp_records[:1500]


@pytest.fixture(scope="module")
def sliced_serial(sliced_records, xrp_oracle, xrp_clusterer):
    return full_report(
        TxFrame.from_records(sliced_records),
        oracle=xrp_oracle,
        clusterer=xrp_clusterer,
    )


class TestStoreReportIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_serial_on_both_backends(
        self, backend, ragged_store_dir, serial_report, xrp_oracle, xrp_clusterer
    ):
        with kernels.use_backend(backend):
            report = parallel_report_from_store(
                ragged_store_dir,
                oracle=xrp_oracle,
                clusterer=xrp_clusterer,
                workers=2,
                tasks=3,
            )
        assert_reports_identical(report, serial_report, exact_flows=False)

    @pytest.mark.parametrize("tasks", [1, 2, 5, 64])
    def test_every_task_partitioning(
        self, tasks, ragged_store_dir, serial_report, xrp_oracle, xrp_clusterer
    ):
        """Task count changes the fold points, never the figures."""
        report = parallel_report_from_store(
            ragged_store_dir,
            oracle=xrp_oracle,
            clusterer=xrp_clusterer,
            workers=0,
            tasks=tasks,
        )
        assert_reports_identical(report, serial_report, exact_flows=False)

    def test_chains_split_mid_chunk(
        self, tmp_path, sliced_records, xrp_oracle, xrp_clusterer
    ):
        """Interleaved chains put several chains inside every chunk."""
        by_chain = {}
        for record in sliced_records:
            by_chain.setdefault(record.chain, []).append(record)
        interleaved = []
        streams = [iter(rows) for rows in by_chain.values()]
        while streams:
            for stream in list(streams):
                chunk = [row for _, row in zip(range(25), stream)]
                if not chunk:
                    streams.remove(stream)
                interleaved.extend(chunk)
        assert len(interleaved) == len(sliced_records)
        _build_store(tmp_path, interleaved, 313)
        report = parallel_report_from_store(
            str(tmp_path), oracle=xrp_oracle, clusterer=xrp_clusterer, workers=2
        )
        serial = full_report(
            TxFrame.from_records(interleaved),
            oracle=xrp_oracle,
            clusterer=xrp_clusterer,
        )
        assert_reports_identical(report, serial, exact_flows=False)

    def test_staged_rows_excluded(self, tmp_path, all_records, xrp_oracle):
        """Only committed chunks are scanned; staging stays out of figures."""
        store = _build_store(tmp_path, all_records[:2000], 500)
        store.add_records(all_records[2000:2100])  # staged, not flushed
        report = parallel_report_from_store(str(tmp_path), oracle=xrp_oracle)
        rows = sum(
            figures.stats.action_count for figures in report.chains.values()
        )
        committed = full_report(
            TxFrame.from_records(all_records[:2000]), oracle=xrp_oracle
        )
        assert_reports_identical(report, committed, exact_flows=False)
        assert rows == 2000

    @settings(max_examples=6, deadline=None)
    @given(
        chunk_rows=st.integers(min_value=61, max_value=900),
        tasks=st.integers(min_value=1, max_value=7),
    )
    def test_property_ragged_boundaries(
        self, chunk_rows, tasks, tmp_path_factory, sliced_records,
        sliced_serial, xrp_oracle, xrp_clusterer,
    ):
        """Any chunk size x any partitioning reproduces the serial figures."""
        directory = tmp_path_factory.mktemp("prop-store")
        _build_store(directory, sliced_records, chunk_rows)
        report = parallel_report_from_store(
            str(directory),
            oracle=xrp_oracle,
            clusterer=xrp_clusterer,
            workers=0,
            tasks=tasks,
        )
        assert_reports_identical(report, sliced_serial, exact_flows=False)


class TestChunkScanStates:
    def test_states_finalize_to_serial_figures(
        self, ragged_store_dir, combined_frame, xrp_oracle, xrp_clusterer
    ):
        """The un-finalized fold matches per-chain row totals and is reusable."""
        totals, bases = chunk_scan_states(
            ragged_store_dir, oracle=xrp_oracle, clusterer=xrp_clusterer, workers=0
        )
        assert set(totals) == {chain.value for chain in ChainId}
        assert sum(totals.values()) == len(combined_frame)
        for chain in ChainId:
            view = combined_frame.chain_view(chain)
            assert totals[chain.value] == len(view.rows)
            assert bases[chain.value]
            # Finalize is deferred to the caller — calling it twice from
            # the same folded state must be stable.
            first = {acc.name: acc.finalize() for acc in bases[chain.value]}
            second = {acc.name: acc.finalize() for acc in bases[chain.value]}
            assert set(first) == set(second)

    def test_empty_store(self, tmp_path):
        FrameStore(chunk_rows=100, directory=str(tmp_path))._write_manifest()
        totals, bases = chunk_scan_states(str(tmp_path))
        assert totals == {}
        assert bases == {}

    def test_chunk_ranges_partition_exactly(self):
        for chunks in (1, 5, 17):
            for parts in (1, 2, 5, 40):
                ranges = chunk_ranges(chunks, parts)
                covered = [i for start, stop in ranges for i in range(start, stop)]
                assert covered == list(range(chunks))


class TestBoundedMemory:
    def _scan_peak(self, directory, oracle, clusterer):
        tracemalloc.start()
        try:
            parallel_report_from_store(
                str(directory), oracle=oracle, clusterer=clusterer, workers=0
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_scan_peak_well_below_frame_footprint(
        self, tmp_path, sliced_records, xrp_oracle, xrp_clusterer
    ):
        """Streaming chunks must not come close to materialising the frame."""
        _build_store(tmp_path, sliced_records * 4, 500)
        tracemalloc.start()
        try:
            frame = FrameStore.open(str(tmp_path)).to_frame()
            _, frame_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
            del frame
        scan_peak = self._scan_peak(tmp_path, xrp_oracle, xrp_clusterer)
        assert scan_peak < frame_peak * 0.7, (scan_peak, frame_peak)

    def test_scan_peak_flat_as_chunks_grow(
        self, tmp_path, sliced_records, xrp_oracle, xrp_clusterer
    ):
        """4x the committed rows must not 2x the scan's allocation peak.

        Accumulator state grows with distinct accounts/ids, which the
        repeated records below do not add, so any superlinear growth here
        would mean chunk payloads are being retained instead of streamed.
        """
        base_dir = tmp_path / "base"
        grown_dir = tmp_path / "grown"
        _build_store(base_dir, sliced_records, 500)
        _build_store(grown_dir, sliced_records * 4, 500)
        base_peak = self._scan_peak(base_dir, xrp_oracle, xrp_clusterer)
        grown_peak = self._scan_peak(grown_dir, xrp_oracle, xrp_clusterer)
        assert grown_peak < base_peak * 2.0, (base_peak, grown_peak)
