"""Shard/merge equivalence: parallel execution reproduces the serial engine.

Every accumulator implements ``merge``; these tests require that scanning a
frame in contiguous shards and merging the shard states (in shard order)
produces exactly the result of one serial pass — for every accumulator in
all nine analysis modules — and that the multiprocessing path (workers
rehydrating shards from columnar payloads) matches the serial
:func:`~repro.analysis.report.full_report` on all three chains.

Floating-point caveat: ``ValueFlowAccumulator`` sums XRP values, and merging
adds shard subtotals; counts, keys and orderings must match exactly, while
the value sums are compared to within strict relative tolerance (the serial
row-order sum and the shard-subtotal sum may differ in the last ulps).
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.accounts import (
    AccountActivityAccumulator,
    SenderCountsAccumulator,
    SenderReceiverPairsAccumulator,
)
from repro.analysis.airdrop import AirdropAccumulator, BoomerangClaimsAccumulator
from repro.analysis.classify import (
    CategoryDistributionAccumulator,
    ContractBreakdownAccumulator,
    TezosCategoryAccumulator,
    TypeDistributionAccumulator,
)
from repro.analysis.clustering import (
    AccountClusterer,
    ClusterCountsAccumulator,
    StaticAccountClusterer,
)
from repro.analysis.engine import Accumulator, AnalysisEngine, TxStatsAccumulator
from repro.analysis.flows import ValueFlowAccumulator
from repro.analysis.governance import GovernanceOpsAccumulator
from repro.analysis.parallel import (
    _scan_shard,
    parallel_full_report,
    parallel_run,
    run_sharded,
)
from repro.analysis.report import FIGURE3_CATEGORIZERS, full_report
from repro.analysis.throughput import ThroughputSeriesAccumulator
from repro.analysis.value import (
    ExchangeRateOracle,
    FailureCodeAccumulator,
    XrpDecompositionAccumulator,
)
from repro.analysis.washtrading import TradeExtractionAccumulator, WashTradeAccumulator
from repro.common.columns import TxFrame
from repro.common.errors import AnalysisError
from repro.common.records import ChainId


@pytest.fixture(scope="module")
def combined_frame(eos_records, tezos_records, xrp_records):
    return TxFrame.from_records(eos_records + tezos_records + xrp_records)


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


def _serial(factory, source):
    return AnalysisEngine(list(factory())).run(source)


def _assert_results_equal(serial, sharded):
    assert serial.rows_processed == sharded.rows_processed
    assert set(serial.keys()) == set(sharded.keys())
    for name in serial.keys():
        assert sharded[name] == serial[name], name


class TestShardMergeEquivalence:
    """run_sharded == one serial pass, for every accumulator."""

    SHARD_COUNTS = (2, 3, 7)

    def _check(self, factory, source, shards=3):
        serial = _serial(factory, source)
        sharded = run_sharded(source, factory, shards=shards)
        _assert_results_equal(serial, sharded)

    def test_tx_stats(self, combined_frame):
        for shards in self.SHARD_COUNTS:
            self._check(lambda: [TxStatsAccumulator()], combined_frame, shards)

    def test_type_distribution(self, combined_frame):
        self._check(lambda: [TypeDistributionAccumulator()], combined_frame)

    def test_category_distribution(self, combined_frame):
        self._check(lambda: [CategoryDistributionAccumulator()], combined_frame)

    def test_tezos_category_distribution(self, combined_frame):
        self._check(lambda: [TezosCategoryAccumulator()], combined_frame)

    def test_contract_breakdown(self, combined_frame):
        self._check(
            lambda: [ContractBreakdownAccumulator("eosio.token")], combined_frame
        )

    def test_throughput_series_key_columns(self, combined_frame):
        bounds = combined_frame.chain_bounds(ChainId.EOS)
        view = combined_frame.chain_view(ChainId.EOS)
        factory = lambda: [
            ThroughputSeriesAccumulator(
                key_columns=FIGURE3_CATEGORIZERS[ChainId.EOS],
                start=bounds[0],
                end=bounds[1],
            )
        ]
        self._check(factory, view)

    def test_throughput_series_row_categorizer(self, combined_frame):
        from repro.analysis.throughput import type_name_categorizer

        bounds = combined_frame.chain_bounds(ChainId.TEZOS)
        view = combined_frame.chain_view(ChainId.TEZOS)
        factory = lambda: [
            ThroughputSeriesAccumulator(
                categorizer=type_name_categorizer, start=bounds[0], end=bounds[1]
            )
        ]
        self._check(factory, view)

    def test_account_activity_both_sides(self, combined_frame):
        self._check(
            lambda: [
                AccountActivityAccumulator("sender", 10),
                AccountActivityAccumulator("receiver", 10),
            ],
            combined_frame,
        )

    def test_sender_receiver_pairs(self, combined_frame):
        self._check(lambda: [SenderReceiverPairsAccumulator()], combined_frame)

    def test_sender_counts(self, combined_frame):
        self._check(lambda: [SenderCountsAccumulator()], combined_frame)

    def test_xrp_decomposition(self, combined_frame, xrp_oracle):
        self._check(
            lambda: [XrpDecompositionAccumulator(xrp_oracle)], combined_frame
        )

    def test_failure_codes(self, combined_frame):
        self._check(lambda: [FailureCodeAccumulator()], combined_frame)

    def test_wash_trading_and_trades(self, combined_frame):
        self._check(
            lambda: [WashTradeAccumulator(), TradeExtractionAccumulator()],
            combined_frame,
        )

    def test_airdrop_and_boomerangs(self, combined_frame):
        self._check(
            lambda: [AirdropAccumulator(), BoomerangClaimsAccumulator()],
            combined_frame,
        )

    def test_cluster_counts(self, combined_frame, xrp_clusterer):
        self._check(
            lambda: [ClusterCountsAccumulator(xrp_clusterer, "sender")],
            combined_frame,
        )

    def test_governance_ops(self, combined_frame):
        self._check(lambda: [GovernanceOpsAccumulator()], combined_frame)

    def test_value_flows(self, combined_frame, xrp_oracle, xrp_clusterer):
        factory = lambda: [ValueFlowAccumulator(xrp_clusterer, xrp_oracle)]
        serial = _serial(factory, combined_frame)["value_flows"]
        sharded = run_sharded(combined_frame, factory, shards=3)["value_flows"]
        # Counts, keys and orderings merge exactly.
        assert [
            (flow.sender_cluster, flow.receiver_cluster, flow.currency, flow.payment_count)
            for flow in sharded.flows
        ] == [
            (flow.sender_cluster, flow.receiver_cluster, flow.currency, flow.payment_count)
            for flow in serial.flows
        ]
        assert sharded.by_sender.keys() == serial.by_sender.keys()
        # XRP-value sums add shard subtotals: equal to within rounding.
        assert sharded.total_xrp_value == pytest.approx(
            serial.total_xrp_value, rel=1e-9
        )
        for cluster, value in serial.by_sender.items():
            assert sharded.by_sender[cluster] == pytest.approx(value, rel=1e-9)
        for currency, value in serial.currency_face_value.items():
            assert sharded.currency_face_value[currency] == pytest.approx(
                value, rel=1e-9
            )


class TestParallelProcesses:
    """Multiprocessing path: payload rehydration + cross-process merge."""

    def test_parallel_run_matches_serial(self, combined_frame):
        factory = lambda: [TxStatsAccumulator(), TypeDistributionAccumulator()]
        serial = _serial(factory, combined_frame)
        parallel = parallel_run(
            combined_frame, _stats_and_types_factory, workers=2, shards=3
        )
        _assert_results_equal(serial, parallel)

    def test_parallel_full_report_matches_serial(
        self, combined_frame, xrp_oracle, xrp_clusterer
    ):
        serial = full_report(
            combined_frame, oracle=xrp_oracle, clusterer=xrp_clusterer
        )
        parallel = parallel_full_report(
            combined_frame,
            oracle=xrp_oracle,
            clusterer=xrp_clusterer,
            workers=2,
            shards=3,
        )
        assert set(parallel.chains) == set(serial.chains) == {
            ChainId.EOS,
            ChainId.TEZOS,
            ChainId.XRP,
        }
        for chain, expected in serial.chains.items():
            actual = parallel.chains[chain]
            assert actual.type_rows == expected.type_rows
            assert actual.stats == expected.stats
            assert actual.throughput == expected.throughput
            assert actual.top_senders == expected.top_senders
            assert actual.categories == expected.categories
            assert actual.top_receivers == expected.top_receivers
            assert actual.wash_trading == expected.wash_trading
            assert actual.decomposition == expected.decomposition
            if expected.value_flows is not None:
                assert actual.value_flows.total_xrp_value == pytest.approx(
                    expected.value_flows.total_xrp_value, rel=1e-9
                )
        assert parallel.summary().to_rows() == serial.summary().to_rows()

    def test_worker_rehydrates_payload(self, combined_frame):
        """The worker entry point rebuilds a code-compatible shard frame."""
        view = combined_frame.chain_view(ChainId.XRP)
        shard_view = view.shard(2)[0]
        payload = combined_frame.to_payload(shard_view.rows, arrays=True)
        tag, shipped = _scan_shard((0, payload, _stats_and_types_factory, 65_536))
        assert tag == 0
        # Workers ship (qualname, state payload) pairs, not accumulators.
        assert [qualname for qualname, _ in shipped] == [
            "TxStatsAccumulator",
            "TypeDistributionAccumulator",
        ]
        direct = _serial(_stats_and_types_factory, shard_view)
        base = _stats_and_types_factory()
        for accumulator in base:
            accumulator.bind_batch(combined_frame)
        for target, (_, state) in zip(base, shipped):
            target.restore_state(state)
        assert base[0].finalize() == direct["tx_stats"]
        assert base[1].finalize() == direct["type_distribution"]

    def test_scanned_accumulator_pickles_without_frame(self, combined_frame):
        accumulator = TypeDistributionAccumulator()
        AnalysisEngine([accumulator]).run(combined_frame)
        clone = pickle.loads(pickle.dumps(accumulator))
        assert "_frame" not in vars(clone)
        assert clone._counts == accumulator._counts


def _stats_and_types_factory():
    """Module-level factory: picklable across process start methods."""
    return [TxStatsAccumulator(), TypeDistributionAccumulator()]


class TestMergeProtocol:
    def test_base_merge_unimplemented(self):
        with pytest.raises(NotImplementedError):
            Accumulator().merge(Accumulator())

    def test_mismatched_accumulator_sets_rejected(self, combined_frame):
        from repro.analysis.parallel import _merge_into

        bound = TxStatsAccumulator()
        bound.bind_batch(combined_frame)
        with pytest.raises(AnalysisError):
            _merge_into([bound], [])
        other = TypeDistributionAccumulator()
        other.bind_batch(combined_frame)
        with pytest.raises(AnalysisError):
            _merge_into([bound], [other])

    def test_run_sharded_empty_frame(self):
        result = run_sharded(TxFrame(), lambda: [TxStatsAccumulator()], shards=4)
        assert result.rows_processed == 0
        assert result["tx_stats"].action_count == 0

    def test_static_clusterer_matches_live(self, combined_frame, xrp_clusterer):
        addresses = [
            combined_frame.accounts.values[code]
            for code in set(combined_frame.sender_code)
        ]
        static = StaticAccountClusterer.from_clusterer(xrp_clusterer, addresses)
        for address in addresses:
            assert static.cluster_of(address) == xrp_clusterer.cluster_of(address)
        assert static.cluster_of("rUnknownAddress") == "rUnknownAddress"
