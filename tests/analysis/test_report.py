"""Tests for the cross-chain summary report."""

import pytest

from repro.common.records import ChainId
from repro.analysis.report import build_summary_report
from repro.analysis.value import ExchangeRateOracle


class TestSummaryReport:
    def test_empty_report(self):
        report = build_summary_report()
        assert report.chains == {}
        assert report.to_rows() == []

    def test_single_chain_report(self, eos_records):
        report = build_summary_report(eos_records=eos_records)
        assert set(report.chains) == {ChainId.EOS}
        summary = report.chains[ChainId.EOS]
        assert summary.transaction_count > 0
        assert summary.action_count >= summary.transaction_count
        assert summary.tps > 0.0
        assert summary.dominant_label.startswith("category:")

    def test_full_report_matches_paper_findings(
        self, eos_records, tezos_records, xrp_records, xrp_generator
    ):
        oracle = ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)
        report = build_summary_report(
            eos_records=eos_records,
            tezos_records=tezos_records,
            xrp_records=xrp_records,
            xrp_oracle=oracle,
        )
        assert set(report.chains) == {ChainId.EOS, ChainId.TEZOS, ChainId.XRP}
        eos = report.chains[ChainId.EOS]
        tezos = report.chains[ChainId.TEZOS]
        xrp = report.chains[ChainId.XRP]
        # EOS traffic dominated by token transfers (EIDOS), Tezos by consensus
        # endorsements, XRP value share tiny — the paper's three headlines.
        assert eos.dominant_label == "category:Tokens"
        assert tezos.dominant_label == "category:consensus"
        assert tezos.dominant_share > 0.7
        assert xrp.value_share is not None and xrp.value_share < 0.1
        rows = report.to_rows()
        assert len(rows) == 3
        assert {row["chain"] for row in rows} == {"eos", "tezos", "xrp"}

    def test_format_text_mentions_every_chain(self, eos_records, tezos_records):
        report = build_summary_report(eos_records=eos_records, tezos_records=tezos_records)
        text = report.format_text()
        assert "EOS" in text
        assert "TEZOS" in text
        assert "dominant" in text

    def test_xrp_without_oracle_defaults_to_zero_value_for_ious(self, xrp_records):
        report = build_summary_report(xrp_records=xrp_records)
        xrp = report.chains[ChainId.XRP]
        assert xrp.value_share is not None
        assert 0.0 <= xrp.value_share <= 1.0
