"""Chunk-state aggregate cache: entries, keying, faults, invalidation.

The cache contract under test, layer by layer:

* **entry codec** — encode/decode round-trips per-chain shipped states;
  every corruption class (short blob, wrong magic, checksum mismatch,
  codec garbage, wrong shape or version) decodes to ``None``, never
  raises;
* **keying** — the file-name key misses cleanly on any drift: a different
  accumulator configuration (oracle, clusterer), a different stats mode,
  rewritten chunk bytes, a migrated chunk format;
* **writes** — entries commit atomically; injected ``store.cache_write``
  faults (torn, bitflip, truncate) leave only undecodable entries — which
  read back as misses — and an injected crash propagates without
  committing the entry;
* **consumers** — cached and uncached out-of-core reports are
  figure-for-figure identical, hit/miss counters account for exactly the
  chunks skipped and rescanned, appends rescan only appended chunks, and
  ``migrate_format`` drops the whole cache;
* **partitioning** — ``row_balanced_ranges`` always covers the chunk index
  space exactly while cutting at cumulative-row boundaries.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.clustering import AccountClusterer
from repro.analysis.parallel import (
    chunk_ranges,
    parallel_report_from_store,
    row_balanced_ranges,
)
from repro.analysis.statecache import (
    ENTRY_MAGIC,
    ChunkStateCache,
    EntryKey,
    decode_entry,
    encode_entry,
    parse_entry_name,
)
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import (
    CHUNK_FORMAT_V1,
    CHUNK_FORMAT_V2,
    FrameStore,
    state_cache_dir,
)
from repro.common import faults, statsmode

from tests.pipeline.util import assert_reports_identical

CHUNK_ROWS = 977

SAMPLE_STATES = {
    "xrp": [("TxStatsAccumulator", {"count": 7}), ("Other", {"values": [1, 2]})],
    "eos": [("TxStatsAccumulator", {"count": 1})],
}


@pytest.fixture(scope="module")
def sample_records(eos_records, xrp_records):
    return eos_records[:4000] + xrp_records[:4000]


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


@pytest.fixture
def store_dir(tmp_path, sample_records):
    directory = str(tmp_path / "store")
    store = FrameStore(chunk_rows=CHUNK_ROWS, directory=directory)
    store.add_records(sample_records)
    store.flush()
    return directory


def _report(directory, oracle, clusterer, cache=None):
    return parallel_report_from_store(
        directory, oracle=oracle, clusterer=clusterer, workers=1, cache=cache
    )


# -- entry codec ------------------------------------------------------------------------


def test_entry_roundtrip():
    blob = encode_entry(SAMPLE_STATES)
    assert blob.startswith(ENTRY_MAGIC)
    decoded = decode_entry(blob)
    assert decoded == {
        chain: [tuple(pair) for pair in shipped]
        for chain, shipped in SAMPLE_STATES.items()
    }


@pytest.mark.parametrize(
    "mutate",
    [
        lambda blob: b"",
        lambda blob: blob[:3],
        lambda blob: b"XXXX" + blob[4:],
        lambda blob: blob[:-1],
        lambda blob: blob[:10] + bytes([blob[10] ^ 0xFF]) + blob[11:],
        lambda blob: blob + b"trailing",
    ],
    ids=["empty", "short", "bad-magic", "truncated", "bitflip", "trailing"],
)
def test_corrupt_entries_decode_to_none(mutate):
    assert decode_entry(mutate(encode_entry(SAMPLE_STATES))) is None


def test_wrong_shapes_decode_to_none():
    import struct
    import zlib

    from repro.common import statecodec

    for payload in (
        [],
        {"version": 99, "chains": {}},
        {"version": 1, "chains": ["not", "a", "dict"]},
        {"version": 1, "chains": {"xrp": [("qualname-but-no-payload",)]}},
        {"version": 1, "chains": {"xrp": [(7, {"payload": 1})]}},
    ):
        body = statecodec.encode(payload)
        blob = ENTRY_MAGIC + struct.pack(">I", zlib.adler32(body) & 0xFFFFFFFF) + body
        assert decode_entry(blob) is None


def test_entry_name_roundtrip_and_rejects():
    key = EntryKey("0a1b2c3d", "0123456789abcdef", "exact", "v2")
    assert parse_entry_name(key.filename()) == key
    for name in (
        "state-aa-bb-exact-v2.state.tmp",  # crashed-write temp
        "state-aa-bb-exact.state",  # missing a part
        "state-aa-bb-exact-v2-extra.state",  # too many parts
        "state-aa--exact-v2.state",  # empty part
        "manifest.json",
        "frame-chunk-000001.bin",
    ):
        assert parse_entry_name(name) is None


# -- cache reads/writes -----------------------------------------------------------------


def test_store_load_clear_stat(tmp_path):
    cache = ChunkStateCache(str(tmp_path / "cache"))
    key = EntryKey("0a1b2c3d", "0123456789abcdef", "exact", "v2")
    assert cache.load(key) is None  # absent directory is a clean miss
    cache.store(key, SAMPLE_STATES)
    assert cache.load(key) is not None
    stat = cache.stat()
    assert stat["entries"] == 1 and stat["bytes"] > 0 and stat["other_files"] == 0
    assert cache.clear() == 1
    assert cache.load(key) is None
    assert cache.stat()["entries"] == 0


@pytest.mark.parametrize("mode", ["torn", "bitflip", "truncate"])
def test_injected_write_corruption_reads_as_miss(tmp_path, mode):
    cache = ChunkStateCache(str(tmp_path / "cache"))
    key = EntryKey("0a1b2c3d", "0123456789abcdef", "exact", "v2")
    plan = faults.FaultPlan.parse(f"seed=5;store.cache_write:mode={mode}:nth=1")
    with faults.use_plan(plan):
        cache.store(key, SAMPLE_STATES)
    assert cache.load(key) is None  # damaged entry == absent entry
    cache.store(key, SAMPLE_STATES)  # rescan path overwrites it
    assert cache.load(key) is not None


def test_injected_write_crash_commits_nothing(tmp_path):
    cache = ChunkStateCache(str(tmp_path / "cache"))
    key = EntryKey("0a1b2c3d", "0123456789abcdef", "exact", "v2")
    plan = faults.FaultPlan.parse("seed=5;store.cache_write:mode=crash:nth=1")
    with faults.use_plan(plan), pytest.raises(faults.InjectedCrash):
        cache.store(key, SAMPLE_STATES)
    assert cache.load(key) is None
    assert cache.stat()["entries"] == 0  # the temp leftover is not an entry
    leftovers = cache.stat()["other_files"]
    assert leftovers == 1  # fsck flags it as orphaned; stat reports it


# -- cached reports ---------------------------------------------------------------------


def test_cached_report_identity_and_counters(store_dir, xrp_oracle, xrp_clusterer):
    uncached = _report(store_dir, xrp_oracle, xrp_clusterer)
    chunks = FrameStore.open(store_dir).committed_chunk_count

    cold = ChunkStateCache.for_store(store_dir)
    cold_report = _report(store_dir, xrp_oracle, xrp_clusterer, cache=cold)
    assert (cold.hits, cold.misses) == (0, chunks)

    warm = ChunkStateCache.for_store(store_dir)
    warm_report = _report(store_dir, xrp_oracle, xrp_clusterer, cache=warm)
    assert (warm.hits, warm.misses) == (chunks, 0)

    assert_reports_identical(cold_report, uncached, exact_flows=True)
    assert_reports_identical(warm_report, uncached, exact_flows=True)


def test_append_rescans_only_new_chunks(
    store_dir, xrp_records, xrp_oracle, xrp_clusterer
):
    store = FrameStore.open(store_dir)
    before = store.committed_chunk_count
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=ChunkStateCache.for_store(store_dir))

    store.add_records(xrp_records[4000:7000])
    store.flush()
    after = store.committed_chunk_count
    assert after > before

    cache = ChunkStateCache.for_store(store_dir)
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=cache)
    assert (cache.hits, cache.misses) == (before, after - before)


def test_new_chain_append_invalidates_wholesale(
    store_dir, tezos_records, xrp_oracle, xrp_clusterer
):
    """A first-seen chain changes the factory set, hence the config digest.

    Every old entry then misses — the deliberate safe behavior: the digest
    covers the whole per-chain factory configuration, so entries can never
    be half-compatible.  The rescan rebuilds the cache under the new digest
    and subsequent reports are all-hit again.
    """
    store = FrameStore.open(store_dir)
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=ChunkStateCache.for_store(store_dir))
    store.add_records(tezos_records[:3000])
    store.flush()
    total = store.committed_chunk_count

    cache = ChunkStateCache.for_store(store_dir)
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=cache)
    assert (cache.hits, cache.misses) == (0, total)
    rewarmed = ChunkStateCache.for_store(store_dir)
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=rewarmed)
    assert (rewarmed.hits, rewarmed.misses) == (total, 0)


def test_config_drift_misses_cleanly(store_dir, xrp_oracle, xrp_clusterer):
    chunks = FrameStore.open(store_dir).committed_chunk_count
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=ChunkStateCache.for_store(store_dir))

    # A different oracle configuration digests differently: every chunk
    # misses, is rescanned, and the report still matches its own engine.
    other_oracle = ExchangeRateOracle({})
    drifted = ChunkStateCache.for_store(store_dir)
    drifted_report = _report(store_dir, other_oracle, xrp_clusterer, cache=drifted)
    assert (drifted.hits, drifted.misses) == (0, chunks)
    assert_reports_identical(
        drifted_report, _report(store_dir, other_oracle, xrp_clusterer), exact_flows=True
    )

    # And the original config still hits its own entries.
    original = ChunkStateCache.for_store(store_dir)
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=original)
    assert (original.hits, original.misses) == (chunks, 0)


def test_stats_mode_keys_entries_separately(store_dir, xrp_oracle, xrp_clusterer):
    chunks = FrameStore.open(store_dir).committed_chunk_count
    with statsmode.use_mode(statsmode.EXACT):
        exact = ChunkStateCache.for_store(store_dir)
        _report(store_dir, xrp_oracle, xrp_clusterer, cache=exact)
    with statsmode.use_mode(statsmode.SKETCH):
        sketch = ChunkStateCache.for_store(store_dir)
        _report(store_dir, xrp_oracle, xrp_clusterer, cache=sketch)
        assert (sketch.hits, sketch.misses) == (0, chunks)
        rewarm = ChunkStateCache.for_store(store_dir)
        _report(store_dir, xrp_oracle, xrp_clusterer, cache=rewarm)
        assert (rewarm.hits, rewarm.misses) == (chunks, 0)


def test_migrate_format_invalidates_cache(store_dir, xrp_oracle, xrp_clusterer):
    store = FrameStore.open(store_dir)
    cache = ChunkStateCache.for_store(store_dir)
    _report(store_dir, xrp_oracle, xrp_clusterer, cache=cache)
    assert cache.stat()["entries"] == store.committed_chunk_count

    target = (
        CHUNK_FORMAT_V1
        if store.chunk_format == CHUNK_FORMAT_V2
        else CHUNK_FORMAT_V2
    )
    assert store.migrate_format(target) > 0
    assert ChunkStateCache.for_store(store_dir).stat()["entries"] == 0

    # Post-migration reports rebuild the cache under the new format's keys.
    rebuilt = ChunkStateCache.for_store(store_dir)
    report = _report(store_dir, xrp_oracle, xrp_clusterer, cache=rebuilt)
    assert rebuilt.misses == store.committed_chunk_count
    assert_reports_identical(
        report, _report(store_dir, xrp_oracle, xrp_clusterer), exact_flows=True
    )


def test_chunk_identity_tracks_bytes_and_format(store_dir):
    store = FrameStore.open(store_dir)
    checksum, fmt = store.chunk_identity(0)
    assert len(checksum) == 8 and fmt == store.chunk_format
    assert store.chunk_identity(0) == (checksum, fmt)  # stable
    other_checksum, _ = store.chunk_identity(1)
    assert other_checksum != checksum  # different bytes, different key


def test_state_cache_dir_is_outside_chunk_globs(store_dir, xrp_oracle):
    """Reopening a store must never sweep cache entries as stale chunks."""
    cache = ChunkStateCache.for_store(store_dir)
    _report(store_dir, xrp_oracle, None, cache=cache)
    entries = cache.stat()["entries"]
    assert entries > 0
    store = FrameStore.open(store_dir)  # runs the stale-partial cleanup
    assert ChunkStateCache.for_store(store_dir).stat()["entries"] == entries
    assert os.path.isdir(state_cache_dir(store_dir))


# -- row-balanced partitioning ----------------------------------------------------------


def test_row_balanced_ranges_cover_exactly():
    for counts, parts in (
        ([10, 10, 100, 10, 10], 2),
        ([1] * 7, 3),
        ([5], 4),
        ([], 3),
        ([0, 0, 0], 2),
        ([100, 1, 1, 1, 1, 1, 1, 1], 4),
        (list(range(1, 40)), 8),
    ):
        ranges = row_balanced_ranges(counts, parts)
        flattened = [i for start, stop in ranges for i in range(start, stop)]
        assert flattened == list(range(len(counts)))
        if counts:
            # Every part non-empty (chunk_scan_tasks filters the empty
            # range the zero-chunk degenerate case yields, as for
            # chunk_ranges).
            assert all(stop > start for start, stop in ranges)
            assert len(ranges) == min(max(parts, 1), len(counts))


def test_row_balanced_ranges_beat_count_split_on_ragged_tails():
    # A tail of tiny flush chunks behind full-size ones: the count split
    # gives one worker almost everything; the row split balances.
    counts = [100_000] * 4 + [500] * 12
    parts = 4
    count_ranges = chunk_ranges(len(counts), parts)
    row_ranges = row_balanced_ranges(counts, parts)

    def worst(ranges):
        return max(sum(counts[start:stop]) for start, stop in ranges)

    assert worst(row_ranges) < worst(count_ranges)
    assert worst(row_ranges) <= 2 * (sum(counts) // parts)
