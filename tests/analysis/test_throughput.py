"""Tests for throughput binning and TPS (Figure 3)."""

import pytest

from repro.common.clock import SECONDS_PER_HOUR, timestamp_from_iso
from repro.common.errors import AnalysisError
from repro.common.records import ChainId, TransactionRecord
from repro.analysis.classify import classify_eos_category
from repro.analysis.throughput import (
    DEFAULT_BIN_SECONDS,
    bin_throughput,
    scaled_tps,
    spike_ratio,
    transactions_per_second,
)


def record_at(timestamp, type_="transfer", chain=ChainId.EOS):
    return TransactionRecord(
        chain=chain,
        transaction_id=f"tx{timestamp}",
        block_height=1,
        timestamp=timestamp,
        type=type_,
        sender="alice",
        receiver="bob",
    )


class TestBinning:
    def test_default_bin_is_six_hours(self):
        assert DEFAULT_BIN_SECONDS == 6 * SECONDS_PER_HOUR

    def test_counts_fall_into_correct_bins(self):
        records = [record_at(0.0), record_at(10.0), record_at(7_000.0)]
        series = bin_throughput(records, lambda record: "all", bin_seconds=3_600.0)
        assert series.bin_count == 2
        assert series.total_series() == [2, 1]
        assert series.bin_start(1) == 3_600.0

    def test_categories_tracked_separately(self):
        records = [record_at(0.0, "a"), record_at(1.0, "b"), record_at(2.0, "a")]
        series = bin_throughput(records, lambda record: record.type, bin_seconds=10.0)
        assert series.series_for("a") == [2]
        assert series.series_for("b") == [1]
        assert series.totals() == {"a": 2, "b": 1}

    def test_records_outside_window_ignored(self):
        records = [record_at(5.0), record_at(500.0)]
        series = bin_throughput(records, lambda record: "all", bin_seconds=10.0, start=0.0, end=20.0)
        assert sum(series.total_series()) == 1

    def test_peak_bin(self):
        records = [record_at(1.0), record_at(2.0), record_at(100.0)]
        series = bin_throughput(records, lambda record: "all", bin_seconds=10.0)
        index, count = series.peak_bin()
        assert index == 0
        assert count == 2

    def test_average_per_bin(self):
        records = [record_at(t) for t in (0.0, 1.0, 11.0)]
        series = bin_throughput(records, lambda record: "all", bin_seconds=10.0)
        assert series.average_per_bin() == pytest.approx(1.5)
        assert series.average_per_bin("all") == pytest.approx(1.5)

    def test_empty_input_rejected(self):
        with pytest.raises(AnalysisError):
            bin_throughput([], lambda record: "all")

    def test_invalid_bin_size(self):
        with pytest.raises(AnalysisError):
            bin_throughput([record_at(0.0)], lambda record: "all", bin_seconds=0.0)


class TestTps:
    def test_basic_tps(self):
        assert transactions_per_second(1_000, 100.0) == 10.0

    def test_scaled_tps(self):
        # At 1% of real volume, measured 0.2 TPS corresponds to 20 TPS.
        assert scaled_tps(1_728, 86_400.0, scale_factor=0.001) == pytest.approx(20.0)

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            transactions_per_second(10, 0.0)
        with pytest.raises(AnalysisError):
            scaled_tps(10, 10.0, 0.0)


class TestSpikeRatio:
    def test_detects_traffic_increase(self):
        records = [record_at(float(t)) for t in range(10)]
        records += [record_at(100.0 + t * 0.1) for t in range(100)]
        series = bin_throughput(records, lambda record: "all", bin_seconds=50.0)
        assert spike_ratio(series, split_timestamp=50.0) >= 5.0

    def test_requires_both_sides(self):
        records = [record_at(float(t)) for t in range(10)]
        series = bin_throughput(records, lambda record: "all", bin_seconds=5.0)
        with pytest.raises(AnalysisError):
            spike_ratio(series, split_timestamp=-100.0)


class TestFigure3Shapes:
    def test_eos_token_category_spikes_after_eidos_launch(self, eos_records, scenario):
        series = bin_throughput(
            eos_records,
            classify_eos_category,
            bin_seconds=DEFAULT_BIN_SECONDS,
        )
        launch = scenario.eos.eidos_launch_timestamp
        ratio = spike_ratio(series, launch)
        assert ratio > 5.0

    def test_tezos_endorsement_series_is_stable(self, tezos_records):
        series = bin_throughput(
            tezos_records,
            lambda record: "Endorsement" if record.type == "Endorsement" else "Other",
            bin_seconds=DEFAULT_BIN_SECONDS,
        )
        endorsements = series.series_for("Endorsement")
        interior = endorsements[1:-1]  # first/last bins may be partial
        assert interior
        assert max(interior) <= 2 * min(value for value in interior if value > 0)

    def test_xrp_payment_series_shows_spam_wave(self, xrp_records, scenario):
        series = bin_throughput(
            xrp_records,
            lambda record: record.type if record.success else "Unsuccessful",
            bin_seconds=DEFAULT_BIN_SECONDS,
        )
        payments = series.series_for("Payment")
        wave_end = timestamp_from_iso(scenario.xrp.spam_waves[0][1])
        inside = [
            count
            for index, count in enumerate(payments)
            if series.bin_start(index) < wave_end
        ]
        outside = [
            count
            for index, count in enumerate(payments)
            if series.bin_start(index) >= wave_end
        ]
        if inside and outside:
            assert max(inside) > max(outside)
