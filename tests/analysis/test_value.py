"""Tests for the XRP value analysis (Figure 7, Figure 11, §4.3)."""

import pytest

from repro.common.records import ChainId, TransactionRecord
from repro.analysis.value import (
    ExchangeRateOracle,
    XrpValueAnalyzer,
    detect_self_dealing,
    iou_rate_table,
    rate_history,
)
from repro.xrp.amounts import IouAmount
from repro.xrp.orderbook import OrderBook
from repro.xrp.workload import LIQUID_LINKED_ISSUER, MYRONE_ACCOUNT, XrpWorkloadConfig, XrpWorkloadGenerator


def xrp_record(type_="Payment", success=True, amount=1.0, currency="XRP", issuer="", executed=False, error=""):
    metadata = {"executed": True} if executed else {}
    return TransactionRecord(
        chain=ChainId.XRP,
        transaction_id=f"{type_}-{currency}-{issuer}-{amount}-{success}-{executed}",
        block_height=1,
        timestamp=0.0,
        type=type_,
        sender="rSender",
        receiver="rReceiver",
        amount=amount,
        currency=currency,
        issuer=issuer,
        success=success,
        error_code=error,
        metadata=metadata,
    )


class TestOracle:
    def test_native_xrp_always_has_value(self):
        oracle = ExchangeRateOracle()
        assert oracle.rate("XRP", "") == 1.0
        assert oracle.has_value("XRP", "")

    def test_unknown_iou_is_valueless(self):
        oracle = ExchangeRateOracle()
        assert oracle.rate("BTC", "rRandom") == 0.0
        assert not oracle.has_value("BTC", "rRandom")

    def test_rates_are_issuer_specific(self):
        oracle = ExchangeRateOracle({("BTC", "rBitstamp"): 36_050.0, ("BTC", "rSpammer"): 0.0})
        assert oracle.has_value("BTC", "rBitstamp")
        assert not oracle.has_value("BTC", "rSpammer")
        assert oracle.xrp_value("BTC", "rBitstamp", 2.0) == pytest.approx(72_100.0)

    def test_from_orderbook(self):
        book = OrderBook()
        book.place("rSeller", IouAmount.iou("BTC", 1.0, "rBitstamp"), IouAmount.native(30_000.0))
        book.place("rBuyer", IouAmount.native(30_000.0), IouAmount.iou("BTC", 1.0, "rBitstamp"))
        oracle = ExchangeRateOracle.from_orderbook(book)
        assert oracle.rate("BTC", "rBitstamp") == pytest.approx(30_000.0)
        assert ("BTC", "rBitstamp") in oracle.known_assets()


class TestDecomposition:
    def test_synthetic_decomposition(self):
        oracle = ExchangeRateOracle({("USD", "rGateway"): 5.0})
        analyzer = XrpValueAnalyzer(oracle)
        records = (
            [xrp_record("Payment", amount=10.0) for _ in range(2)]                      # valued (XRP)
            + [xrp_record("Payment", currency="USD", issuer="rGateway")]                # valued IOU
            + [xrp_record("Payment", currency="BTC", issuer="rJunk") for _ in range(7)]  # valueless
            + [xrp_record("OfferCreate") for _ in range(8)]
            + [xrp_record("OfferCreate", executed=True)]
            + [xrp_record("TrustSet")]
            + [xrp_record("Payment", success=False, error="tecPATH_DRY") for _ in range(2)]
        )
        decomposition = analyzer.decompose(records)
        assert decomposition.total == 22
        assert decomposition.failed == 2
        assert decomposition.payments == 10
        assert decomposition.payments_with_value == 3
        assert decomposition.offers == 9
        assert decomposition.offers_exchanged == 1
        assert decomposition.others == 1
        assert decomposition.economic_value_share == pytest.approx(4 / 22)
        assert decomposition.offer_fill_fraction == pytest.approx(1 / 9)

    def test_non_xrp_records_ignored(self):
        oracle = ExchangeRateOracle()
        analyzer = XrpValueAnalyzer(oracle)
        eos = TransactionRecord(
            chain=ChainId.EOS, transaction_id="t", block_height=1, timestamp=0.0,
            type="transfer", sender="a", receiver="b",
        )
        assert analyzer.decompose([eos]).total == 0

    def test_payment_value_predicates(self):
        oracle = ExchangeRateOracle({("USD", "rGateway"): 5.0})
        analyzer = XrpValueAnalyzer(oracle)
        valued = xrp_record("Payment", currency="USD", issuer="rGateway", amount=3.0)
        junk = xrp_record("Payment", currency="USD", issuer="rJunk", amount=3.0)
        failed = xrp_record("Payment", success=False)
        assert analyzer.payment_has_value(valued)
        assert analyzer.payment_xrp_value(valued) == pytest.approx(15.0)
        assert not analyzer.payment_has_value(junk)
        assert analyzer.payment_xrp_value(junk) == 0.0
        assert not analyzer.payment_has_value(failed)

    def test_failure_code_distribution(self):
        analyzer = XrpValueAnalyzer(ExchangeRateOracle())
        records = [
            xrp_record("Payment", success=False, error="tecPATH_DRY"),
            xrp_record("Payment", success=False, error="tecPATH_DRY"),
            xrp_record("OfferCreate", success=False, error="tecUNFUNDED_OFFER"),
        ]
        table = analyzer.failure_code_distribution(records)
        assert table["Payment"]["tecPATH_DRY"] == 2
        assert table["OfferCreate"]["tecUNFUNDED_OFFER"] == 1

    def test_generated_traffic_decomposition_matches_paper_shape(self, xrp_records, xrp_generator):
        oracle = ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)
        analyzer = XrpValueAnalyzer(oracle)
        decomposition = analyzer.decompose(xrp_records)
        # ~10% of recorded transactions fail.
        assert 0.05 < decomposition.failed_share < 0.2
        # Only a small fraction of throughput carries economic value (§3.4: ~2%).
        assert decomposition.economic_value_share < 0.1
        # Most successful payments move valueless tokens.
        assert decomposition.payments_without_value > decomposition.payments_with_value
        # Almost no offers are ever exchanged (paper: 0.2%).
        assert decomposition.offer_fill_fraction < 0.05


class TestIouRates:
    def test_rate_table_orders_by_rate(self):
        book = OrderBook()
        book.place("rS", IouAmount.iou("BTC", 1.0, "rBitstamp"), IouAmount.native(36_050.0))
        book.place("rB", IouAmount.native(36_050.0), IouAmount.iou("BTC", 1.0, "rBitstamp"))
        rows = iou_rate_table(
            book,
            [
                ("BTC", "rBitstamp", "Bitstamp"),
                ("BTC", "rSpammer", "not registered"),
            ],
        )
        assert rows[0].issuer_name == "Bitstamp"
        assert rows[0].average_rate == pytest.approx(36_050.0)
        assert rows[1].is_valueless

    def test_rate_history(self):
        book = OrderBook()
        book.place("rS", IouAmount.iou("BTC", 1.0, "rX"), IouAmount.native(30_500.0), timestamp=1.0)
        book.place("rB", IouAmount.native(30_500.0), IouAmount.iou("BTC", 1.0, "rX"), timestamp=1.0)
        history = rate_history(book, "BTC", "rX")
        assert history and history[0][1] == pytest.approx(30_500.0)


class TestSelfDealing:
    def test_detects_myrone_pattern(self):
        # The buyer of the IOU previously received it straight from the issuer.
        config = XrpWorkloadConfig(
            start_date="2019-12-12",
            end_date="2019-12-16",
            transactions_per_day=80,
            ledgers_per_day=4,
            ordinary_account_count=20,
            spam_accounts_per_wave=5,
            seed=3,
        )
        generator = XrpWorkloadGenerator(config)
        blocks = generator.generate()
        records = [record for block in blocks for record in block.transactions]
        findings = detect_self_dealing(records, generator.ledger.orderbook)
        assert any(
            finding["issuer"] == LIQUID_LINKED_ISSUER and finding["buyer"] == MYRONE_ACCOUNT
            for finding in findings
        )

    def test_no_findings_without_issuer_payments(self):
        book = OrderBook()
        book.place("rS", IouAmount.iou("BTC", 1.0, "rX"), IouAmount.native(100.0))
        book.place("rB", IouAmount.native(100.0), IouAmount.iou("BTC", 1.0, "rX"))
        assert detect_self_dealing([], book) == []
