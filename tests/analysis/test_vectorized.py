"""Unit tests for the kernel backend switch and the vectorized primitives."""

from __future__ import annotations

from array import array
from collections import Counter

import pytest

from repro.analysis.engine import gather, scan_blocks
from repro.analysis.vectorized import (
    add_counts,
    block_columns,
    count_codes,
    matched_rows,
    pack_codes,
    unique_counts_ordered,
)
from repro.common import kernels
from repro.common.errors import ReproError

numpy_only = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)


class TestBackendSelection:
    def test_default_backend_matches_numpy_availability(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        expected = kernels.NUMPY if kernels.numpy_available() else kernels.PYTHON
        assert kernels.active_backend() == expected

    def test_environment_variable_selects_python(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        assert kernels.active_backend() == kernels.PYTHON
        assert not kernels.use_numpy()

    def test_environment_variable_rejects_unknown_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        with pytest.raises(ReproError):
            kernels.active_backend()

    def test_override_takes_precedence_over_environment(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        with kernels.use_backend(kernels.PYTHON):
            assert kernels.active_backend() == kernels.PYTHON
        if kernels.numpy_available():
            with kernels.use_backend(kernels.NUMPY):
                assert kernels.active_backend() == kernels.NUMPY
            # The override is cleared on context exit.
            assert kernels.active_backend() == kernels.PYTHON

    def test_numpy_request_fails_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy", None)
        with pytest.raises(ReproError):
            kernels.set_backend("numpy")
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        with pytest.raises(ReproError):
            kernels.active_backend()

    def test_set_backend_returns_previous_override(self):
        previous = kernels.set_backend("python")
        try:
            assert kernels.active_backend() == kernels.PYTHON
        finally:
            kernels.set_backend(previous)


@numpy_only
class TestVectorizedPrimitives:
    def test_unique_counts_preserve_first_seen_order(self):
        np = kernels.numpy_module()
        keys = np.asarray([7, 3, 7, 9, 3, 3, 1], dtype=np.int64)
        uniques, counts = unique_counts_ordered(keys)
        assert uniques.tolist() == [7, 3, 9, 1]
        assert counts.tolist() == [2, 3, 1, 1]

    def test_count_codes_matches_reference_counter_exactly(self):
        np = kernels.numpy_module()
        first = [2, 0, 2, 1, 0, 2]
        second = [5, 5, 5, 3, 1, 5]
        reference = Counter(zip(first, second))
        target = Counter()
        count_codes(
            target,
            (np.asarray(first, dtype=np.int64), np.asarray(second, dtype=np.int64)),
            (3, 6),
        )
        assert target == reference
        # Insertion order replays the first-seen (row) order too.
        assert list(target) == list(reference)
        assert all(isinstance(key, tuple) for key in target)

    def test_count_codes_single_column_uses_int_keys(self):
        np = kernels.numpy_module()
        target = {}
        count_codes(target, (np.asarray([4, 4, 2], dtype=np.int64),), (5,))
        assert target == {4: 2, 2: 1}
        assert list(target) == [4, 2]

    def test_pack_codes_overflow_returns_none(self):
        np = kernels.numpy_module()
        blocks = (np.asarray([1], dtype=np.int64), np.asarray([1], dtype=np.int64))
        assert pack_codes(blocks, (2**40, 2**40)) is None

    def test_add_counts_accumulates_into_existing_keys(self):
        target = {3: 1}
        add_counts(target, [3, 5], [2, 4])
        assert target == {3: 3, 5: 4}

    def test_block_columns_slices_ranges_and_gathers_indices(self):
        np = kernels.numpy_module()
        view = np.asarray([10, 11, 12, 13, 14], dtype=np.int64)
        (sliced,) = block_columns(range(1, 4), view)
        assert sliced.tolist() == [11, 12, 13]
        (gathered,) = block_columns(array("q", [0, 4]), view)
        assert gathered.tolist() == [10, 14]

    def test_matched_rows_maps_back_to_global_indices(self):
        np = kernels.numpy_module()
        mask = np.asarray([False, True, False, True])
        assert matched_rows(range(10, 14), mask).tolist() == [11, 13]
        assert matched_rows(array("q", [5, 8, 9, 20]), mask).tolist() == [8, 20]
        assert matched_rows(range(0, 8, 2), mask[:4]).tolist() == [2, 6]


class TestGatherAndBlocks:
    def test_gather_range_slices_and_index_array_gathers(self):
        column = array("i", [5, 6, 7, 8, 9])
        assert list(gather(column, range(1, 4))) == [6, 7, 8]
        rows = array("q", [0, 2, 4])
        gathered = gather(column, rows)
        assert list(gathered) == [5, 7, 9]

    @numpy_only
    def test_gather_index_array_returns_stdlib_array_under_numpy(self):
        column = array("d", [0.5, 1.5, 2.5])
        with kernels.use_backend(kernels.NUMPY):
            gathered = gather(column, array("q", [2, 0]))
        assert isinstance(gathered, array)
        assert gathered.typecode == "d"
        assert list(gathered) == [2.5, 0.5]

    def test_gather_python_backend_stays_pure(self):
        column = array("i", [5, 6, 7])
        with kernels.use_backend(kernels.PYTHON):
            gathered = gather(column, [2, 0])
        assert gathered == [7, 5]

    def test_gather_object_columns_use_map(self):
        ids = ["a", "b", "c", "d"]
        assert gather(ids, array("q", [3, 1])) == ["d", "b"]

    @numpy_only
    def test_scan_blocks_yields_index_ndarrays_under_numpy(self):
        np = kernels.numpy_module()
        rows = array("q", range(10))
        with kernels.use_backend(kernels.NUMPY):
            blocks = list(scan_blocks(rows, 4))
        assert [type(block) for block in blocks] == [np.ndarray] * 3
        assert [block.tolist() for block in blocks] == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9],
        ]

    def test_scan_blocks_python_backend_slices_arrays(self):
        rows = array("q", range(5))
        with kernels.use_backend(kernels.PYTHON):
            blocks = list(scan_blocks(rows, 2))
        assert all(isinstance(block, array) for block in blocks)
        assert [list(block) for block in blocks] == [[0, 1], [2, 3], [4]]
        range_blocks = list(scan_blocks(range(5), 3))
        assert range_blocks == [range(0, 3), range(3, 5)]
