"""Tests for the WhaleEx wash-trading detector (§4.1)."""

import pytest

from repro.common.records import ChainId, TransactionRecord
from repro.analysis.washtrading import (
    TradeObservation,
    analyze_wash_trading,
    extract_trades,
    net_balance_changes,
    relative_balance_change,
)


def trade_record(buyer, seller, symbol="USDT", amount=10.0, contract="whaleextrust"):
    return TransactionRecord(
        chain=ChainId.EOS,
        transaction_id=f"{buyer}-{seller}-{symbol}",
        block_height=1,
        timestamp=0.0,
        type="verifytrade2",
        sender=buyer,
        receiver=contract,
        contract=contract,
        amount=amount,
        currency=symbol,
        metadata={"buyer": buyer, "seller": seller, "self_trade": buyer == seller},
    )


class TestExtraction:
    def test_extracts_only_dex_trades(self):
        records = [
            trade_record("a", "a"),
            TransactionRecord(
                chain=ChainId.EOS, transaction_id="x", block_height=1, timestamp=0.0,
                type="transfer", sender="a", receiver="eosio.token", contract="eosio.token",
            ),
        ]
        trades = extract_trades(records)
        assert len(trades) == 1
        assert trades[0].is_self_trade

    def test_non_eos_records_ignored(self):
        record = TransactionRecord(
            chain=ChainId.XRP, transaction_id="x", block_height=1, timestamp=0.0,
            type="verifytrade2", sender="a", receiver="whaleextrust",
        )
        assert extract_trades([record]) == []


class TestAnalysis:
    def test_detects_concentrated_self_trading(self):
        records = [trade_record("washer", "washer") for _ in range(90)]
        records += [trade_record("alice", "bob") for _ in range(10)]
        report = analyze_wash_trading(records, top_n=1)
        assert report.trade_count == 100
        assert report.top_accounts == ("washer",)
        assert report.top_accounts_trade_share == pytest.approx(0.9)
        assert report.self_trade_share_by_account["washer"] == pytest.approx(1.0)
        assert report.is_wash_trading_suspected()

    def test_honest_market_not_flagged(self):
        records = [trade_record(f"buyer{i}", f"seller{i}") for i in range(50)]
        report = analyze_wash_trading(records, top_n=5)
        assert report.self_trade_share_overall == 0.0
        assert not report.is_wash_trading_suspected()

    def test_empty_stream(self):
        report = analyze_wash_trading([])
        assert report.trade_count == 0
        assert not report.is_wash_trading_suspected()

    def test_generated_whaleex_traffic_is_flagged(self, eos_records, scenario):
        report = analyze_wash_trading(eos_records)
        assert report.trade_count > 0
        # The top five accounts carry most of the trades and mostly self-trade,
        # as §4.1 reports (>70% of trades, >85% self-trades).
        assert report.top_accounts_trade_share > 0.5
        min_self_share = min(report.self_trade_share_by_account.values())
        assert min_self_share > scenario.eos.wash_trade_self_fraction - 0.25
        assert report.is_wash_trading_suspected()

    def test_net_balance_change_near_zero_for_wash_traders(self, eos_records):
        report = analyze_wash_trading(eos_records)
        trades = extract_trades(eos_records)
        near_zero = 0
        for account, changes in report.net_balance_change_by_account.items():
            gross = sum(
                trade.amount for trade in trades if account in (trade.buyer, trade.seller)
            )
            net = sum(abs(value) for value in changes.values())
            if gross > 0 and relative_balance_change(net, gross) < 0.35:
                near_zero += 1
        # Self-trading dominates, so the aggregate net change stays small for
        # most of the top accounts even at the reduced test scale.
        assert near_zero >= max(1, len(report.top_accounts) // 2 + 1)


class TestBalanceChanges:
    def test_self_trades_move_nothing(self):
        trades = [TradeObservation("a", "a", "USDT", 100.0, 0.0)]
        changes = net_balance_changes(trades, ["a"])
        assert changes["a"] == {}

    def test_genuine_trades_net_out(self):
        trades = [
            TradeObservation("a", "b", "USDT", 10.0, 0.0),
            TradeObservation("b", "a", "USDT", 10.0, 1.0),
        ]
        changes = net_balance_changes(trades, ["a", "b"])
        assert changes["a"]["USDT"] == pytest.approx(0.0)
        assert changes["b"]["USDT"] == pytest.approx(0.0)

    def test_relative_balance_change(self):
        assert relative_balance_change(1.0, 200.0) == pytest.approx(0.005)
        assert relative_balance_change(5.0, 0.0) == 0.0
