"""Tests for the v2 binary columnar chunk format."""

import json
import zlib

import pytest

from repro.collection import chunkformat
from repro.collection.chunkformat import (
    MAGIC,
    ChunkFormatError,
    decode_chunk,
    encode_chunk,
    is_v2_chunk,
)
from repro.collection.store import (
    CHUNK_FORMAT_V1,
    CHUNK_FORMAT_V2,
    FrameStore,
    resolve_chunk_format,
)
from repro.common import kernels
from repro.common.columns import LazyMetadata, TxFrame
from repro.common.errors import CollectionError
from repro.common.records import ChainId, TransactionRecord


def _records(count, chain=ChainId.EOS, start_height=0):
    return [
        TransactionRecord(
            chain=chain,
            transaction_id=f"tx-{chain.value}-{i}",
            block_height=start_height + i,
            timestamp=float(start_height + i),
            type="transfer",
            sender=f"user{i % 5}",
            receiver="eosio.token",
            contract="eosio.token",
            amount=float(i) * 1.5,
            currency="EOS",
            metadata={"memo": f"note {i}", "inline": True} if i % 2 else {},
        )
        for i in range(count)
    ]


def _unicode_records(count=10):
    return [
        TransactionRecord(
            chain=ChainId.TEZOS,
            transaction_id=f"op-ü{i}-äπ💸",
            block_height=i,
            timestamp=float(i),
            type="transaction",
            sender=f"tz1-ñ{i}",
            receiver="tz1-受取人",
            contract="",
            amount=1.0,
            currency="XTZ",
            metadata={"memo": f"мемо-{i}-✓", "category": "manager"},
        )
        for i in range(count)
    ]


def _roundtrip(frame, arrays=True):
    blob, raw = encode_chunk(frame.to_payload(arrays=arrays))
    return decode_chunk(blob), blob, raw


class TestRoundTrip:
    def test_records_identical_after_round_trip(self):
        records = _records(40)
        frame = TxFrame.from_records(records)
        payload, _, _ = _roundtrip(frame)
        assert list(TxFrame.from_payload(payload)) == records

    def test_round_trip_from_list_payload(self):
        records = _records(12)
        frame = TxFrame.from_records(records)
        payload, _, _ = _roundtrip(frame, arrays=False)
        assert list(TxFrame.from_payload(payload)) == records

    def test_unicode_ids_and_memos_survive(self):
        records = _unicode_records()
        frame = TxFrame.from_records(records)
        payload, _, _ = _roundtrip(frame)
        assert list(TxFrame.from_payload(payload)) == records

    def test_ragged_multi_chain_frame(self):
        records = (
            _records(7, ChainId.EOS)
            + _records(3, ChainId.XRP, start_height=50)
            + _records(11, ChainId.TEZOS, start_height=100)
        )
        frame = TxFrame.from_records(records)
        payload, _, _ = _roundtrip(frame)
        assert list(TxFrame.from_payload(payload)) == records

    def test_empty_frame(self):
        payload, _, _ = _roundtrip(TxFrame())
        assert payload["rows"] == 0
        assert len(TxFrame.from_payload(payload)) == 0

    def test_none_pool_entries_survive(self):
        """Pools intern ``None`` for optional fields (error_code, contract)."""
        record = TransactionRecord(
            chain=ChainId.XRP,
            transaction_id="t0",
            block_height=1,
            timestamp=1.0,
            type="Payment",
            sender="rAlice",
            receiver="rBob",
            contract=None,
            amount=5.0,
            currency="XRP",
            error_code=None,
        )
        frame = TxFrame.from_records([record])
        payload, _, _ = _roundtrip(frame)
        assert list(TxFrame.from_payload(payload)) == [record]

    def test_chain_stats_header_round_trips(self):
        frame = TxFrame.from_records(_records(9))
        stats = ({"eos": [0, 8]}, {"eos": [0.0, 8.0]}, {"eos": 9})
        blob, _ = encode_chunk(frame.to_payload(arrays=True), chain_stats=stats)
        assert decode_chunk(blob)["chain_stats"] == stats

    def test_encode_is_deterministic(self):
        frame = TxFrame.from_records(_records(30))
        first, _ = encode_chunk(frame.to_payload(arrays=True))
        second, _ = encode_chunk(frame.to_payload(arrays=True))
        assert first == second

    def test_raw_accounting_counts_uncompressed_footprint(self):
        frame = TxFrame.from_records(_records(200))
        _, blob, raw = _roundtrip(frame)
        # Repetitive columns compress, so the uncompressed footprint the
        # store reports must exceed what landed in the blob body.
        assert raw > len(blob) - chunkformat._HEADER_LEN


class TestNumpyDecode:
    def test_numpy_columns_are_zero_copy_ndarrays(self):
        np = pytest.importorskip("numpy")
        frame = TxFrame.from_records(_records(25))
        with kernels.use_backend(kernels.NUMPY):
            payload, _, _ = _roundtrip(frame)
            column = payload["columns"]["timestamp"]
        assert isinstance(column, np.ndarray)
        assert not column.flags.writeable  # aliases the decoded bytes
        assert column.tolist() == list(frame.timestamp)

    def test_python_columns_are_arrays(self):
        from array import array

        frame = TxFrame.from_records(_records(25))
        with kernels.use_backend(kernels.PYTHON):
            payload, _, _ = _roundtrip(frame)
        assert isinstance(payload["columns"]["timestamp"], array)


class TestLazyMetadata:
    def test_metadata_decodes_lazily(self):
        frame = TxFrame.from_records(_records(20))
        payload, _, _ = _roundtrip(frame)
        metadata = payload["metadata"]
        assert isinstance(metadata, LazyMetadata)
        assert not metadata.loaded
        assert len(metadata) == 20
        assert metadata[1] == {"memo": "note 1", "inline": True}
        assert metadata.loaded

    def test_frame_defers_parse_until_metadata_read(self):
        frame = TxFrame.from_records(_records(20))
        payload, _, _ = _roundtrip(frame)
        block = payload["metadata"]
        rebuilt = TxFrame.from_payload(payload)
        assert not block.loaded  # numeric load did not force the parse
        assert rebuilt.metadata[1] == {"memo": "note 1", "inline": True}
        assert block.loaded

    def test_empty_metadata_stored_as_none(self):
        frame = TxFrame.from_records(_records(4))
        payload, _, _ = _roundtrip(frame)
        assert payload["metadata"][0] is None
        assert payload["metadata"][1] is not None


class TestCorruption:
    def _blob(self):
        frame = TxFrame.from_records(_records(30))
        blob, _ = encode_chunk(frame.to_payload(arrays=True))
        return blob

    def test_bit_flip_fails_checksum(self):
        blob = bytearray(self._blob())
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(ChunkFormatError, match="checksum"):
            decode_chunk(bytes(blob))

    def test_truncation_fails_checksum(self):
        blob = self._blob()
        with pytest.raises(ChunkFormatError):
            decode_chunk(blob[:-5])

    def test_foreign_blob_rejected(self):
        with pytest.raises(ChunkFormatError, match="v2 header"):
            decode_chunk(b"\x1f\x8b not a v2 chunk at all")

    def test_valid_checksum_wrong_document_rejected(self):
        body = b"\x00not-a-chunk-document"
        blob = MAGIC + chunkformat._CHECKSUM.pack(zlib.adler32(body)) + body
        with pytest.raises(ChunkFormatError):
            decode_chunk(blob)

    def test_is_v2_chunk_dispatch(self):
        assert is_v2_chunk(self._blob())
        assert not is_v2_chunk(b"\x1f\x8b\x08\x00")
        assert not is_v2_chunk(b"")


class TestStoreIntegration:
    def test_mixed_format_store_reads_both(self, tmp_path):
        records = _records(20)
        v1 = FrameStore(
            chunk_rows=10, directory=str(tmp_path), chunk_format=CHUNK_FORMAT_V1
        )
        v1.add_frame(TxFrame.from_records(records))
        # Reopen with the v2 default and append more: old chunks stay v1.
        reopened = FrameStore.open(str(tmp_path))
        assert reopened.chunk_format == CHUNK_FORMAT_V2
        more = _records(10, start_height=100)
        reopened.add_records(iter(more))
        reopened.flush()
        assert sorted(p.suffix for p in tmp_path.glob("frame-chunk-*.bin")) == [".bin"]
        assert len(list(tmp_path.glob("frame-chunk-*.json.gz"))) == 2
        assert list(FrameStore.open(str(tmp_path)).to_frame()) == records + more

    def test_corrupt_v2_chunk_degrades_like_corrupt_checkpoint(self, tmp_path):
        store = FrameStore(chunk_rows=10, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(_records(10)))
        path = next(tmp_path.glob("frame-chunk-*.bin"))
        blob = bytearray(path.read_bytes())
        blob[-4] ^= 0x01
        path.write_bytes(bytes(blob))
        # Same-size corruption passes the manifest size check; the decode
        # surfaces a CollectionError, not a crash or a silent mis-decode.
        reopened = FrameStore.open(str(tmp_path))
        with pytest.raises(CollectionError, match="corrupt"):
            reopened.to_frame()

    def test_migrate_store_round_trips(self, tmp_path):
        records = _records(25)
        store = FrameStore(
            chunk_rows=10, directory=str(tmp_path), chunk_format=CHUNK_FORMAT_V1
        )
        store.add_frame(TxFrame.from_records(records))
        migrated = store.migrate_format(CHUNK_FORMAT_V2)
        assert migrated == 3
        assert not list(tmp_path.glob("frame-chunk-*.json.gz"))
        assert list(FrameStore.open(str(tmp_path)).to_frame()) == records
        # And back again: v1 rewrite restores gzip-JSON chunks.
        back = FrameStore.open(str(tmp_path))
        assert back.migrate_format(CHUNK_FORMAT_V1) == 3
        assert not list(tmp_path.glob("frame-chunk-*.bin"))
        assert list(FrameStore.open(str(tmp_path)).to_frame()) == records

    def test_migrate_is_a_noop_on_matching_format(self, tmp_path):
        store = FrameStore(chunk_rows=10, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(_records(10)))
        assert store.migrate_format(CHUNK_FORMAT_V2) == 0

    def test_env_var_selects_write_format(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_FORMAT", "v1")
        assert resolve_chunk_format() == CHUNK_FORMAT_V1
        store = FrameStore(chunk_rows=10, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(_records(10)))
        assert len(list(tmp_path.glob("frame-chunk-*.json.gz"))) == 1
        monkeypatch.setenv("REPRO_CHUNK_FORMAT", "bogus")
        with pytest.raises(CollectionError):
            resolve_chunk_format()

    def test_explicit_format_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_FORMAT", "v1")
        assert resolve_chunk_format(CHUNK_FORMAT_V2) == CHUNK_FORMAT_V2

    def test_byte_accounting_matches_disk(self, tmp_path):
        store = FrameStore(chunk_rows=10, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(_records(20)))
        stats = store.compression_stats()
        on_disk = sum(
            path.stat().st_size for path in tmp_path.glob("frame-chunk-*.bin")
        )
        assert stats.compressed_bytes == on_disk
        assert stats.raw_bytes > stats.compressed_bytes
