"""Tests for the reverse-chronological block crawler."""

import pytest

from repro.common.clock import SimulationClock
from repro.common.errors import CollectionError
from repro.common.rng import DeterministicRng
from repro.collection.crawler import BlockCrawler, CrawlCheckpoint
from repro.collection.endpoints import EndpointPool
from repro.collection.store import BlockStore
from repro.eos.actions import make_transfer
from repro.eos.chain import EosChain, EosChainConfig, EosTransaction
from repro.eos.contracts import TokenContract
from repro.eos.rpc import EndpointProfile, EosRpcEndpoint


def build_chain(block_count=10, start_height=100):
    chain = EosChain(EosChainConfig(chain_start=1_000.0, start_height=start_height))
    chain.deploy_contract(TokenContract("eosio.token", symbol="EOS"))
    chain.accounts.create("alice", initial_balance=1_000.0)
    chain.accounts.create("bob")
    chain.resources.stake_cpu("alice", 100.0)
    for index in range(block_count):
        chain.produce_block(
            [
                EosTransaction(
                    transaction_id=f"tx{index}",
                    actions=(make_transfer("eosio.token", "alice", "bob", 0.1, "EOS"),),
                )
            ]
        )
    return chain


def build_pool(chain, profiles=None):
    profiles = profiles or [EndpointProfile(name="e1"), EndpointProfile(name="e2")]
    endpoints = [
        EosRpcEndpoint(chain, profile=profile, rng=DeterministicRng(index))
        for index, profile in enumerate(profiles)
    ]
    return EndpointPool(endpoints)


class TestCrawlRange:
    def test_fetches_every_block_in_range(self):
        chain = build_chain(10)
        crawler = BlockCrawler(build_pool(chain))
        report = crawler.crawl_range(highest=109, lowest=100)
        assert report.complete
        assert report.blocks_fetched == 10
        assert crawler.store.heights() == list(range(100, 110))
        assert report.transactions_fetched == 10

    def test_partial_range(self):
        chain = build_chain(10)
        crawler = BlockCrawler(build_pool(chain))
        report = crawler.crawl_range(highest=105, lowest=103)
        assert crawler.store.heights() == [103, 104, 105]
        assert report.complete

    def test_invalid_range(self):
        chain = build_chain(3)
        crawler = BlockCrawler(build_pool(chain))
        with pytest.raises(CollectionError):
            crawler.crawl_range(highest=100, lowest=200)

    def test_resume_from_checkpoint_skips_fetched_blocks(self):
        chain = build_chain(10)
        store = BlockStore()
        crawler = BlockCrawler(build_pool(chain), store=store)
        crawler.crawl_range(highest=109, lowest=105)
        requests_before = crawler.requests_issued
        checkpoint = CrawlCheckpoint(next_height=109, lowest_target=100)
        crawler.crawl_range(highest=109, lowest=100, checkpoint=checkpoint)
        assert store.heights() == list(range(100, 110))
        # Already-stored blocks are skipped without extra requests.
        assert crawler.requests_issued - requests_before == 5

    def test_missing_blocks_reported_not_fatal(self):
        chain = build_chain(5, start_height=100)
        crawler = BlockCrawler(build_pool(chain), max_attempts_per_block=2)
        report = crawler.crawl_range(highest=106, lowest=100)
        assert not report.complete
        assert set(report.failed_blocks) == {105, 106}
        assert crawler.store.heights() == list(range(100, 105))


class TestRateLimitsAndFailures:
    def test_rate_limited_endpoints_trigger_backoff(self):
        chain = build_chain(8)
        pool = build_pool(
            chain,
            profiles=[
                EndpointProfile(name="tight1", requests_per_second=2.0, burst=2.0),
                EndpointProfile(name="tight2", requests_per_second=2.0, burst=2.0),
            ],
        )
        crawler = BlockCrawler(pool, clock=SimulationClock(0.0))
        report = crawler.crawl_range(highest=107, lowest=100)
        assert report.complete
        assert report.rate_limit_hits > 0
        assert report.elapsed_virtual_seconds > 0.0

    def test_flaky_endpoint_retried_on_other_endpoint(self):
        chain = build_chain(6)
        pool = build_pool(
            chain,
            profiles=[
                EndpointProfile(name="flaky", failure_rate=0.8),
                EndpointProfile(name="stable"),
            ],
        )
        crawler = BlockCrawler(pool)
        report = crawler.crawl_range(highest=105, lowest=100)
        assert report.complete
        assert crawler.store.block_count == 6

    def test_discover_head(self):
        chain = build_chain(4)
        crawler = BlockCrawler(build_pool(chain))
        assert crawler.discover_head() == chain.head_height


class TestCrawlWindow:
    def test_stops_at_window_start(self):
        chain = build_chain(10)
        window_start = chain.block_at(105).timestamp
        crawler = BlockCrawler(build_pool(chain))
        report = crawler.crawl_window(window_start)
        assert crawler.store.heights() == list(range(105, 110))
        assert report.blocks_fetched == 5


class TestCheckpointPoolState:
    """A resumed crawl keeps endpoint weighting and the spent retry budget."""

    def test_checkpoint_carries_pool_health_and_cursor(self):
        chain = build_chain(6)
        crawler = BlockCrawler(build_pool(chain))
        checkpoint = CrawlCheckpoint(next_height=105, lowest_target=100)
        crawler.crawl_range(highest=105, lowest=100, checkpoint=checkpoint)
        assert checkpoint.finished
        assert checkpoint.pool_health is not None
        total_successes = sum(
            counts[0] for counts in checkpoint.pool_health.values()
        )
        assert total_successes == 6
        assert checkpoint.inflight_attempts == 0

    def test_checkpoint_round_trips_through_json(self):
        checkpoint = CrawlCheckpoint(
            next_height=42,
            lowest_target=10,
            pool_health={"e1": [3, 1, 2]},
            pool_cursor=5,
            inflight_attempts=2,
        )
        import json

        restored = CrawlCheckpoint.from_dict(json.loads(json.dumps(checkpoint.to_dict())))
        assert restored == checkpoint

    def test_resumed_crawl_restores_endpoint_demotion(self):
        """The endpoint that caused the interruption stays demoted on resume."""
        chain = build_chain(6)
        pool = build_pool(
            chain,
            profiles=[
                EndpointProfile(name="bad", failure_rate=0.99),
                EndpointProfile(name="good"),
            ],
        )
        crawler = BlockCrawler(pool)
        checkpoint = CrawlCheckpoint(next_height=105, lowest_target=103)
        crawler.crawl_range(highest=105, lowest=103, checkpoint=checkpoint)
        assert checkpoint.pool_health["bad"][1] > 0  # failures recorded
        # "New process": a fresh pool + crawler resume from the persisted dict.
        fresh_pool = build_pool(
            chain,
            profiles=[
                EndpointProfile(name="bad", failure_rate=0.99),
                EndpointProfile(name="good"),
            ],
        )
        restored = CrawlCheckpoint.from_dict(checkpoint.to_dict())
        resumed = BlockCrawler(fresh_pool)
        resumed.crawl_range(highest=105, lowest=100, checkpoint=restored)
        # The restored health must weight "bad" below "good" immediately:
        # with the recorded failures its weight drops under the rotation
        # threshold, so the resumed crawl prefers the good endpoint.
        assert (
            fresh_pool.health("bad").weight < fresh_pool.health("good").weight
        )

    def test_inflight_retry_budget_not_refreshed_on_resume(self):
        """A block that exhausted its budget is not hammered again."""
        chain = build_chain(3, start_height=100)
        crawler = BlockCrawler(build_pool(chain), max_attempts_per_block=4)
        # Height 200 does not exist: fetching burns the whole budget and the
        # checkpoint records the spent attempts along the way.
        checkpoint = CrawlCheckpoint(next_height=200, lowest_target=200)
        with pytest.raises(CollectionError):
            crawler.fetch_block(200, checkpoint=checkpoint)
        assert checkpoint.inflight_attempts == 4
        # Resume in a "new process": the interrupted block's budget arrives
        # already spent, so it is abandoned without issuing new requests.
        fresh = BlockCrawler(build_pool(chain), max_attempts_per_block=4)
        restored = CrawlCheckpoint.from_dict(checkpoint.to_dict())
        report = fresh.crawl_range(highest=200, lowest=200, checkpoint=restored)
        assert report.failed_blocks == [200]
        assert fresh.requests_issued == 0

    def test_partially_spent_budget_resumes_with_remainder(self):
        chain = build_chain(3, start_height=100)
        fresh = BlockCrawler(build_pool(chain), max_attempts_per_block=5)
        checkpoint = CrawlCheckpoint(
            next_height=102, lowest_target=100, inflight_attempts=3
        )
        report = fresh.crawl_range(highest=102, lowest=100, checkpoint=checkpoint)
        # Height 102 exists, so the first (remaining) attempt succeeds and
        # the rest of the range crawls normally with full budgets.
        assert report.complete
        assert fresh.store.heights() == [100, 101, 102]
