"""Tests for dataset characterisation (Figure 2)."""

import pytest

from repro.common.errors import AnalysisError
from repro.common.records import ChainId
from repro.collection.dataset import characterize_dataset
from repro.collection.store import BlockStore

from tests.collection.test_store import make_block


class TestCharacterization:
    def _store(self, heights):
        store = BlockStore(chunk_size=4)
        for height in heights:
            store.add(make_block(height, tx_count=3))
        store.flush()
        return store

    def test_reports_figure2_columns(self):
        store = self._store(range(100, 200))
        characterization = characterize_dataset(store, scale_factor=0.01)
        row = characterization.to_row()
        assert row["chain"] == "eos"
        assert row["first_block"] == 100
        assert row["last_block"] == 199
        assert row["block_count"] == 100
        assert row["transaction_count"] == 300
        assert row["storage_gb"] > 0.0
        assert characterization.estimated_full_scale_gigabytes == pytest.approx(
            characterization.compressed_gigabytes * 100, rel=1e-9
        )

    def test_tps_derived_from_duration(self):
        store = self._store(range(0, 100))
        characterization = characterize_dataset(store)
        # Timestamps are one second apart: 300 transactions over 99 seconds.
        assert characterization.transactions_per_second == pytest.approx(300 / 99.0)
        assert characterization.blocks_per_day == pytest.approx(100 * 86_400 / 99.0)

    def test_dates_rendered(self):
        store = self._store([1_000_000, 1_086_400])
        characterization = characterize_dataset(store)
        assert characterization.sample_start == "1970-01-12"
        assert characterization.duration_seconds == pytest.approx(86_400.0)

    def test_chain_override(self):
        store = self._store(range(3))
        characterization = characterize_dataset(store, chain=ChainId.XRP)
        assert characterization.chain is ChainId.XRP

    def test_empty_store_rejected(self):
        with pytest.raises(AnalysisError):
            characterize_dataset(BlockStore())

    def test_zero_duration_single_block(self):
        store = BlockStore()
        store.add(make_block(5))
        store.flush()
        characterization = characterize_dataset(store)
        assert characterization.transactions_per_second == 0.0


class TestFrameStoreCharacterization:
    """Figure 2 computed straight from the columnar store (no block records)."""

    def _frame_store(self, heights, tx_count=3):
        from repro.collection.store import FrameSink, FrameStore

        store = FrameStore(chunk_rows=50)
        sink = FrameSink(store, chain=ChainId.EOS)
        for height in heights:
            sink.add(make_block(height, tx_count=tx_count))
        sink.flush()
        return store

    def test_matches_block_store_characterization(self):
        heights = range(100, 160)
        block_store = BlockStore(chunk_size=8)
        for height in heights:
            block_store.add(make_block(height, tx_count=3))
        block_store.flush()
        from_blocks = characterize_dataset(block_store, scale_factor=0.5)
        from_frames = characterize_dataset(self._frame_store(heights), scale_factor=0.5)
        for field in (
            "chain",
            "sample_start",
            "sample_end",
            "first_block",
            "last_block",
            "block_count",
            "transaction_count",
            "action_count",
            "duration_seconds",
        ):
            assert getattr(from_frames, field) == getattr(from_blocks, field), field
        assert from_frames.compressed_gigabytes > 0.0
        assert from_frames.transactions_per_second == pytest.approx(
            from_blocks.transactions_per_second
        )

    def test_multi_chain_store_requires_chain(self):
        from repro.collection.store import FrameStore
        from repro.common.columns import TxFrame
        from repro.common.records import TransactionRecord

        records = []
        for chain in (ChainId.EOS, ChainId.XRP):
            records.append(
                TransactionRecord(
                    chain=chain,
                    transaction_id=f"{chain.value}-t",
                    block_height=7,
                    timestamp=7.0,
                    type="transfer",
                    sender="alice",
                    receiver="bob",
                )
            )
        store = FrameStore(chunk_rows=10)
        store.add_frame(TxFrame.from_records(records))
        with pytest.raises(AnalysisError):
            characterize_dataset(store)
        row = characterize_dataset(store, chain=ChainId.XRP)
        assert row.chain is ChainId.XRP
        assert row.action_count == 1

    def test_empty_frame_store_rejected(self):
        from repro.collection.store import FrameStore

        with pytest.raises(AnalysisError):
            characterize_dataset(FrameStore())
