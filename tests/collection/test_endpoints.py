"""Tests for endpoint shortlisting and the endpoint pool.

Also exercises the Tezos and XRP RPC endpoints through the chain-agnostic
interface the crawler uses.
"""

import pytest

from repro.common.errors import CollectionError, RateLimitExceeded, RpcError
from repro.common.rng import DeterministicRng
from repro.collection.endpoints import (
    EndpointPool,
    probe_endpoint,
    shortlist_endpoints,
)
from repro.eos.chain import EosChain
from repro.eos.rpc import EndpointProfile, EosRpcEndpoint
from repro.tezos.chain import TezosChain
from repro.tezos.baking import ROLL_SIZE_XTZ
from repro.tezos.rpc import TezosRpcEndpoint
from repro.xrp.ledger import XrpLedger
from repro.xrp.rpc import XrpRpcEndpoint


def make_eos_endpoint(name, rps=100.0, failure_rate=0.0, latency=0.05):
    chain = EosChain()
    return EosRpcEndpoint(
        chain,
        profile=EndpointProfile(
            name=name,
            requests_per_second=rps,
            burst=rps,
            base_latency=latency,
            failure_rate=failure_rate,
        ),
        rng=DeterministicRng(1),
    )


class TestProbing:
    def test_probe_healthy_endpoint(self):
        probe = probe_endpoint(make_eos_endpoint("good"), now=0.0)
        assert probe.reachable
        assert probe.successful_probes == 5
        assert probe.score > 0.0

    def test_probe_rate_limited_endpoint(self):
        probe = probe_endpoint(make_eos_endpoint("limited", rps=1.0), now=0.0)
        assert probe.reachable
        assert probe.throttled_probes > 0

    def test_probe_flaky_endpoint_scores_lower(self):
        healthy = probe_endpoint(make_eos_endpoint("good"), now=0.0)
        flaky = probe_endpoint(make_eos_endpoint("flaky", failure_rate=0.9), now=0.0)
        assert flaky.score < healthy.score


class TestShortlisting:
    def test_keeps_the_best_endpoints(self):
        endpoints = (
            [make_eos_endpoint(f"fast{i}", latency=0.02) for i in range(6)]
            + [make_eos_endpoint(f"slow{i}", latency=2.0) for i in range(6)]
            + [make_eos_endpoint(f"limited{i}", rps=0.5) for i in range(20)]
        )
        shortlisted = shortlist_endpoints(endpoints, now=0.0, max_selected=6)
        assert len(shortlisted) == 6
        assert all(endpoint.name.startswith("fast") for endpoint in shortlisted)

    def test_requires_at_least_one_endpoint(self):
        with pytest.raises(CollectionError):
            shortlist_endpoints([], now=0.0)

    def test_all_unusable_raises(self):
        # failure_rate close to 1 makes every probe fail deterministically.
        endpoints = [make_eos_endpoint("dead", failure_rate=0.999)]
        with pytest.raises(CollectionError):
            shortlist_endpoints(endpoints, now=0.0)


class TestEndpointPool:
    def test_round_robin_over_healthy_endpoints(self):
        endpoints = [make_eos_endpoint(f"e{i}") for i in range(3)]
        pool = EndpointPool(endpoints)
        picked = {pool.next_endpoint().name for _ in range(6)}
        assert len(picked) >= 2

    def test_failures_demote_endpoints(self):
        endpoints = [make_eos_endpoint("good"), make_eos_endpoint("bad")]
        pool = EndpointPool(endpoints)
        bad = endpoints[1]
        for _ in range(5):
            pool.record_failure(bad)
        pool.record_success(endpoints[0])
        picks = [pool.next_endpoint().name for _ in range(10)]
        assert picks.count("bad") == 0

    def test_empty_pool_rejected(self):
        with pytest.raises(CollectionError):
            EndpointPool([])

    def test_health_accounting(self):
        endpoints = [make_eos_endpoint("one")]
        pool = EndpointPool(endpoints)
        pool.record_success(endpoints[0])
        pool.record_throttle(endpoints[0])
        health = pool.health("one")
        assert health.successes == 1
        assert health.throttles == 1

    def test_retry_after_holds_endpoint_out(self):
        endpoints = [make_eos_endpoint("held"), make_eos_endpoint("free")]
        pool = EndpointPool(endpoints)
        pool.record_throttle(endpoints[0], retry_after=30.0, now=100.0)
        picks = {pool.next_endpoint(now=110.0).name for _ in range(6)}
        assert picks == {"free"}

    def test_retry_after_hold_expires(self):
        endpoints = [make_eos_endpoint("held"), make_eos_endpoint("free")]
        pool = EndpointPool(endpoints)
        pool.record_throttle(endpoints[0], retry_after=30.0, now=100.0)
        pool.record_success(endpoints[0])
        pool.record_success(endpoints[0])
        picks = {pool.next_endpoint(now=131.0).name for _ in range(6)}
        assert "held" in picks

    def test_all_held_falls_back_to_full_pool(self):
        endpoints = [make_eos_endpoint("a"), make_eos_endpoint("b")]
        pool = EndpointPool(endpoints)
        for endpoint in endpoints:
            pool.record_throttle(endpoint, retry_after=60.0, now=0.0)
        # Refusing to pick anything would wedge the crawler; a fully held
        # pool degrades to ignoring the holds.
        assert pool.next_endpoint(now=10.0).name in {"a", "b"}

    def test_without_now_holds_are_ignored(self):
        endpoints = [make_eos_endpoint("held")]
        pool = EndpointPool(endpoints)
        pool.record_throttle(endpoints[0], retry_after=60.0, now=0.0)
        assert pool.next_endpoint().name == "held"

    def test_retry_after_survives_snapshot_roundtrip(self):
        endpoints = [make_eos_endpoint("held"), make_eos_endpoint("free")]
        pool = EndpointPool(endpoints)
        pool.record_throttle(endpoints[0], retry_after=45.0, now=5.0)
        state = pool.snapshot()
        restored = EndpointPool([make_eos_endpoint("held"), make_eos_endpoint("free")])
        restored.restore(state["health"], state["cursor"])
        assert restored.health("held").retry_after_until == 50.0
        picks = {restored.next_endpoint(now=20.0).name for _ in range(6)}
        assert picks == {"free"}

    def test_restore_accepts_legacy_three_element_health(self):
        pool = EndpointPool([make_eos_endpoint("one")])
        pool.restore({"one": [3, 1, 2]}, 0)
        health = pool.health("one")
        assert (health.successes, health.failures, health.throttles) == (3, 1, 2)
        assert health.retry_after_until == 0.0


class TestChainEndpoints:
    def test_tezos_endpoint_serves_blocks(self):
        chain = TezosChain()
        chain.accounts.create_implicit(balance=5 * ROLL_SIZE_XTZ)
        chain.bake_block([])
        endpoint = TezosRpcEndpoint(chain)
        assert endpoint.chain_name == "tezos"
        head = endpoint.head_height(0.0)
        block = endpoint.fetch_block(head, 0.0)
        assert block.height == head
        with pytest.raises(RpcError):
            endpoint.fetch_block(head + 10, 0.0)

    def test_xrp_endpoint_serves_blocks_and_metadata(self):
        ledger = XrpLedger()
        parent = ledger.accounts.create_genesis(balance=1_000.0, username="Binance")
        child = ledger.accounts.activate(parent.address, initial_xrp=50.0)
        ledger.close_ledger([])
        endpoint = XrpRpcEndpoint(ledger)
        assert endpoint.chain_name == "xrp"
        head = endpoint.head_height(0.0)
        block = endpoint.fetch_block(head, 0.0)
        assert block.height == head
        info = endpoint.account_info(child.address, 0.0)
        assert info["parent"] == parent.address
        assert endpoint.account_info("rUnknownAccount", 0.0)["username"] == ""
        assert endpoint.exchange_rate("BTC", "rNoTrades", 0.0) == 0.0

    def test_xrp_endpoint_rate_limit(self):
        ledger = XrpLedger()
        endpoint = XrpRpcEndpoint(
            ledger, profile=EndpointProfile(name="tight", requests_per_second=1.0, burst=1.0)
        )
        endpoint.head_height(0.0)
        with pytest.raises(RateLimitExceeded):
            endpoint.head_height(0.0)
