"""Tests for the frame-native chunked store."""

import json
import os

import pytest

from repro.common.columns import TxFrame
from repro.common.errors import CollectionError
from repro.common.records import BlockRecord, ChainId, TransactionRecord
from repro.collection.store import MANIFEST_NAME, FrameSink, FrameStore


def _records(count, chain=ChainId.EOS):
    return [
        TransactionRecord(
            chain=chain,
            transaction_id=f"tx{i}",
            block_height=i,
            timestamp=float(i),
            type="transfer",
            sender=f"user{i % 7}",
            receiver="eosio.token",
            contract="eosio.token",
            amount=float(i) / 10,
            currency="EOS",
            metadata={"memo": "x"} if i % 3 == 0 else {},
        )
        for i in range(count)
    ]


class TestFrameStore:
    def test_rejects_bad_chunk_size(self):
        with pytest.raises(CollectionError):
            FrameStore(chunk_rows=0)

    def test_add_frame_chunks_and_round_trips(self):
        records = _records(25)
        frame = TxFrame.from_records(records)
        store = FrameStore(chunk_rows=10)
        store.add_frame(frame)
        assert store.row_count == 25
        assert store.chunk_count == 3
        assert list(store.to_frame()) == records
        assert list(store.iter_records()) == records

    def test_add_records_streams_through_staging(self):
        records = _records(12)
        store = FrameStore(chunk_rows=5)
        store.add_records(iter(records))
        # Two full chunks flushed, two rows still staged.
        assert store.chunk_count == 3
        assert store.row_count == 12
        assert list(store.to_frame()) == records
        store.flush()
        assert store.compression_stats().chunk_count == 3

    def test_compression_accounting(self):
        store = FrameStore(chunk_rows=50)
        store.add_frame(TxFrame.from_records(_records(50)))
        stats = store.compression_stats()
        assert stats.chunk_count == 1
        assert 0 < stats.compressed_bytes < stats.raw_bytes

    def test_disk_spill(self, tmp_path):
        records = _records(8)
        store = FrameStore(chunk_rows=4, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(records))
        stored_files = list(tmp_path.glob("frame-chunk-*.bin"))
        assert len(stored_files) == 2
        assert list(store.to_frame()) == records

    def test_disk_spill_v1(self, tmp_path):
        records = _records(8)
        store = FrameStore(chunk_rows=4, directory=str(tmp_path), chunk_format="v1")
        store.add_frame(TxFrame.from_records(records))
        stored_files = list(tmp_path.glob("frame-chunk-*.json.gz"))
        assert len(stored_files) == 2
        assert list(store.to_frame()) == records

    def test_columnar_beats_per_record_compression(self):
        """The columnar payload compresses tighter than per-record dicts.

        Pinned to the v1 chunk format: the claim is about the columnar
        *layout* vs per-record dicts under the same gzip-JSON serialiser
        (the v2 binary format trades a little size for decode speed).
        """
        from repro.common.compression import compress_records

        records = _records(200)
        frame = TxFrame.from_records(records)
        store = FrameStore(chunk_rows=200, chunk_format="v1")
        store.add_frame(frame)
        columnar = store.compression_stats().compressed_bytes
        per_record = len(compress_records([record.to_dict() for record in records]))
        assert columnar < per_record


class TestFrameStoreOpen:
    """Cache rehydration: a directory-backed store reopens in a new process."""

    def test_open_round_trips_rows(self, tmp_path):
        records = _records(12)
        writer = FrameStore(chunk_rows=5, directory=str(tmp_path))
        writer.add_frame(TxFrame.from_records(records))
        reopened = FrameStore.open(str(tmp_path))
        assert reopened.row_count == 12
        assert reopened.chunk_count == 3
        assert list(reopened.to_frame()) == records

    def test_open_preserves_analysis_results(self, tmp_path):
        """Worker-style rehydration: analyses over the reopened frame match."""
        from repro.analysis.classify import type_distribution

        records = _records(30)
        frame = TxFrame.from_records(records)
        writer = FrameStore(chunk_rows=10, directory=str(tmp_path))
        writer.add_frame(frame)
        rehydrated = FrameStore.open(str(tmp_path)).to_frame()
        assert type_distribution(rehydrated) == type_distribution(frame)

    def test_open_empty_directory(self, tmp_path):
        store = FrameStore.open(str(tmp_path))
        assert store.row_count == 0
        assert len(store.to_frame()) == 0

    def test_open_without_manifest_still_loads(self, tmp_path):
        """Legacy directories (pre-manifest) keep working."""
        records = _records(10)
        writer = FrameStore(chunk_rows=5, directory=str(tmp_path))
        writer.add_frame(TxFrame.from_records(records))
        os.remove(tmp_path / MANIFEST_NAME)
        reopened = FrameStore.open(str(tmp_path))
        assert reopened.row_count == 10
        assert list(reopened.to_frame()) == records


class TestManifest:
    """The manifest is the store's commit point and crash-recovery anchor."""

    def test_manifest_written_per_chunk(self, tmp_path):
        store = FrameStore(chunk_rows=5, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(_records(12)))
        with open(tmp_path / MANIFEST_NAME, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["row_count"] == 12
        assert [entry["rows"] for entry in manifest["chunks"]] == [5, 5, 2]
        for entry in manifest["chunks"]:
            path = tmp_path / entry["file"]
            assert path.exists()
            assert os.path.getsize(path) == entry["compressed_bytes"]
        assert manifest["chunks"][0]["heights"]["eos"] == [0, 4]

    def test_open_is_lazy_and_preserves_byte_accounting(self, tmp_path):
        writer = FrameStore(chunk_rows=5, directory=str(tmp_path))
        writer.add_frame(TxFrame.from_records(_records(12)))
        written = writer.compression_stats()
        reopened = FrameStore.open(str(tmp_path))
        # Lazy: chunk payloads stay on disk until asked for.
        assert all(chunk.blob is None for chunk in reopened._chunks)
        stats = reopened.compression_stats()
        assert stats.compressed_bytes == written.compressed_bytes
        assert stats.raw_bytes == written.raw_bytes
        assert list(reopened.to_frame()) == list(writer.to_frame())

    def test_flushed_rows_excludes_staging(self, tmp_path):
        store = FrameStore(chunk_rows=10, directory=str(tmp_path))
        store.add_records(iter(_records(14)))
        assert store.row_count == 14
        assert store.flushed_rows == 10  # 4 rows still staged, not durable
        store.flush()
        assert store.flushed_rows == 14

    def test_height_bounds_track_committed_rows(self, tmp_path):
        store = FrameStore(chunk_rows=5, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(_records(12)))
        assert store.height_bounds(ChainId.EOS) == (0, 11)
        assert store.height_bounds("eos") == (0, 11)
        assert store.height_bounds(ChainId.XRP) is None
        reopened = FrameStore.open(str(tmp_path))
        assert reopened.height_bounds(ChainId.EOS) == (0, 11)

    def test_append_after_reopen_continues_chunks(self, tmp_path):
        first = FrameStore(chunk_rows=5, directory=str(tmp_path))
        first.add_frame(TxFrame.from_records(_records(10)))
        reopened = FrameStore.open(str(tmp_path))
        more = [
            TransactionRecord(
                chain=ChainId.EOS,
                transaction_id=f"late{i}",
                block_height=100 + i,
                timestamp=100.0 + i,
                type="transfer",
                sender="late",
                receiver="eosio.token",
                contract="eosio.token",
                amount=1.0,
                currency="EOS",
            )
            for i in range(5)
        ]
        reopened.add_records(iter(more))
        reopened.flush()
        assert reopened.row_count == 15
        assert reopened.height_bounds(ChainId.EOS) == (0, 104)
        final = FrameStore.open(str(tmp_path))
        assert final.row_count == 15
        assert [record.transaction_id for record in final.to_frame()][-1] == "late4"


class TestCrashRecovery:
    def _write(self, tmp_path, count=12, chunk_rows=5):
        store = FrameStore(chunk_rows=chunk_rows, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(_records(count)))
        return store

    def test_uncommitted_partial_chunk_is_cleaned(self, tmp_path):
        self._write(tmp_path)
        stale = tmp_path / "frame-chunk-000003.json.gz"
        stale.write_bytes(b"torn-mid-write")
        reopened = FrameStore.open(str(tmp_path))
        assert str(stale) in reopened.cleaned_paths
        assert not stale.exists()
        assert reopened.row_count == 12

    def test_torn_committed_chunk_truncates_store(self, tmp_path):
        self._write(tmp_path)
        torn = tmp_path / "frame-chunk-000002.bin"
        torn.write_bytes(torn.read_bytes()[:-3])
        reopened = FrameStore.open(str(tmp_path))
        assert str(torn) in reopened.cleaned_paths
        assert reopened.row_count == 10  # the 2-row tail chunk is gone
        # The manifest was rewritten: a second open is clean.
        again = FrameStore.open(str(tmp_path))
        assert again.cleaned_paths == []
        assert again.row_count == 10

    def test_torn_middle_chunk_drops_it_and_everything_after(self, tmp_path):
        self._write(tmp_path)
        torn = tmp_path / "frame-chunk-000001.bin"
        torn.write_bytes(b"x")
        reopened = FrameStore.open(str(tmp_path))
        assert reopened.row_count == 5  # only chunk 0 survives
        assert sorted(os.path.basename(p) for p in reopened.cleaned_paths) == [
            "frame-chunk-000001.bin",
            "frame-chunk-000002.bin",
        ]
        # Appending after recovery reuses the freed chunk ids safely.
        reopened.add_records(iter(_records(3)[:0]))  # no-op append
        records = list(reopened.to_frame())
        assert len(records) == 5


class TestFrameSink:
    def _block(self, height, tx_count=2):
        return BlockRecord(
            chain=ChainId.EOS,
            height=height,
            timestamp=float(height),
            producer="prod",
            transactions=tuple(
                TransactionRecord(
                    chain=ChainId.EOS,
                    transaction_id=f"b{height}",  # both actions share one tx
                    block_height=height,
                    timestamp=float(height),
                    type="transfer",
                    sender="alice",
                    receiver="bob",
                    contract="eosio.token",
                    amount=1.0,
                    currency="EOS",
                )
                for i in range(tx_count)
            ),
        )

    def test_reverse_crawl_order_lands_time_sorted(self, tmp_path):
        store = FrameStore(chunk_rows=100, directory=str(tmp_path))
        sink = FrameSink(store, chain=ChainId.EOS)
        for height in (105, 104, 103, 102):  # reverse chronological, like a crawl
            sink.add(self._block(height))
        assert sink.block_count == 4
        assert sink.transaction_count == 4
        assert sink.action_count == 8
        sink.flush()
        frame = store.to_frame()
        assert frame.timestamps_sorted
        assert list(frame.block_height) == [102, 102, 103, 103, 104, 104, 105, 105]

    def test_duplicate_height_rejected(self, tmp_path):
        sink = FrameSink(FrameStore(directory=str(tmp_path)), chain=ChainId.EOS)
        sink.add(self._block(7))
        with pytest.raises(CollectionError):
            sink.add(self._block(7))
        sink.flush()
        with pytest.raises(CollectionError):
            sink.add(self._block(7))

    def test_contains_answers_from_store_bounds(self, tmp_path):
        store = FrameStore(chunk_rows=100, directory=str(tmp_path))
        sink = FrameSink(store, chain=ChainId.EOS)
        sink.add(self._block(10))
        sink.add(self._block(11))
        sink.flush()
        # A fresh sink over the reopened store knows the committed range.
        reopened_sink = FrameSink(FrameStore.open(str(tmp_path)), chain=ChainId.EOS)
        assert 10 in reopened_sink
        assert 11 in reopened_sink
        assert 12 not in reopened_sink
