"""Tests for the frame-native chunked store."""

import pytest

from repro.common.columns import TxFrame
from repro.common.errors import CollectionError
from repro.common.records import ChainId, TransactionRecord
from repro.collection.store import FrameStore


def _records(count, chain=ChainId.EOS):
    return [
        TransactionRecord(
            chain=chain,
            transaction_id=f"tx{i}",
            block_height=i,
            timestamp=float(i),
            type="transfer",
            sender=f"user{i % 7}",
            receiver="eosio.token",
            contract="eosio.token",
            amount=float(i) / 10,
            currency="EOS",
            metadata={"memo": "x"} if i % 3 == 0 else {},
        )
        for i in range(count)
    ]


class TestFrameStore:
    def test_rejects_bad_chunk_size(self):
        with pytest.raises(CollectionError):
            FrameStore(chunk_rows=0)

    def test_add_frame_chunks_and_round_trips(self):
        records = _records(25)
        frame = TxFrame.from_records(records)
        store = FrameStore(chunk_rows=10)
        store.add_frame(frame)
        assert store.row_count == 25
        assert store.chunk_count == 3
        assert list(store.to_frame()) == records
        assert list(store.iter_records()) == records

    def test_add_records_streams_through_staging(self):
        records = _records(12)
        store = FrameStore(chunk_rows=5)
        store.add_records(iter(records))
        # Two full chunks flushed, two rows still staged.
        assert store.chunk_count == 3
        assert store.row_count == 12
        assert list(store.to_frame()) == records
        store.flush()
        assert store.compression_stats().chunk_count == 3

    def test_compression_accounting(self):
        store = FrameStore(chunk_rows=50)
        store.add_frame(TxFrame.from_records(_records(50)))
        stats = store.compression_stats()
        assert stats.chunk_count == 1
        assert 0 < stats.compressed_bytes < stats.raw_bytes

    def test_disk_spill(self, tmp_path):
        records = _records(8)
        store = FrameStore(chunk_rows=4, directory=str(tmp_path))
        store.add_frame(TxFrame.from_records(records))
        stored_files = list(tmp_path.glob("frame-chunk-*.json.gz"))
        assert len(stored_files) == 2
        assert list(store.to_frame()) == records

    def test_columnar_beats_per_record_compression(self):
        """The columnar payload compresses tighter than per-record dicts."""
        from repro.common.compression import compress_records

        records = _records(200)
        frame = TxFrame.from_records(records)
        store = FrameStore(chunk_rows=200)
        store.add_frame(frame)
        columnar = store.compression_stats().compressed_bytes
        per_record = len(compress_records([record.to_dict() for record in records]))
        assert columnar < per_record


class TestFrameStoreOpen:
    """Cache rehydration: a directory-backed store reopens in a new process."""

    def test_open_round_trips_rows(self, tmp_path):
        records = _records(12)
        writer = FrameStore(chunk_rows=5, directory=str(tmp_path))
        writer.add_frame(TxFrame.from_records(records))
        reopened = FrameStore.open(str(tmp_path))
        assert reopened.row_count == 12
        assert reopened.chunk_count == 3
        assert list(reopened.to_frame()) == records

    def test_open_preserves_analysis_results(self, tmp_path):
        """Worker-style rehydration: analyses over the reopened frame match."""
        from repro.analysis.classify import type_distribution

        records = _records(30)
        frame = TxFrame.from_records(records)
        writer = FrameStore(chunk_rows=10, directory=str(tmp_path))
        writer.add_frame(frame)
        rehydrated = FrameStore.open(str(tmp_path)).to_frame()
        assert type_distribution(rehydrated) == type_distribution(frame)

    def test_open_empty_directory(self, tmp_path):
        store = FrameStore.open(str(tmp_path))
        assert store.row_count == 0
        assert len(store.to_frame()) == 0
