"""Window-sharded dataset generation: parallel in time, canonical in bytes.

``generate_sharded`` splits each chain's observation window into whole-day
sub-windows, generates every ``(chain, window)`` shard in its own process
into its own store, and assembles the shards into one canonical store.
These tests pin the determinism contract:

* worker count never changes a byte of the assembled store;
* a single-window sharded run equals the classic serial
  ``generate_dataset`` stream exactly;
* window configs continue heights/levels/ledger indices precisely and
  keep id ranges disjoint;
* ``FrameStore.assemble`` refuses unflushed shards and keeps row/pool
  bookkeeping intact without decompressing chunk data.
"""

from __future__ import annotations

import itertools
import os

import pytest

from repro.cli import generate_dataset
from repro.collection.generate import (
    ID_STRIDE,
    chain_window_configs,
    generate_sharded,
    window_day_offsets,
)
from repro.collection.store import CHUNK_FORMATS, FrameStore
from repro.common import faults
from repro.common.errors import CollectionError
from repro.eos.workload import EosWorkloadConfig
from repro.scenarios import PaperScenario
from repro.tezos.workload import TezosWorkloadConfig
from repro.xrp.workload import XrpWorkloadConfig


def _windowed_scenario(seed: int = 7, windows: int = 2) -> PaperScenario:
    """Four days around the EIDOS launch, split into generation windows."""
    window = {"start_date": "2019-10-30", "end_date": "2019-11-03"}
    return PaperScenario(
        name="gen-tiny",
        eos=EosWorkloadConfig(
            transactions_per_day=80, blocks_per_day=4, user_account_count=20,
            seed=seed, **window
        ),
        tezos=TezosWorkloadConfig(
            blocks_per_day=4, baker_count=8, user_account_count=30,
            seed=seed + 1, **window
        ),
        xrp=XrpWorkloadConfig(
            transactions_per_day=100, ledgers_per_day=4,
            ordinary_account_count=15, spam_accounts_per_wave=5,
            seed=seed + 2, **window
        ),
        generation_windows=windows,
    )


def _directory_bytes(directory):
    """Every file under ``directory`` with its exact content bytes."""
    snapshot = {}
    for root, _dirs, files in os.walk(directory):
        for name in files:
            path = os.path.join(root, name)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, directory)] = handle.read()
    return snapshot


class TestWindowDayOffsets:
    def test_covers_whole_span_monotonically(self):
        for days, windows in ((14, 1), (14, 3), (30, 8), (5, 5)):
            offsets = window_day_offsets(days, windows)
            assert offsets[0] == 0 and offsets[-1] == days
            assert len(offsets) == windows + 1
            assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_more_windows_than_days_rejected(self):
        with pytest.raises(CollectionError):
            window_day_offsets(3, 4)


class TestChainWindowConfigs:
    def test_windows_continue_dates_heights_and_ids(self):
        scenario = _windowed_scenario(windows=2)
        specs = chain_window_configs(scenario)
        assert [spec.chain for spec in specs] == [
            "eos", "eos", "tezos", "tezos", "xrp", "xrp"
        ]
        assert [spec.index for spec in specs] == list(range(6))
        by_chain = {}
        for spec in specs:
            by_chain.setdefault(spec.chain, []).append(spec.config)
        for chain, configs in by_chain.items():
            # Dates tile the original window exactly.
            assert configs[0].start_date == "2019-10-30"
            assert configs[0].end_date == configs[1].start_date == "2019-11-01"
            assert configs[1].end_date == "2019-11-03"
        eos0, eos1 = by_chain["eos"]
        assert eos1.start_height == eos0.start_height + 2 * eos0.blocks_per_day
        assert (eos0.transaction_id_offset, eos1.transaction_id_offset) == (
            0, ID_STRIDE
        )
        tez0, tez1 = by_chain["tezos"]
        assert tez1.start_level == tez0.start_level + 2 * tez0.blocks_per_day
        assert tez1.operation_id_offset == ID_STRIDE
        xrp0, xrp1 = by_chain["xrp"]
        # +1 on top of the day continuation: window 0's bootstrap closes
        # one rate-seeding ledger.
        assert xrp1.start_index == xrp0.start_index + 2 * xrp0.ledgers_per_day + 1
        assert xrp1.transaction_id_offset == ID_STRIDE


class TestGenerateSharded:
    def test_single_window_equals_serial_stream(self, tmp_path):
        scenario = _windowed_scenario(windows=1)
        dataset = generate_sharded(scenario, str(tmp_path / "store"), workers=1)
        serial_frame, serial_oracle, _ = generate_dataset(scenario)
        stored = FrameStore.open(str(tmp_path / "store")).to_frame()
        assert dataset.rows == len(serial_frame)
        assert stored.to_payload() == serial_frame.to_payload()
        rates = {
            (currency, issuer): rate
            for currency, issuer, rate in dataset.oracle_rates
        }
        for currency, issuer in serial_oracle.known_assets():
            assert rates[(currency, issuer)] == serial_oracle.rate(
                currency, issuer
            )

    def test_worker_count_never_changes_a_byte(self, tmp_path):
        scenario = _windowed_scenario(windows=2)
        solo_dir, pool_dir = str(tmp_path / "solo"), str(tmp_path / "pool")
        solo = generate_sharded(scenario, solo_dir, workers=1)
        pool = generate_sharded(scenario, pool_dir, workers=3)
        assert solo.rows == pool.rows
        assert solo.shard_count == pool.shard_count == 6
        assert _directory_bytes(solo_dir) == _directory_bytes(pool_dir)
        assert solo.oracle_rates == pool.oracle_rates
        assert solo.clusters == pool.clusters

    def test_windowed_ids_are_disjoint_and_heights_continuous(self, tmp_path):
        from repro.common.records import ChainId

        scenario = _windowed_scenario(windows=2)
        generate_sharded(scenario, str(tmp_path), workers=1)
        frame = FrameStore.open(str(tmp_path)).to_frame()
        for chain in ChainId:
            rows = frame.chain_view(chain).rows
            assert len(rows)
            heights = [frame.block_height[row] for row in rows]
            # Window 1 continues window 0's height range exactly.
            assert heights == sorted(heights), chain
            ids = [frame.transaction_id[row] for row in rows]
            if chain is ChainId.EOS:
                # EOS action rows share their transaction's id in one
                # contiguous run; collapsing runs leaves transaction-level
                # ids, which must never collide across windows.
                ids = [tx_id for tx_id, _run in itertools.groupby(ids)]
            assert len(ids) == len(set(ids)), chain

    def test_shard_directories_are_consumed(self, tmp_path):
        generate_sharded(_windowed_scenario(windows=2), str(tmp_path), workers=1)
        leftovers = [
            name for name in os.listdir(str(tmp_path)) if name.startswith("shard-")
        ]
        assert leftovers == []


class TestAssemble:
    def _shard(self, directory, records_frame, chunk_rows=40):
        store = FrameStore(chunk_rows=chunk_rows, directory=str(directory))
        store.add_frame(records_frame)
        store.flush()
        return store

    def test_rejects_crashed_shard_without_manifest(self, tmp_path, eos_records):
        from repro.common.columns import TxFrame

        shard_dir = tmp_path / "shard"
        self._shard(shard_dir, TxFrame.from_records(eos_records[:50]))
        # Simulate a shard whose generator died before committing: the
        # chunk file exists but the manifest (the commit point) does not.
        os.remove(shard_dir / "manifest.json")
        with pytest.raises(CollectionError):
            FrameStore.assemble(str(tmp_path / "out"), [str(shard_dir)])

    @pytest.mark.parametrize("chunk_format", CHUNK_FORMATS)
    def test_crash_mid_assemble_leaves_a_rejected_target(
        self, tmp_path, eos_records, tezos_records, chunk_format
    ):
        """An assembly that dies between chunk moves must never be mistaken
        for a complete store — for either chunk serialisation format."""
        from repro.common.columns import TxFrame

        shard_dirs = []
        for index, rows in enumerate([eos_records[:200], tezos_records[:200]]):
            shard_dir = tmp_path / f"in-{index}"
            store = FrameStore(
                chunk_rows=40,
                directory=str(shard_dir),
                chunk_format=chunk_format,
            )
            store.add_frame(TxFrame.from_records(rows))
            store.flush()
            shard_dirs.append(str(shard_dir))
        target = str(tmp_path / "out")
        plan = faults.FaultPlan.parse("store.assemble:mode=crash:nth=3")
        with faults.use_plan(plan):
            with pytest.raises(faults.InjectedCrash):
                FrameStore.assemble(target, shard_dirs, chunk_rows=40)
        assert plan.total_fires == 1
        # Chunks really did move before the crash (a partial assembly)...
        assert any(name.startswith("frame-chunk-") for name in os.listdir(target))
        # ...and the target refuses to open rather than serving a prefix.
        with pytest.raises(CollectionError, match="partial assembly"):
            FrameStore.open(target)

    @pytest.mark.parametrize("chunk_format", CHUNK_FORMATS)
    def test_completed_assembly_opens_clean(self, tmp_path, eos_records, chunk_format):
        from repro.common.columns import TxFrame

        shard_dir = tmp_path / "in"
        store = FrameStore(
            chunk_rows=40, directory=str(shard_dir), chunk_format=chunk_format
        )
        store.add_frame(TxFrame.from_records(eos_records[:120]))
        store.flush()
        target = str(tmp_path / "out")
        FrameStore.assemble(target, [str(shard_dir)], chunk_rows=40)
        reopened = FrameStore.open(target)
        assert reopened.row_count == 120

    def test_assembled_store_equals_concatenated_frames(
        self, tmp_path, eos_records, tezos_records, xrp_records
    ):
        from repro.common.columns import TxFrame

        slices = [eos_records[:300], tezos_records[:300], xrp_records[:300]]
        shard_dirs = []
        for index, rows in enumerate(slices):
            shard_dir = tmp_path / f"in-{index}"
            self._shard(shard_dir, TxFrame.from_records(rows))
            shard_dirs.append(str(shard_dir))
        combined = FrameStore.assemble(str(tmp_path / "out"), shard_dirs)
        expected = TxFrame.from_records([row for rows in slices for row in rows])
        assert combined.row_count == len(expected)
        reopened = FrameStore.open(str(tmp_path / "out"))
        assert reopened.to_frame().to_payload() == expected.to_payload()
        assert reopened.chain_row_counts() == {
            "eos": 300, "tezos": 300, "xrp": 300
        }
