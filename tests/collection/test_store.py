"""Tests for the gzip-compressed block store."""

import pytest

from repro.common.errors import CollectionError
from repro.common.records import BlockRecord, ChainId, TransactionRecord
from repro.collection.store import BlockStore


def make_block(height, tx_count=2):
    records = tuple(
        TransactionRecord(
            chain=ChainId.EOS,
            transaction_id=f"tx{height}-{index}",
            block_height=height,
            timestamp=float(height),
            type="transfer",
            sender="alice",
            receiver="bob",
        )
        for index in range(tx_count)
    )
    return BlockRecord(
        chain=ChainId.EOS,
        height=height,
        timestamp=float(height),
        producer="producer01a",
        transactions=records,
    )


class TestStorage:
    def test_add_and_read_back_in_height_order(self):
        store = BlockStore(chunk_size=3)
        for height in (5, 3, 4, 1, 2):
            store.add(make_block(height))
        store.flush()
        assert [block.height for block in store.iter_blocks()] == [1, 2, 3, 4, 5]
        assert store.block_count == 5
        assert store.height_range() == (1, 5)

    def test_duplicate_heights_rejected(self):
        store = BlockStore()
        store.add(make_block(1))
        with pytest.raises(CollectionError):
            store.add(make_block(1))

    def test_counts(self):
        store = BlockStore()
        store.add(make_block(1, tx_count=3))
        store.add(make_block(2, tx_count=1))
        assert store.transaction_count == 4
        assert store.action_count == 4
        assert len(store) == 2
        assert 1 in store and 3 not in store

    def test_chunks_created_at_chunk_size(self):
        store = BlockStore(chunk_size=2)
        for height in range(5):
            store.add(make_block(height))
        assert store.chunk_count == 3  # two full chunks plus one pending
        store.flush()
        assert store.chunk_count == 3

    def test_flush_empty_is_noop(self):
        store = BlockStore()
        assert store.flush() is None

    def test_compression_stats_accumulate(self):
        store = BlockStore(chunk_size=2)
        for height in range(6):
            store.add(make_block(height, tx_count=5))
        store.flush()
        stats = store.compression_stats()
        assert stats.chunk_count == 3
        assert 0 < stats.compressed_bytes < stats.raw_bytes

    def test_invalid_chunk_size(self):
        with pytest.raises(CollectionError):
            BlockStore(chunk_size=0)

    def test_empty_store(self):
        store = BlockStore()
        assert store.blocks() == []
        assert store.height_range() is None


class TestDiskSpill:
    def test_blocks_written_to_directory_and_read_back(self, tmp_path):
        store = BlockStore(chunk_size=2, directory=str(tmp_path / "chunks"))
        for height in range(4):
            store.add(make_block(height))
        store.flush()
        files = list((tmp_path / "chunks").glob("chunk-*.json.gz"))
        assert len(files) == 2
        assert [block.height for block in store.iter_blocks()] == [0, 1, 2, 3]
