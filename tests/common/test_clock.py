"""Tests for the simulation clock and timestamp helpers."""

import pytest

from repro.common.clock import (
    SECONDS_PER_DAY,
    SimulationClock,
    date_from_timestamp,
    iso_from_timestamp,
    timestamp_from_iso,
)


class TestTimestampConversion:
    def test_round_trip_date(self):
        timestamp = timestamp_from_iso("2019-10-01")
        assert date_from_timestamp(timestamp) == "2019-10-01"

    def test_round_trip_datetime(self):
        timestamp = timestamp_from_iso("2019-11-01T12:34:56")
        assert iso_from_timestamp(timestamp) == "2019-11-01T12:34:56"

    def test_day_difference(self):
        start = timestamp_from_iso("2019-10-01")
        end = timestamp_from_iso("2019-10-02")
        assert end - start == SECONDS_PER_DAY

    def test_observation_window_length(self):
        # The paper's window runs October through December 2019: 92 days.
        start = timestamp_from_iso("2019-10-01")
        end = timestamp_from_iso("2020-01-01")
        assert (end - start) / SECONDS_PER_DAY == 92

    def test_invalid_date_raises(self):
        with pytest.raises(ValueError):
            timestamp_from_iso("not-a-date")


class TestSimulationClock:
    def test_starts_at_given_time(self):
        clock = SimulationClock(100.0)
        assert clock.now == 100.0

    def test_accepts_iso_string(self):
        clock = SimulationClock("2019-10-01")
        assert clock.now == timestamp_from_iso("2019-10-01")

    def test_advance_moves_forward(self):
        clock = SimulationClock(0.0)
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5
        assert clock.elapsed() == 7.5

    def test_advance_rejects_negative(self):
        clock = SimulationClock(0.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to_is_monotonic(self):
        clock = SimulationClock(50.0)
        clock.advance_to(80.0)
        assert clock.now == 80.0
        clock.advance_to(10.0)  # moving backwards is a no-op
        assert clock.now == 80.0

    def test_iso_rendering(self):
        clock = SimulationClock("2019-12-31")
        assert clock.iso().startswith("2019-12-31")
