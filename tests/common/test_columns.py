"""Tests for the columnar transaction frame (the analysis substrate)."""

import pytest

from repro.common import kernels
from repro.common.columns import (
    StringPool,
    TxFrame,
    TxView,
    as_frame,
    as_index_rows,
    gather_array,
    gather_np,
)
from repro.common.records import ChainId, TransactionRecord


def _record(chain=ChainId.EOS, tx="tx1", ts=100.0, **overrides):
    values = dict(
        chain=chain,
        transaction_id=tx,
        block_height=1,
        timestamp=ts,
        type="transfer",
        sender="alice",
        receiver="bob",
        contract="eosio.token",
        amount=1.5,
        currency="EOS",
        fee=0.01,
        success=True,
        metadata={"memo": "hi"},
    )
    values.update(overrides)
    return TransactionRecord(**values)


class TestStringPool:
    def test_intern_is_stable(self):
        pool = StringPool()
        assert pool.intern("a") == 0
        assert pool.intern("b") == 1
        assert pool.intern("a") == 0
        assert pool.value(1) == "b"
        assert len(pool) == 2
        assert "a" in pool and "c" not in pool

    def test_code_does_not_insert(self):
        pool = StringPool()
        assert pool.code("missing") is None
        assert len(pool) == 0


class TestTxFrame:
    def test_round_trips_records(self):
        records = [
            _record(tx="tx1", ts=10.0),
            _record(chain=ChainId.XRP, tx="tx2", ts=20.0, type="Payment", success=False),
        ]
        frame = TxFrame.from_records(records)
        assert len(frame) == 2
        assert [frame.record(i) for i in range(2)] == records
        assert list(frame) == records

    def test_interning_shares_codes(self):
        frame = TxFrame.from_records([_record(tx=f"tx{i}") for i in range(50)])
        # One distinct sender/receiver/contract → three pool entries, plus
        # the empty issuer string.
        assert len(frame.types) == 1
        assert frame.sender_code.count(frame.accounts.intern("alice")) == 50

    def test_empty_metadata_not_materialized(self):
        frame = TxFrame.from_records([_record(metadata={})])
        assert frame.metadata[0] is None
        assert frame.record(0).metadata == {}

    def test_chain_views_are_disjoint_and_complete(self):
        records = [
            _record(tx=f"e{i}", ts=float(i)) for i in range(5)
        ] + [
            _record(chain=ChainId.TEZOS, tx=f"t{i}", ts=float(i), type="Endorsement")
            for i in range(3)
        ]
        frame = TxFrame.from_records(records)
        eos = frame.chain_view(ChainId.EOS)
        tezos = frame.chain_view(ChainId.TEZOS)
        xrp = frame.chain_view(ChainId.XRP)
        assert len(eos) == 5 and len(tezos) == 3 and len(xrp) == 0
        assert all(record.chain is ChainId.EOS for record in eos)
        assert frame.chains() == [ChainId.EOS, ChainId.TEZOS]

    def test_single_chain_view_uses_range(self):
        frame = TxFrame.from_records([_record(tx=f"tx{i}") for i in range(4)])
        view = frame.chain_view(ChainId.EOS)
        assert isinstance(view.rows, range)
        assert len(view) == 4

    def test_chain_bounds_tracked_on_append(self):
        frame = TxFrame.from_records(
            [_record(tx="a", ts=50.0), _record(tx="b", ts=10.0), _record(tx="c", ts=30.0)]
        )
        assert frame.chain_bounds(ChainId.EOS) == (10.0, 50.0)
        assert frame.chain_duration(ChainId.EOS) == 40.0
        assert frame.chain_bounds(ChainId.XRP) is None
        assert frame.min_timestamp() == 10.0 and frame.max_timestamp() == 50.0

    def test_time_window_sorted_uses_bisection(self):
        frame = TxFrame.from_records(
            [_record(tx=f"tx{i}", ts=float(i * 10)) for i in range(10)]
        )
        window = frame.time_window(20.0, 50.0)
        assert isinstance(window.rows, range)
        assert [record.timestamp for record in window] == [20.0, 30.0, 40.0]

    def test_time_window_unsorted_filters(self):
        frame = TxFrame.from_records(
            [_record(tx="a", ts=50.0), _record(tx="b", ts=10.0), _record(tx="c", ts=30.0)]
        )
        window = frame.time_window(10.0, 40.0)
        assert sorted(record.timestamp for record in window) == [10.0, 30.0]

    def test_chain_view_is_a_snapshot(self):
        frame = TxFrame.from_records(
            [_record(tx="e1", ts=1.0), _record(chain=ChainId.XRP, tx="x1", ts=2.0)]
        )
        eos_before = frame.chain_view(ChainId.EOS)
        frame.append(_record(tx="e2", ts=3.0))
        # Later appends never change what an existing view covers, whether
        # the frame holds one chain or several.
        assert len(eos_before) == 1
        assert len(frame.chain_view(ChainId.EOS)) == 2
        single = TxFrame.from_records([_record(tx="a", ts=1.0)])
        view = single.chain_view(ChainId.EOS)
        single.append(_record(tx="b", ts=2.0))
        assert len(view) == 1

    def test_view_chain_filter(self):
        records = [_record(tx="e1", ts=1.0), _record(chain=ChainId.XRP, tx="x1", ts=2.0)]
        view = TxFrame.from_records(records).all_rows()
        assert len(view.chain_view(ChainId.XRP)) == 1

    def test_payload_round_trip(self):
        records = [
            _record(tx="tx1", ts=10.0),
            _record(chain=ChainId.XRP, tx="tx2", ts=20.0, type="Payment",
                    currency="BTC", issuer="rIssuer", success=False,
                    error_code="PATH_DRY", metadata={"destination_tag": 7}),
        ]
        frame = TxFrame.from_records(records)
        rebuilt = TxFrame.from_payload(frame.to_payload())
        assert list(rebuilt) == records
        assert rebuilt.chain_bounds(ChainId.XRP) == (20.0, 20.0)

    def test_payload_slice_and_pool_remap(self):
        frame = TxFrame.from_records([_record(tx=f"tx{i}", ts=float(i)) for i in range(6)])
        target = TxFrame.from_records([_record(chain=ChainId.TEZOS, tx="z", type="Endorsement")])
        target.extend_from_payload(frame.to_payload(range(2, 4)))
        assert len(target) == 3
        assert target.record(1).transaction_id == "tx2"
        assert target.record(2).type == "transfer"

    def test_as_frame_passthrough(self):
        frame = TxFrame.from_records([_record()])
        assert as_frame(frame) is frame
        view = frame.all_rows()
        assert as_frame(view) is view
        built = as_frame([_record()])
        assert isinstance(built, TxFrame) and len(built) == 1

    def test_extend_from_generator_counts(self):
        def stream():
            for i in range(7):
                yield _record(tx=f"tx{i}", ts=float(i))

        frame = TxFrame()
        assert frame.extend(stream()) == 7
        assert len(frame) == 7


class TestShardAndConcat:
    def _mixed_frame(self, count=20):
        records = []
        for i in range(count):
            chain = (ChainId.EOS, ChainId.TEZOS, ChainId.XRP)[i % 3]
            records.append(_record(chain=chain, tx=f"tx{i}", ts=float(i)))
        return TxFrame.from_records(records), records

    def test_shard_partitions_rows_in_order(self):
        frame, _ = self._mixed_frame(20)
        shards = frame.shard(3)
        assert [len(shard) for shard in shards] == [7, 7, 6]
        flattened = [row for shard in shards for row in shard.rows]
        assert flattened == list(range(20))

    def test_shard_of_view_preserves_selection(self):
        frame, _ = self._mixed_frame(21)
        view = frame.chain_view(ChainId.TEZOS)
        shards = view.shard(2)
        flattened = [row for shard in shards for row in shard.rows]
        assert flattened == list(view.rows)

    def test_shard_more_than_rows(self):
        frame, _ = self._mixed_frame(3)
        shards = frame.shard(10)
        assert len(shards) == 3
        assert all(len(shard) == 1 for shard in shards)

    def test_shard_empty_frame(self):
        shards = TxFrame().shard(4)
        assert len(shards) == 1 and len(shards[0]) == 0

    def test_shard_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            TxFrame().shard(0)

    def test_concat_equals_single_frame(self):
        frame, records = self._mixed_frame(15)
        parts = [
            TxFrame.from_records(records[:5]),
            TxFrame.from_records(records[5:9]),
            TxFrame.from_records(records[9:]),
        ]
        combined = TxFrame.concat(parts)
        assert list(combined) == records
        assert combined.chains() == frame.chains()
        for chain in frame.chains():
            assert combined.chain_bounds(chain) == frame.chain_bounds(chain)

    def test_array_payload_round_trip(self):
        frame, records = self._mixed_frame(9)
        shard = frame.shard(2)[1]
        payload = frame.to_payload(shard.rows, arrays=True)
        rebuilt = TxFrame.from_payload(payload)
        assert list(rebuilt) == [frame.record(row) for row in shard.rows]
        # Codes pass through: the rebuilt pools repeat the parent's order.
        assert rebuilt.types.values == frame.types.values
        assert rebuilt.accounts.values == frame.accounts.values

    def test_from_payload_bulk_matches_append_path(self):
        frame, _ = self._mixed_frame(12)
        payload = frame.to_payload()
        bulk = TxFrame.from_payload(payload)
        appended = TxFrame()
        appended.extend_from_payload(payload)
        assert list(bulk) == list(appended)
        assert bulk.timestamps_sorted == appended.timestamps_sorted
        for chain in appended.chains():
            assert list(bulk.chain_view(chain).rows) == list(
                appended.chain_view(chain).rows
            )
            assert bulk.chain_bounds(chain) == appended.chain_bounds(chain)

    def test_from_payload_detects_unsorted_timestamps(self):
        records = [_record(tx="a", ts=5.0), _record(tx="b", ts=3.0)]
        frame = TxFrame.from_records(records)
        rebuilt = TxFrame.from_payload(frame.to_payload(arrays=True))
        assert rebuilt.timestamps_sorted is False
        assert list(rebuilt) == records


class TestNdarrayViews:
    """Zero-copy ndarray views and the backend-gated columnar fast paths."""

    numpy_only = pytest.mark.skipif(
        not kernels.numpy_available(), reason="numpy backend unavailable"
    )

    def _frame(self, count=9):
        records = []
        for index in range(count):
            chain = (ChainId.EOS, ChainId.TEZOS, ChainId.XRP)[index % 3]
            records.append(
                _record(chain=chain, tx=f"tx{index}", ts=100.0 + index)
            )
        return TxFrame.from_records(records)

    @numpy_only
    def test_ndarray_view_is_zero_copy_and_read_only(self):
        np = kernels.numpy_module()
        frame = self._frame()
        view = frame.ndarray("timestamp")
        assert view.dtype == np.float64
        assert view.tolist() == list(frame.timestamp)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 0.0
        # Aliases the column buffer: no bytes were copied.
        assert np.shares_memory(view, np.frombuffer(frame.timestamp))

    def test_ndarray_rejects_object_columns(self):
        if not kernels.numpy_available():
            pytest.skip("numpy backend unavailable")
        frame = self._frame()
        with pytest.raises(KeyError):
            frame.ndarray("transaction_id")

    @numpy_only
    def test_as_index_rows_forms(self):
        np = kernels.numpy_module()
        assert as_index_rows(range(3)) == range(3)
        from array import array as stdarray

        rows = stdarray("q", [3, 1, 4])
        converted = as_index_rows(rows)
        assert converted.dtype == np.int64
        assert converted.tolist() == [3, 1, 4]
        assert as_index_rows(converted) is converted
        assert as_index_rows([2, 0]).tolist() == [2, 0]

    @numpy_only
    def test_gather_np_and_gather_array(self):
        from array import array as stdarray

        frame = self._frame()
        sliced = gather_np(frame.timestamp, range(1, 4))
        assert sliced.tolist() == list(frame.timestamp[1:4])
        rows = stdarray("q", [0, 5, 2])
        gathered = gather_array(frame.type_code, rows)
        assert isinstance(gathered, stdarray)
        assert gathered.typecode == frame.type_code.typecode
        assert list(gathered) == [frame.type_code[i] for i in rows]

    @numpy_only
    def test_payloads_identical_across_backends(self):
        from array import array as stdarray

        frame = self._frame(11)
        rows = stdarray("q", [0, 3, 4, 8, 10])
        for arrays in (False, True):
            with kernels.use_backend(kernels.PYTHON):
                reference = frame.to_payload(rows, arrays=arrays)
            with kernels.use_backend(kernels.NUMPY):
                vectorized = frame.to_payload(rows, arrays=arrays)
            assert vectorized["transaction_id"] == reference["transaction_id"]
            assert vectorized["metadata"] == reference["metadata"]
            for name, column in reference["columns"].items():
                assert list(vectorized["columns"][name]) == list(column), name

    @numpy_only
    def test_from_payload_accepts_ndarray_columns(self):
        np = kernels.numpy_module()
        frame = self._frame(6)
        payload = frame.to_payload(arrays=True)
        payload["columns"] = {
            name: np.asarray(column)
            for name, column in payload["columns"].items()
        }
        rebuilt = TxFrame.from_payload(payload)
        assert list(rebuilt) == list(frame)
        assert rebuilt.timestamps_sorted == frame.timestamps_sorted
        for chain in frame.chains():
            assert rebuilt.chain_bounds(chain) == frame.chain_bounds(chain)

    @numpy_only
    def test_extend_from_payload_identical_across_backends(self):
        frame = self._frame(10)
        # Unsorted tail exercises the sortedness bookkeeping.
        extra = TxFrame.from_records(
            [
                _record(chain=ChainId.XRP, tx="late", ts=50.0),
                _record(chain=ChainId.EOS, tx="later", ts=60.0),
            ]
        )
        payload = extra.to_payload(arrays=True)
        targets = {}
        for backend in (kernels.PYTHON, kernels.NUMPY):
            target = self._frame(10)
            with kernels.use_backend(backend):
                appended = target.extend_from_payload(payload)
            assert appended == 2
            targets[backend] = target
        reference, vectorized = targets[kernels.PYTHON], targets[kernels.NUMPY]
        assert list(vectorized) == list(reference)
        assert vectorized.timestamps_sorted == reference.timestamps_sorted
        for chain in reference.chains():
            assert list(vectorized.chain_view(chain).rows) == list(
                reference.chain_view(chain).rows
            )
            assert vectorized.chain_bounds(chain) == reference.chain_bounds(chain)

    @numpy_only
    def test_view_filters_identical_across_backends(self):
        from array import array as stdarray

        frame = self._frame(12)
        rows = stdarray("q", [0, 2, 3, 7, 9, 11])
        view = TxView(frame, rows)
        results = {}
        for backend in (kernels.PYTHON, kernels.NUMPY):
            with kernels.use_backend(backend):
                results[backend] = (
                    list(view.chain_view(ChainId.EOS).rows),
                    list(frame.time_window(102.0, 108.0, rows=rows).rows),
                    view.min_timestamp(),
                    view.max_timestamp(),
                )
        assert results[kernels.PYTHON] == results[kernels.NUMPY]
