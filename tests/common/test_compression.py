"""Tests for gzip size accounting."""

import pytest

from repro.common.compression import (
    CompressionStats,
    accumulate,
    compress_json,
    compress_records,
    decompress_json,
    estimate_storage_gb,
    measure_chunk,
    split_into_chunks,
)


class TestCompression:
    def test_round_trip(self):
        payload = {"blocks": [1, 2, 3], "chain": "eos"}
        assert decompress_json(compress_json(payload)) == payload

    def test_records_round_trip(self):
        records = [{"height": index} for index in range(10)]
        assert decompress_json(compress_records(records)) == records

    def test_measure_chunk_accounts_bytes(self):
        stats = measure_chunk({"data": "x" * 10_000})
        assert stats.raw_bytes > 0
        assert 0 < stats.compressed_bytes < stats.raw_bytes
        assert stats.chunk_count == 1
        assert 0 < stats.ratio < 1

    def test_empty_stats_ratio(self):
        assert CompressionStats().ratio == 0.0


class TestStatsAggregation:
    def test_merge(self):
        first = CompressionStats(raw_bytes=100, compressed_bytes=10, chunk_count=1)
        second = CompressionStats(raw_bytes=300, compressed_bytes=30, chunk_count=2)
        merged = first.merge(second)
        assert merged.raw_bytes == 400
        assert merged.compressed_bytes == 40
        assert merged.chunk_count == 3

    def test_accumulate(self):
        parts = [CompressionStats(10, 1, 1) for _ in range(5)]
        total = accumulate(parts)
        assert total.raw_bytes == 50
        assert total.chunk_count == 5

    def test_gigabytes(self):
        stats = CompressionStats(raw_bytes=0, compressed_bytes=2_000_000_000, chunk_count=1)
        assert stats.compressed_gigabytes == pytest.approx(2.0)


class TestEstimation:
    def test_full_scale_extrapolation(self):
        stats = CompressionStats(raw_bytes=0, compressed_bytes=1_000_000_000, chunk_count=1)
        assert estimate_storage_gb(stats, scale_factor=0.01) == pytest.approx(100.0)

    def test_scale_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            estimate_storage_gb(CompressionStats(), 0.0)


class TestChunking:
    def test_split_into_chunks(self):
        chunks = split_into_chunks(list(range(10)), 3)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_split_empty(self):
        assert split_into_chunks([], 3) == []

    def test_split_invalid_size(self):
        with pytest.raises(ValueError):
            split_into_chunks([1], 0)
