"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    AnalysisError,
    BlockNotFound,
    ChainError,
    CollectionError,
    ConfigurationError,
    EndpointUnavailable,
    RateLimitExceeded,
    ReproError,
    RpcError,
    TransactionRejected,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ConfigurationError,
            ChainError,
            TransactionRejected,
            RpcError,
            RateLimitExceeded,
            EndpointUnavailable,
            BlockNotFound,
            CollectionError,
            AnalysisError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exception_type):
        if exception_type is TransactionRejected:
            instance = exception_type("tecDUMMY")
        elif exception_type is RpcError:
            instance = exception_type(500, "boom")
        elif exception_type is BlockNotFound:
            instance = exception_type(42)
        elif exception_type in (RateLimitExceeded, EndpointUnavailable):
            instance = exception_type()
        else:
            instance = exception_type("boom")
        assert isinstance(instance, ReproError)

    def test_rpc_error_carries_code_and_message(self):
        error = RpcError(404, "missing")
        assert error.code == 404
        assert error.message == "missing"
        assert "404" in str(error)

    def test_rate_limit_is_a_429_rpc_error(self):
        error = RateLimitExceeded(retry_after=2.5)
        assert isinstance(error, RpcError)
        assert error.code == 429
        assert error.retry_after == 2.5

    def test_block_not_found_keeps_height(self):
        error = BlockNotFound(1234)
        assert error.height == 1234
        assert error.code == 404

    def test_transaction_rejected_keeps_code(self):
        error = TransactionRejected("tecPATH_DRY", "no path")
        assert error.code == "tecPATH_DRY"
        assert "no path" in str(error)

    def test_catching_repro_error_covers_chain_and_rpc_failures(self):
        for raiser in (lambda: (_ for _ in ()).throw(ChainError("x")),):
            with pytest.raises(ReproError):
                list(raiser())
