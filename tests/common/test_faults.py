"""Tests for the deterministic fault-injection registry."""

import pytest

from repro.common import faults
from repro.common.errors import (
    ConfigurationError,
    EndpointUnavailable,
    RateLimitExceeded,
    RpcError,
)
from repro.common.faults import FaultPlan, InjectedCrash


class TestSpecParsing:
    def test_single_rule(self):
        plan = FaultPlan.parse("store.chunk_write:mode=torn:nth=3")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.point == "store.chunk_write"
        assert rule.mode == "torn"
        assert rule.nth == 3

    def test_seed_and_multiple_rules(self):
        plan = FaultPlan.parse(
            "seed=42;crawler.fetch:mode=rate_limit:p=0.1:retry_after=40;"
            "checkpoint.save:mode=bitflip:nth=2"
        )
        assert plan.seed == 42
        assert len(plan.rules) == 2
        assert plan.rules[0].params == {"retry_after": "40"}

    def test_newlines_are_rule_separators(self):
        plan = FaultPlan.parse(
            "store.chunk_write:mode=torn:nth=1\ncrawler.head:mode=timeout:nth=1"
        )
        assert len(plan.rules) == 2

    def test_window_trigger(self):
        plan = FaultPlan.parse("crawler.fetch:mode=timeout:window=10..20:every=1")
        assert plan.rules[0].window == (10.0, 20.0)

    def test_empty_spec_is_a_no_fault_plan(self):
        plan = FaultPlan.parse("")
        assert plan.rules == []
        assert plan.check("store.chunk_write") is None

    def test_unknown_faultpoint_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown faultpoint"):
            FaultPlan.parse("store.chunk_wriet:mode=torn:nth=1")

    def test_unsupported_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="does not support mode"):
            FaultPlan.parse("store.manifest_commit:mode=torn:nth=1")

    def test_missing_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="no mode"):
            FaultPlan.parse("store.chunk_write:nth=1")

    def test_malformed_field_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            FaultPlan.parse("store.chunk_write:mode=torn:nth")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="outside"):
            FaultPlan.parse("crawler.fetch:mode=timeout:p=1.5")


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan.parse("pipeline.update:mode=crash:nth=3")
        fired = [plan.check("pipeline.update") is not None for _ in range(10)]
        assert fired == [False, False, True] + [False] * 7

    def test_every_fires_periodically(self):
        plan = FaultPlan.parse("crawler.fetch:mode=timeout:every=4")
        fired = [plan.check("crawler.fetch") is not None for _ in range(12)]
        assert fired == [False, False, False, True] * 3

    def test_times_caps_fires(self):
        plan = FaultPlan.parse("crawler.fetch:mode=timeout:every=2:times=2")
        fired = [plan.check("crawler.fetch") is not None for _ in range(10)]
        assert fired.count(True) == 2
        assert fired[1] and fired[3]

    def test_probability_is_deterministic(self):
        spec = "seed=9;crawler.fetch:mode=timeout:p=0.3"
        one = FaultPlan.parse(spec)
        two = FaultPlan.parse(spec)
        pattern_one = [one.check("crawler.fetch") is not None for _ in range(50)]
        pattern_two = [two.check("crawler.fetch") is not None for _ in range(50)]
        assert pattern_one == pattern_two
        assert 0 < pattern_one.count(True) < 50

    def test_probability_depends_on_seed(self):
        patterns = set()
        for seed in range(4):
            plan = FaultPlan.parse(f"seed={seed};crawler.fetch:mode=timeout:p=0.3")
            patterns.add(
                tuple(plan.check("crawler.fetch") is not None for _ in range(40))
            )
        assert len(patterns) > 1

    def test_window_only_fires_inside_the_interval(self):
        plan = FaultPlan.parse("crawler.fetch:mode=timeout:window=10..20:every=1:times=99")
        assert plan.check("crawler.fetch", now=5.0) is None
        assert plan.check("crawler.fetch", now=10.0) is not None
        assert plan.check("crawler.fetch", now=19.9) is not None
        assert plan.check("crawler.fetch", now=20.0) is None

    def test_window_never_matches_without_a_clock(self):
        plan = FaultPlan.parse("crawler.fetch:mode=timeout:window=0..1e9:every=1")
        assert plan.check("crawler.fetch") is None

    def test_triggers_combine_with_and_semantics(self):
        plan = FaultPlan.parse(
            "crawler.fetch:mode=timeout:every=2:window=100..200:times=99"
        )
        assert plan.check("crawler.fetch", now=50.0) is None  # hit 1: odd
        assert plan.check("crawler.fetch", now=50.0) is None  # hit 2: outside window
        assert plan.check("crawler.fetch", now=150.0) is None  # hit 3: odd
        assert plan.check("crawler.fetch", now=150.0) is not None  # hit 4: both

    def test_matching_rules_all_count_hits_first_fire_wins(self):
        plan = FaultPlan.parse(
            "crawler.fetch:mode=timeout:nth=2;crawler.fetch:mode=unavailable:nth=2"
        )
        assert plan.check("crawler.fetch") is None
        action = plan.check("crawler.fetch")
        assert action is not None and action.mode == "timeout"
        # The losing rule still counted both hits and consumed its fire
        # budget-free: it can never fire on hit 2 again.
        assert plan.rules[1].hits == 2

    def test_reset_rewinds_the_schedule(self):
        plan = FaultPlan.parse("pipeline.update:mode=crash:nth=1")
        assert plan.check("pipeline.update") is not None
        plan.reset()
        assert plan.events == []
        assert plan.check("pipeline.update") is not None


class TestActions:
    def test_torn_and_truncate_halve_the_blob(self):
        for mode in ("torn", "truncate"):
            plan = FaultPlan.parse(f"store.chunk_write:mode={mode}:nth=1")
            action = plan.check("store.chunk_write")
            assert action.corrupt(b"0123456789") == b"01234"

    def test_bitflip_changes_one_byte_same_length(self):
        plan = FaultPlan.parse("store.chunk_write:mode=bitflip:nth=1")
        action = plan.check("store.chunk_write")
        blob = bytes(range(64))
        mutated = action.corrupt(blob)
        assert len(mutated) == len(blob)
        assert sum(a != b for a, b in zip(blob, mutated)) == 1

    def test_bitflip_offset_is_deterministic(self):
        blobs = []
        for _ in range(2):
            plan = FaultPlan.parse("seed=5;checkpoint.save:mode=bitflip:nth=1")
            action = plan.check("checkpoint.save")
            blobs.append(action.corrupt(bytes(128)))
        assert blobs[0] == blobs[1]

    def test_endpoint_errors(self):
        cases = {
            "rate_limit": RateLimitExceeded,
            "unavailable": EndpointUnavailable,
            "timeout": RpcError,
            "garbage": RpcError,
        }
        for mode, exc_type in cases.items():
            plan = FaultPlan.parse(f"crawler.fetch:mode={mode}:nth=1")
            error = plan.check("crawler.fetch").endpoint_error()
            assert isinstance(error, exc_type)

    def test_rate_limit_carries_retry_after_param(self):
        plan = FaultPlan.parse("crawler.fetch:mode=rate_limit:nth=1:retry_after=55")
        error = plan.check("crawler.fetch").endpoint_error()
        assert error.retry_after == 55.0


class TestEventLog:
    def test_byte_identical_across_runs(self):
        spec = (
            "seed=3;crawler.fetch:mode=timeout:p=0.2;"
            "store.chunk_write:mode=torn:nth=2"
        )
        logs = []
        for _ in range(2):
            plan = FaultPlan.parse(spec)
            for hit in range(30):
                plan.check("crawler.fetch", now=float(hit))
                plan.check("store.chunk_write")
            plan.note("recovered")
            logs.append(plan.event_log())
        assert logs[0] == logs[1]
        assert logs[0]  # the schedule actually fired something

    def test_lines_are_sequenced_and_carry_the_clock(self):
        plan = FaultPlan.parse("crawler.fetch:mode=timeout:nth=1")
        plan.check("crawler.fetch", now=12.5)
        plan.note("recovered")
        lines = plan.event_log().splitlines()
        assert lines[0].startswith("00000 crawler.fetch mode=timeout hit=1 fire=1")
        assert "t=12.5" in lines[0]
        assert lines[1] == "00001 recovered"


class TestRegistry:
    def test_no_plan_is_a_no_op(self):
        with faults.use_plan(None):
            assert faults.check("store.chunk_write") is None
            faults.maybe_crash("pipeline.update")
            faults.raise_endpoint_fault("crawler.fetch")

    def test_use_plan_scopes_and_restores(self):
        plan = FaultPlan.parse("pipeline.update:mode=crash:nth=1")
        with faults.use_plan(plan):
            assert faults.active_plan() is plan
            with pytest.raises(InjectedCrash):
                faults.maybe_crash("pipeline.update")
        assert faults.active_plan() is not plan

    def test_unregistered_point_rejected_even_with_a_plan(self):
        with faults.use_plan(FaultPlan.parse("")):
            with pytest.raises(ConfigurationError, match="unregistered"):
                faults.check("store.not_a_point")

    def test_env_pickup(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "pipeline.update:mode=crash:nth=1")
        monkeypatch.setattr(faults, "_active", None)
        monkeypatch.setattr(faults, "_env_loaded", False)
        plan = faults.active_plan()
        assert plan is not None
        assert plan.rules[0].point == "pipeline.update"

    def test_explicit_install_beats_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "pipeline.update:mode=crash:nth=1")
        monkeypatch.setattr(faults, "_active", None)
        monkeypatch.setattr(faults, "_env_loaded", False)
        faults.install(None)
        try:
            assert faults.active_plan() is None
        finally:
            monkeypatch.setattr(faults, "_active", None)
            monkeypatch.setattr(faults, "_env_loaded", False)

    def test_raise_endpoint_fault_crash_mode(self):
        plan = FaultPlan.parse("crawler.head:mode=crash:nth=1")
        with faults.use_plan(plan):
            with pytest.raises(InjectedCrash):
                faults.raise_endpoint_fault("crawler.head")
