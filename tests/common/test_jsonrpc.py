"""Tests for the JSON-RPC framing layer."""

import pytest

from repro.common.errors import RpcError
from repro.common.jsonrpc import (
    INTERNAL_ERROR,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    RpcDispatcher,
    RpcRequest,
    RpcResponse,
)


class TestRequestResponse:
    def test_request_round_trip(self):
        request = RpcRequest(method="get_block", params={"height": 5}, request_id=9)
        rebuilt = RpcRequest.from_json(request.to_json())
        assert rebuilt.method == "get_block"
        assert rebuilt.params == {"height": 5}
        assert rebuilt.request_id == 9

    def test_request_rejects_invalid_json(self):
        with pytest.raises(RpcError) as excinfo:
            RpcRequest.from_json("{not json")
        assert excinfo.value.code == PARSE_ERROR

    def test_request_requires_method(self):
        with pytest.raises(RpcError):
            RpcRequest.from_json('{"id": 1}')

    def test_success_response_round_trip(self):
        response = RpcResponse.success(3, {"ok": True})
        rebuilt = RpcResponse.from_json(response.to_json())
        assert rebuilt.result == {"ok": True}
        assert not rebuilt.is_error
        assert rebuilt.raise_for_error() == {"ok": True}

    def test_error_response_raises(self):
        response = RpcResponse.failure(3, 404, "missing")
        assert response.is_error
        with pytest.raises(RpcError) as excinfo:
            response.raise_for_error()
        assert excinfo.value.code == 404


class TestDispatcher:
    def test_dispatch_registered_method(self):
        dispatcher = RpcDispatcher()
        dispatcher.register("add", lambda params: params["a"] + params["b"])
        response = dispatcher.dispatch(RpcRequest("add", {"a": 2, "b": 3}))
        assert response.result == 5

    def test_unknown_method(self):
        dispatcher = RpcDispatcher()
        response = dispatcher.dispatch(RpcRequest("nope", {}))
        assert response.is_error
        assert response.error["code"] == METHOD_NOT_FOUND

    def test_rpc_error_code_preserved(self):
        dispatcher = RpcDispatcher()

        def handler(params):
            raise RpcError(429, "slow down")

        dispatcher.register("limited", handler)
        response = dispatcher.dispatch(RpcRequest("limited", {}))
        assert response.error["code"] == 429

    def test_unexpected_exception_becomes_internal_error(self):
        dispatcher = RpcDispatcher()
        dispatcher.register("boom", lambda params: 1 / 0)
        response = dispatcher.dispatch(RpcRequest("boom", {}))
        assert response.error["code"] == INTERNAL_ERROR

    def test_dispatch_json_round_trip(self):
        dispatcher = RpcDispatcher()
        dispatcher.register("echo", lambda params: params)
        payload = RpcRequest("echo", {"x": 1}, request_id=7).to_json()
        response = RpcResponse.from_json(dispatcher.dispatch_json(payload))
        assert response.result == {"x": 1}
        assert response.request_id == 7

    def test_dispatch_json_malformed_payload(self):
        dispatcher = RpcDispatcher()
        response = RpcResponse.from_json(dispatcher.dispatch_json("garbage"))
        assert response.is_error

    def test_methods_listing(self):
        dispatcher = RpcDispatcher()
        dispatcher.register("b", lambda params: None)
        dispatcher.register("a", lambda params: None)
        assert dispatcher.methods() == ["a", "b"]
