"""Tests for token-bucket rate limiting and the sliding-window counter."""

import pytest

from repro.common.errors import RateLimitExceeded
from repro.common.ratelimit import SlidingWindowCounter, TokenBucket


class TestTokenBucket:
    def test_burst_up_to_capacity(self):
        bucket = TokenBucket(rate=1.0, capacity=5.0)
        assert all(bucket.try_acquire(now=0.0) for _ in range(5))
        assert not bucket.try_acquire(now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=2.0, capacity=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        # After one second two tokens have been replenished.
        assert bucket.try_acquire(1.0)
        assert bucket.try_acquire(1.0)
        assert not bucket.try_acquire(1.0)

    def test_refill_capped_at_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0)
        bucket.try_acquire(0.0)
        # A long idle period must not overfill the bucket.
        assert bucket.time_until_available(100.0, tokens=3.0) == 0.0
        assert bucket.time_until_available(100.0, tokens=4.0) > 0.0

    def test_acquire_or_raise_reports_retry_after(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        bucket.acquire_or_raise(0.0)
        with pytest.raises(RateLimitExceeded) as excinfo:
            bucket.acquire_or_raise(0.0)
        assert excinfo.value.retry_after == pytest.approx(1.0)
        assert excinfo.value.code == 429

    def test_retry_after_hint_allows_success(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        bucket.acquire_or_raise(0.0)
        with pytest.raises(RateLimitExceeded) as excinfo:
            bucket.acquire_or_raise(0.0)
        assert bucket.try_acquire(0.0 + excinfo.value.retry_after + 1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)

    def test_clock_never_goes_backwards_defensively(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0)
        assert bucket.try_acquire(10.0)
        # An earlier timestamp should not crash or mint extra tokens.
        assert bucket.try_acquire(5.0)
        assert not bucket.try_acquire(5.0)


class TestSlidingWindowCounter:
    def test_counts_within_window(self):
        counter = SlidingWindowCounter(window_seconds=10.0)
        counter.record(0.0, 3)
        counter.record(5.0, 2)
        assert counter.total(9.0) == 5

    def test_expires_old_events(self):
        counter = SlidingWindowCounter(window_seconds=10.0)
        counter.record(0.0, 3)
        counter.record(8.0, 1)
        assert counter.total(15.0) == 1

    def test_rate(self):
        counter = SlidingWindowCounter(window_seconds=4.0)
        counter.record(0.0, 8)
        assert counter.rate(1.0) == pytest.approx(2.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowCounter(window_seconds=0.0)
