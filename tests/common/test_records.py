"""Tests for the canonical block / transaction records."""

import pytest

from repro.common.records import (
    BlockRecord,
    ChainId,
    TransactionRecord,
    count_actions,
    count_transactions,
    iter_transactions,
    sort_blocks,
)


def make_record(tx_id="tx1", height=10, type_="transfer", **overrides):
    base = dict(
        chain=ChainId.EOS,
        transaction_id=tx_id,
        block_height=height,
        timestamp=1000.0,
        type=type_,
        sender="alice",
        receiver="bob",
    )
    base.update(overrides)
    return TransactionRecord(**base)


def make_block(height=10, records=None, chain=ChainId.EOS):
    records = records if records is not None else [make_record(height=height)]
    return BlockRecord(
        chain=chain,
        height=height,
        timestamp=1000.0 + height,
        producer="producer01a",
        transactions=tuple(records),
    )


class TestTransactionRecord:
    def test_round_trip_serialisation(self):
        record = make_record(amount=5.5, currency="EOS", metadata={"k": 1})
        rebuilt = TransactionRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_with_metadata_merges(self):
        record = make_record(metadata={"a": 1})
        updated = record.with_metadata(b=2)
        assert updated.metadata == {"a": 1, "b": 2}
        assert record.metadata == {"a": 1}
        assert updated.transaction_id == record.transaction_id

    def test_defaults(self):
        record = make_record()
        assert record.success is True
        assert record.error_code == ""
        assert record.fee == 0.0


class TestBlockRecord:
    def test_transaction_vs_action_count(self):
        # Two actions sharing one transaction id count as one transaction.
        records = [make_record("tx1"), make_record("tx1"), make_record("tx2")]
        block = make_block(records=records)
        assert block.action_count == 3
        assert block.transaction_count == 2

    def test_round_trip_serialisation(self):
        block = make_block(records=[make_record("tx1"), make_record("tx2")])
        rebuilt = BlockRecord.from_dict(block.to_dict())
        assert rebuilt.height == block.height
        assert rebuilt.transactions == block.transactions

    def test_list_transactions_normalised_to_tuple(self):
        block = BlockRecord(
            chain=ChainId.XRP,
            height=1,
            timestamp=0.0,
            producer="consensus",
            transactions=[make_record(chain=ChainId.XRP)],
        )
        assert isinstance(block.transactions, tuple)


class TestHelpers:
    def test_iter_transactions_flattens(self):
        blocks = [make_block(1), make_block(2, records=[make_record("a"), make_record("b")])]
        assert len(list(iter_transactions(blocks))) == 3

    def test_counts(self):
        blocks = [
            make_block(1, records=[make_record("tx1"), make_record("tx1")]),
            make_block(2, records=[make_record("tx2")]),
        ]
        assert count_transactions(blocks) == 2
        assert count_actions(blocks) == 3

    def test_sort_blocks(self):
        blocks = [make_block(5), make_block(1), make_block(3)]
        assert [block.height for block in sort_blocks(blocks)] == [1, 3, 5]

    def test_chain_id_values(self):
        assert ChainId("eos") is ChainId.EOS
        assert ChainId("tezos") is ChainId.TEZOS
        assert ChainId("xrp") is ChainId.XRP
        with pytest.raises(ValueError):
            ChainId("bitcoin")
