"""Tests for retry/backoff policies."""

import pytest

from repro.common.retry import BackoffPolicy, RetryBudget, compute_retry_schedule


class TestBackoffPolicy:
    def test_exponential_growth(self):
        policy = BackoffPolicy(base_delay=1.0, multiplier=2.0, max_delay=100.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 4.0

    def test_capped_at_max_delay(self):
        policy = BackoffPolicy(base_delay=1.0, multiplier=10.0, max_delay=5.0)
        assert policy.delay(3) == 5.0

    def test_jitter_stretches_delay_within_fraction(self):
        policy = BackoffPolicy(base_delay=1.0, multiplier=2.0, jitter_fraction=0.5)
        for attempt in range(6):
            base = BackoffPolicy(base_delay=1.0, multiplier=2.0).delay(attempt)
            jittered = policy.delay(attempt)
            assert base <= jittered < base * 1.5

    def test_jitter_is_per_attempt(self):
        policy = BackoffPolicy(base_delay=1.0, multiplier=1.0, jitter_fraction=0.5)
        # With a flat base schedule, distinct per-attempt jitter is the only
        # thing that can differentiate the delays.
        stretch = {policy.delay(attempt) / 1.0 for attempt in range(8)}
        assert len(stretch) > 1

    def test_jitter_is_deterministic_per_seed(self):
        one = BackoffPolicy(base_delay=1.0, jitter_fraction=0.5, jitter_seed=7)
        two = BackoffPolicy(base_delay=1.0, jitter_fraction=0.5, jitter_seed=7)
        assert [one.delay(a) for a in range(5)] == [two.delay(a) for a in range(5)]

    def test_jitter_seeds_decorrelate(self):
        schedules = [
            tuple(
                BackoffPolicy(
                    base_delay=1.0, jitter_fraction=0.5, jitter_seed=seed
                ).delay(attempt)
                for attempt in range(5)
            )
            for seed in range(4)
        ]
        assert len(set(schedules)) == len(schedules)

    def test_zero_jitter_is_exact(self):
        policy = BackoffPolicy(base_delay=1.0, multiplier=2.0, jitter_fraction=0.0)
        assert policy.delay(2) == 4.0

    def test_delays_schedule_length(self):
        policy = BackoffPolicy()
        assert len(list(policy.delays(4))) == 4

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": 0.0},
            {"multiplier": 0.5},
            {"base_delay": 10.0, "max_delay": 1.0},
            {"jitter_fraction": 1.5},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)


class TestRetryBudget:
    def test_consume_until_exhausted(self):
        budget = RetryBudget(max_attempts=3)
        assert [budget.consume() for _ in range(3)] == [0, 1, 2]
        assert budget.exhausted
        assert budget.remaining == 0
        with pytest.raises(RuntimeError):
            budget.consume()

    def test_reset(self):
        budget = RetryBudget(max_attempts=2)
        budget.consume()
        budget.reset()
        assert budget.remaining == 2

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            RetryBudget(max_attempts=0)


class TestRetrySchedule:
    def test_honours_retry_after_hint(self):
        policy = BackoffPolicy(base_delay=0.5)
        schedule = compute_retry_schedule(policy, 3, retry_after_hint=4.0)
        assert schedule[0] == 4.0
        assert schedule[1] == policy.delay(1)

    def test_hint_ignored_when_smaller(self):
        policy = BackoffPolicy(base_delay=2.0)
        schedule = compute_retry_schedule(policy, 2, retry_after_hint=0.1)
        assert schedule[0] == 2.0

    def test_no_hint(self):
        policy = BackoffPolicy(base_delay=1.0)
        assert compute_retry_schedule(policy, 2) == [policy.delay(0), policy.delay(1)]
