"""Tests for the deterministic RNG helpers."""

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        first = DeterministicRng(42)
        second = DeterministicRng(42)
        assert [first.randint(0, 100) for _ in range(10)] == [
            second.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        first = DeterministicRng(1)
        second = DeterministicRng(2)
        assert [first.randint(0, 10_000) for _ in range(5)] != [
            second.randint(0, 10_000) for _ in range(5)
        ]

    def test_fork_is_deterministic_and_independent(self):
        parent_a = DeterministicRng(7)
        parent_b = DeterministicRng(7)
        child_a = parent_a.fork("eos")
        child_b = parent_b.fork("eos")
        other = parent_a.fork("xrp")
        sequence_a = [child_a.random() for _ in range(5)]
        sequence_b = [child_b.random() for _ in range(5)]
        assert sequence_a == sequence_b
        assert sequence_a != [other.random() for _ in range(5)]


class TestDistributions:
    def test_categorical_respects_weights(self):
        rng = DeterministicRng(3)
        draws = [rng.categorical({"a": 0.9, "b": 0.1}) for _ in range(2000)]
        share_a = draws.count("a") / len(draws)
        assert 0.85 < share_a < 0.95

    def test_categorical_single_outcome(self):
        rng = DeterministicRng(3)
        assert rng.categorical({"only": 1.0}) == "only"

    def test_categorical_rejects_empty(self):
        rng = DeterministicRng(3)
        with pytest.raises(ValueError):
            rng.categorical({})

    def test_categorical_rejects_zero_total(self):
        rng = DeterministicRng(3)
        with pytest.raises(ValueError):
            rng.categorical({"a": 0.0})

    def test_zipf_is_skewed_towards_low_indices(self):
        rng = DeterministicRng(5)
        draws = [rng.zipf_index(100, exponent=1.2) for _ in range(3000)]
        share_top = sum(1 for value in draws if value < 10) / len(draws)
        assert share_top > 0.5
        assert all(0 <= value < 100 for value in draws)

    def test_zipf_single_element(self):
        rng = DeterministicRng(5)
        assert rng.zipf_index(1) == 0

    def test_zipf_rejects_empty_population(self):
        rng = DeterministicRng(5)
        with pytest.raises(ValueError):
            rng.zipf_index(0)

    def test_poisson_mean_roughly_matches(self):
        rng = DeterministicRng(11)
        draws = [rng.poisson(6.0) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 5.5 < mean < 6.5

    def test_poisson_zero_mean(self):
        rng = DeterministicRng(11)
        assert rng.poisson(0.0) == 0

    def test_poisson_large_mean_uses_normal_approximation(self):
        rng = DeterministicRng(11)
        draws = [rng.poisson(5_000.0) for _ in range(100)]
        mean = sum(draws) / len(draws)
        assert 4_800 < mean < 5_200

    def test_poisson_rejects_negative(self):
        rng = DeterministicRng(11)
        with pytest.raises(ValueError):
            rng.poisson(-1.0)

    def test_bernoulli_edges(self):
        rng = DeterministicRng(13)
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.0) is True

    def test_bernoulli_probability(self):
        rng = DeterministicRng(13)
        draws = [rng.bernoulli(0.25) for _ in range(4000)]
        share = sum(draws) / len(draws)
        assert 0.2 < share < 0.3

    def test_exponential_rejects_nonpositive_rate(self):
        rng = DeterministicRng(17)
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_hex_string_length_and_charset(self):
        rng = DeterministicRng(19)
        value = rng.hex_string(40)
        assert len(value) == 40
        assert set(value) <= set("0123456789abcdef")

    def test_pareto_amount_positive(self):
        rng = DeterministicRng(23)
        assert all(rng.pareto_amount(10.0) > 0 for _ in range(100))

    def test_pick_weighted_pairs_count(self):
        rng = DeterministicRng(29)
        pairs = rng.pick_weighted_pairs({"x": 1.0, "y": 2.0}, 7)
        assert len(pairs) == 7
        assert all(left in ("x", "y") and right in ("x", "y") for left, right in pairs)
