"""Unit tests for the restricted snapshot codec and its packing helpers."""

from __future__ import annotations

import sys
from array import array
from collections import Counter

import pytest

from repro.common import statecodec
from repro.common.statecodec import (
    CodecError,
    decode,
    encode,
    iter_code_table,
    pack_code_table,
    pack_str_table,
    pack_strings,
    restore_code_table,
    restore_str_table,
    unpack_strings,
)


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**63),
            2**63 - 1,
            2**200,  # big int beyond int64
            -(2**200),
            0.0,
            -1.5,
            float("inf"),
            1e308,
            "",
            "héllo Ø world",
            b"",
            b"\x00\xff raw",
            [],
            [1, "two", None, [3.0]],
            (),
            (1, (2, "three")),
            {},
            {"a": 1, "b": [2, 3], "c": {"nested": True}},
            {("tuple", 1): "keys work"},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_type_distinction_tuple_vs_list(self):
        assert decode(encode((1, 2))) == (1, 2)
        assert isinstance(decode(encode((1, 2))), tuple)
        assert isinstance(decode(encode([1, 2])), list)

    def test_bool_is_not_collapsed_to_int(self):
        decoded = decode(encode([True, 1, False, 0]))
        assert decoded == [True, 1, False, 0]
        assert isinstance(decoded[0], bool)
        assert isinstance(decoded[1], int) and not isinstance(decoded[1], bool)

    def test_nan_round_trips(self):
        decoded = decode(encode(float("nan")))
        assert decoded != decoded  # NaN

    @pytest.mark.parametrize("typecode", ["q", "d", "b", "i", "h"])
    def test_array_round_trip(self, typecode):
        values = [0, 1, 2, 3, 100] if typecode != "d" else [0.0, -1.25, 3.5e10]
        column = array(typecode, values)
        decoded = decode(encode(column))
        assert isinstance(decoded, array)
        assert decoded.typecode == typecode
        assert decoded.tolist() == column.tolist()

    def test_dict_preserves_insertion_order(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(decode(encode(value))) == ["z", "a", "m"]

    def test_header_records_byte_order(self):
        blob = encode([1])
        marker = blob[len(statecodec.MAGIC) : len(statecodec.MAGIC) + 1]
        expected = b"<" if sys.byteorder == "little" else b">"
        assert marker == expected


class TestStrictness:
    def test_unencodable_object_raises(self):
        class Sneaky:
            pass

        with pytest.raises(CodecError):
            encode(Sneaky())

    def test_set_is_not_encodable(self):
        # Big sets must be packed (pack_strings / code tables), never
        # serialised element-wise by the codec itself.
        with pytest.raises(CodecError):
            encode({1, 2, 3})

    def test_missing_header_rejected(self):
        with pytest.raises(CodecError):
            decode(b"not a snapshot")

    def test_truncated_buffer_rejected(self):
        blob = encode({"key": list(range(100))})
        for cut in (len(blob) // 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CodecError):
                decode(blob[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode(encode([1, 2]) + b"\x00")

    def test_unknown_tag_rejected(self):
        blob = bytearray(encode(None))
        blob[-1:] = b"Z"
        with pytest.raises(CodecError):
            decode(bytes(blob))

    def test_unknown_array_typecode_rejected(self):
        blob = bytearray(encode(array("q", [1])))
        # Tag 'a' is followed by the typecode byte; corrupt it.
        position = blob.index(b"a", len(statecodec.MAGIC))
        blob[position + 1 : position + 2] = b"z"
        with pytest.raises(CodecError):
            decode(bytes(blob))

    def test_torn_array_payload_rejected(self):
        blob = encode(array("q", [1, 2]))
        with pytest.raises(CodecError):
            decode(blob[:-3])

    def test_non_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode("a string")  # type: ignore[arg-type]

    def test_decode_never_executes_code(self):
        # A pickle stream is rejected at the header, long before any
        # instruction could matter.
        import pickle

        with pytest.raises(CodecError):
            decode(pickle.dumps({"innocent": "looking"}))


class TestPackStrings:
    @pytest.mark.parametrize(
        "values",
        [
            [],
            [""],
            ["single"],
            ["a", "b", "a", ""],
            ["newline\nok", "tab\tok", "unicode é中"],
        ],
    )
    def test_round_trip(self, values):
        assert unpack_strings(pack_strings(values)) == values

    def test_nul_containing_strings_fall_back_to_lengths(self):
        values = ["with\x00nul", "plain", "\x00", ""]
        payload = pack_strings(values)
        assert "lengths" in payload
        assert unpack_strings(payload) == values

    def test_fast_path_has_no_lengths(self):
        assert "lengths" not in pack_strings(["a", "b"])

    def test_inconsistent_payload_rejected(self):
        payload = pack_strings(["a", "b"])
        payload["n"] = 3
        with pytest.raises(CodecError):
            unpack_strings(payload)

    def test_codec_round_trip(self):
        values = ["x" * 40, "", "y\x00z"]
        assert unpack_strings(decode(encode(pack_strings(values)))) == values


class TestCodeTables:
    def test_scalar_keys_round_trip_in_order(self):
        counts = Counter()
        for key in [5, 3, 5, 9, 3, 5]:
            counts[key] += 1
        payload = decode(encode(pack_code_table(counts, 1)))
        assert list(iter_code_table(payload)) == [(5, 3), (3, 2), (9, 1)]

    def test_tuple_keys_round_trip_in_order(self):
        counts = Counter()
        for key in [(1, 2, 3), (0, 0, 0), (1, 2, 3)]:
            counts[key] += 1
        payload = decode(encode(pack_code_table(counts, 3)))
        assert list(iter_code_table(payload)) == [((1, 2, 3), 2), ((0, 0, 0), 1)]

    def test_empty_table(self):
        payload = pack_code_table({}, 2)
        assert list(iter_code_table(payload)) == []
        target = Counter()
        restore_code_table(target, payload)
        assert target == Counter()

    def test_restore_into_empty_and_nonempty(self):
        source = Counter({(1, 2): 3, (4, 5): 6})
        payload = pack_code_table(source, 2)
        fresh = Counter()
        restore_code_table(fresh, payload)
        assert fresh == source
        assert list(fresh) == list(source)  # insertion order preserved
        restore_code_table(fresh, payload)
        assert fresh == Counter({(1, 2): 6, (4, 5): 12})

    def test_inconsistent_table_rejected(self):
        payload = pack_code_table(Counter({1: 1}), 1)
        payload["w"] = 2
        with pytest.raises(CodecError):
            list(iter_code_table(payload))

    def test_str_table_round_trip(self):
        source = {"endorsement": 10, "manager": 3}
        payload = decode(encode(pack_str_table(source)))
        fresh = {}
        restore_str_table(fresh, payload)
        assert fresh == source
        assert list(fresh) == list(source)
        restore_str_table(fresh, payload)
        assert fresh == {"endorsement": 20, "manager": 6}
