"""Shared fixtures: scaled-down workloads generated once per test session.

Generating the two-week "small" scenario takes a couple of seconds per
chain, so the generated blocks (and the generators, which retain the chain
state the case-study analyses need) are session-scoped and shared by every
analysis and integration test.
"""

from __future__ import annotations

import pytest

from repro.common.records import iter_transactions
from repro.eos.workload import EosWorkloadGenerator
from repro.scenarios import small_scenario
from repro.tezos.workload import TezosWorkloadGenerator
from repro.xrp.workload import XrpWorkloadGenerator


@pytest.fixture(scope="session")
def scenario():
    """The two-week scenario straddling the EIDOS launch and a spam wave."""
    return small_scenario(seed=7)


@pytest.fixture(scope="session")
def eos_generator(scenario):
    generator = EosWorkloadGenerator(scenario.eos)
    generator.blocks = generator.generate()
    return generator


@pytest.fixture(scope="session")
def eos_blocks(eos_generator):
    return eos_generator.blocks


@pytest.fixture(scope="session")
def eos_records(eos_blocks):
    return list(iter_transactions(eos_blocks))


@pytest.fixture(scope="session")
def tezos_generator(scenario):
    generator = TezosWorkloadGenerator(scenario.tezos)
    generator.blocks = generator.generate()
    return generator


@pytest.fixture(scope="session")
def tezos_blocks(tezos_generator):
    return tezos_generator.blocks


@pytest.fixture(scope="session")
def tezos_records(tezos_blocks):
    return list(iter_transactions(tezos_blocks))


@pytest.fixture(scope="session")
def xrp_generator(scenario):
    generator = XrpWorkloadGenerator(scenario.xrp)
    generator.blocks = generator.generate()
    return generator


@pytest.fixture(scope="session")
def xrp_blocks(xrp_generator):
    return xrp_generator.blocks


@pytest.fixture(scope="session")
def xrp_records(xrp_blocks):
    return list(iter_transactions(xrp_blocks))
