"""Tests for the EOS account model."""

import pytest

from repro.common.errors import ChainError
from repro.eos.accounts import (
    EosAccount,
    EosAccountKind,
    EosAccountRegistry,
    PRIVILEGED_SYSTEM_ACCOUNTS,
    is_valid_eos_name,
)


class TestNameValidation:
    @pytest.mark.parametrize("name", ["eosio", "eosio.token", "betdicetasks", "a1b2c3", "user.name"])
    def test_valid_names(self, name):
        assert is_valid_eos_name(name)

    @pytest.mark.parametrize(
        "name",
        ["", "thisnameiswaytoolong", "UPPERCASE", "has_underscore", "digit90", ".leading", "trailing."],
    )
    def test_invalid_names(self, name):
        assert not is_valid_eos_name(name)

    def test_account_constructor_validates(self):
        with pytest.raises(ChainError):
            EosAccount(name="Invalid!")


class TestBalances:
    def test_credit_and_debit_eos(self):
        account = EosAccount(name="alice")
        account.credit(10.0)
        account.debit(4.0)
        assert account.balance() == pytest.approx(6.0)

    def test_debit_insufficient_raises(self):
        account = EosAccount(name="alice", eos_balance=1.0)
        with pytest.raises(ChainError):
            account.debit(2.0)

    def test_token_balances_are_per_symbol(self):
        account = EosAccount(name="alice")
        account.credit(5.0, "EIDOS")
        account.credit(2.0, "USDT")
        assert account.balance("EIDOS") == 5.0
        assert account.balance("USDT") == 2.0
        assert account.balance() == 0.0

    def test_negative_amounts_rejected(self):
        account = EosAccount(name="alice")
        with pytest.raises(ChainError):
            account.credit(-1.0)
        with pytest.raises(ChainError):
            account.debit(-1.0)


class TestRegistry:
    def test_system_accounts_bootstrapped(self):
        registry = EosAccountRegistry()
        for name in PRIVILEGED_SYSTEM_ACCOUNTS:
            assert name in registry
            assert registry.get(name).is_privileged
        assert registry.get("eosio.token").is_system
        assert not registry.get("eosio.token").is_privileged

    def test_create_regular_account(self):
        registry = EosAccountRegistry()
        account = registry.create("newuser", creator="eosio", initial_balance=3.0)
        assert account.kind is EosAccountKind.REGULAR
        assert account.creator == "eosio"
        assert registry.get("newuser").balance() == 3.0

    def test_duplicate_creation_rejected(self):
        registry = EosAccountRegistry()
        registry.create("newuser")
        with pytest.raises(ChainError):
            registry.create("newuser")

    def test_unknown_creator_rejected(self):
        registry = EosAccountRegistry()
        with pytest.raises(ChainError):
            registry.create("newuser", creator="ghost")

    def test_get_unknown_raises_maybe_get_returns_none(self):
        registry = EosAccountRegistry()
        with pytest.raises(ChainError):
            registry.get("ghost")
        assert registry.maybe_get("ghost") is None

    def test_partitions(self):
        registry = EosAccountRegistry()
        registry.create("userone")
        system = {account.name for account in registry.system_accounts()}
        regular = {account.name for account in registry.regular_accounts()}
        assert "eosio" in system
        assert "userone" in regular
        assert not system & regular

    def test_total_supply_conserved_by_transfer(self):
        registry = EosAccountRegistry()
        registry.create("alice", initial_balance=100.0)
        registry.create("bob")
        before = registry.total_supply()
        registry.get("alice").debit(40.0)
        registry.get("bob").credit(40.0)
        assert registry.total_supply() == pytest.approx(before)
