"""Tests for the EOS action vocabulary and Figure 1 grouping."""

import pytest

from repro.eos.actions import (
    EosAction,
    SystemActionGroup,
    classify_system_action,
    make_buyram,
    make_delegatebw,
    make_newaccount,
    make_transfer,
    make_voteproducer,
)


class TestClassification:
    def test_transfer_on_token_contract_is_p2p(self):
        assert (
            classify_system_action("transfer", "eosio.token")
            is SystemActionGroup.P2P_TRANSACTION
        )

    def test_transfer_on_user_token_contract_is_p2p(self):
        # User-issued tokens follow the standard interface (§2.3.1), so the
        # paper still counts their transfers in the P2P row.
        assert (
            classify_system_action("transfer", "eidosonecoin")
            is SystemActionGroup.P2P_TRANSACTION
        )

    @pytest.mark.parametrize("name", ["newaccount", "bidname", "updateauth", "linkauth", "deposit"])
    def test_account_actions(self, name):
        assert classify_system_action(name, "eosio") is SystemActionGroup.ACCOUNT_ACTION

    @pytest.mark.parametrize("name", ["delegatebw", "buyram", "voteproducer", "rentcpu"])
    def test_other_actions(self, name):
        assert classify_system_action(name, "eosio") is SystemActionGroup.OTHER_ACTION

    def test_user_defined_action(self):
        assert (
            classify_system_action("verifytrade2", "whaleextrust")
            is SystemActionGroup.USER_DEFINED
        )

    def test_unknown_system_action_falls_back_to_other(self):
        assert classify_system_action("somethingnew", "eosio") is SystemActionGroup.OTHER_ACTION


class TestBuilders:
    def test_make_transfer_targets_token_contract(self):
        action = make_transfer("eosio.token", "alice", "bob", 2.5, "EOS", memo="hi")
        assert action.receiver == "eosio.token"
        assert action.data["to"] == "bob"
        assert action.data["quantity"] == 2.5
        assert action.group is SystemActionGroup.P2P_TRANSACTION
        assert action.is_system

    def test_make_newaccount(self):
        action = make_newaccount("eosio", "fresh")
        assert action.name == "newaccount"
        assert action.data["name"] == "fresh"

    def test_make_delegatebw(self):
        action = make_delegatebw("alice", "alice", cpu=5.0, net=1.0)
        assert action.data["stake_cpu"] == 5.0

    def test_make_buyram(self):
        action = make_buyram("alice", "alice", 8192)
        assert action.data["bytes"] == 8192

    def test_make_voteproducer(self):
        action = make_voteproducer("alice", ("producer01a", "producer02a"))
        assert action.data["producers"] == ["producer01a", "producer02a"]

    def test_to_dict(self):
        action = EosAction(contract="c", name="n", actor="a", receiver="r", data={"k": 1})
        assert action.to_dict() == {
            "contract": "c",
            "name": "n",
            "actor": "a",
            "receiver": "r",
            "data": {"k": 1},
        }
