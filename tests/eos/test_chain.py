"""Tests for the EOS DPoS chain simulator."""

import pytest

from repro.common.errors import ChainError
from repro.common.records import ChainId
from repro.eos.actions import EosAction, make_transfer
from repro.eos.chain import (
    ACTIVE_PRODUCER_COUNT,
    BLOCKS_PER_PRODUCER_TURN,
    BLOCKS_PER_ROUND,
    EosChain,
    EosChainConfig,
    EosTransaction,
)
from repro.eos.contracts import EidosContract, TokenContract


@pytest.fixture
def chain():
    instance = EosChain()
    instance.deploy_contract(TokenContract("eosio.token", symbol="EOS"))
    instance.accounts.create("alice", initial_balance=100.0)
    instance.accounts.create("bob", initial_balance=10.0)
    instance.resources.stake_cpu("alice", 100.0)
    instance.resources.stake_cpu("bob", 100.0)
    return instance


def transfer_tx(tx_id, sender="alice", receiver="bob", amount=1.0):
    return EosTransaction(
        transaction_id=tx_id,
        actions=(make_transfer("eosio.token", sender, receiver, amount, "EOS"),),
    )


class TestSchedule:
    def test_round_structure(self):
        assert BLOCKS_PER_ROUND == 126
        assert ACTIVE_PRODUCER_COUNT == 21
        assert BLOCKS_PER_PRODUCER_TURN == 6

    def test_producer_rotation_in_turns_of_six(self, chain):
        start = chain.config.start_height
        first_turn = {chain.producer_for_height(start + offset) for offset in range(6)}
        assert len(first_turn) == 1
        seventh = chain.producer_for_height(start + 6)
        assert seventh not in first_turn

    def test_schedule_covers_21_producers_per_round(self, chain):
        start = chain.config.start_height
        producers = {
            chain.producer_for_height(start + offset) for offset in range(BLOCKS_PER_ROUND)
        }
        assert len(producers) == ACTIVE_PRODUCER_COUNT

    def test_schedule_rotation_requires_quorum(self, chain):
        chain.vote_producer("producer01a", 100.0)
        with pytest.raises(ChainError):
            chain.rotate_schedule(approvals=10)
        assert chain.rotate_schedule(approvals=15)

    def test_compute_schedule_ranks_by_stake(self, chain):
        for index, name in enumerate(chain.config.producers):
            chain.vote_producer(name, float(index))
        schedule = chain.compute_schedule()
        assert schedule[0] == chain.config.producers[-1]
        assert len(schedule) == ACTIVE_PRODUCER_COUNT

    def test_too_few_producers_rejected(self):
        with pytest.raises(ChainError):
            EosChainConfig(producers=("producer01a",))


class TestBlockProduction:
    def test_produce_block_advances_height_and_clock(self, chain):
        start_time = chain.clock.now
        block = chain.produce_block([transfer_tx("tx1")])
        assert block.height == chain.config.start_height
        assert chain.head_height == block.height
        assert chain.clock.now == start_time + chain.config.block_interval
        assert block.chain is ChainId.EOS

    def test_transfer_updates_balances(self, chain):
        chain.produce_block([transfer_tx("tx1", amount=30.0)])
        assert chain.accounts.get("alice").balance() == 70.0
        assert chain.accounts.get("bob").balance() == 40.0

    def test_records_use_contract_as_receiver(self, chain):
        block = chain.produce_block([transfer_tx("tx1")])
        record = block.transactions[0]
        assert record.receiver == "eosio.token"
        assert record.metadata["transfer_to"] == "bob"
        assert record.sender == "alice"

    def test_failed_action_recorded_as_unsuccessful(self, chain):
        block = chain.produce_block([transfer_tx("tx1", sender="bob", amount=999.0)])
        record = block.transactions[0]
        assert record.success is False
        assert "error" in record.metadata

    def test_inline_actions_are_included_in_block(self, chain):
        chain.deploy_contract(EidosContract("eidosonecoin"))
        chain.accounts.get("eidosonecoin").credit(100.0)
        claim = EosTransaction(
            transaction_id="claim1",
            actions=(
                make_transfer("eosio.token", "alice", "eidosonecoin", 0.5, "EOS"),
                EosAction(
                    contract="eidosonecoin",
                    name="transfer",
                    actor="alice",
                    receiver="eidosonecoin",
                    data={"from": "alice", "to": "eidosonecoin", "quantity": 0.5, "symbol": "EOS"},
                ),
            ),
        )
        block = chain.produce_block([claim])
        # deposit + notification + inline refund + inline grant = 4 actions.
        assert block.action_count == 4
        assert block.transaction_count == 1
        inline = [record for record in block.transactions if record.metadata.get("inline")]
        assert len(inline) == 2
        # The boomerang returns the EOS to the claimer.
        assert chain.accounts.get("alice").balance() == pytest.approx(100.0)
        assert chain.accounts.get("alice").balance("EIDOS") > 0.0

    def test_transaction_without_cpu_is_rejected(self, chain):
        chain.accounts.create("pauper", initial_balance=1.0)
        block = chain.produce_block(
            [transfer_tx("tx1", sender="pauper", receiver="bob", amount=0.5)]
        )
        assert block.action_count == 0
        assert chain.rejected_transactions == 1

    def test_block_lookup(self, chain):
        produced = chain.produce_block([transfer_tx("tx1")])
        assert chain.block_at(produced.height) == produced
        with pytest.raises(ChainError):
            chain.block_at(produced.height + 100)

    def test_head_of_empty_chain(self):
        assert EosChain().head() is None

    def test_block_links_previous_id(self, chain):
        first = chain.produce_block([transfer_tx("tx1")])
        second = chain.produce_block([transfer_tx("tx2")])
        assert second.previous_id == first.block_id

    def test_empty_transaction_rejected(self):
        with pytest.raises(ChainError):
            EosTransaction(transaction_id="empty", actions=())

    def test_unknown_contract_action_still_recorded(self, chain):
        action = EosAction(
            contract="mysterydapp", name="doit", actor="alice", receiver="mysterydapp"
        )
        block = chain.produce_block(
            [EosTransaction(transaction_id="tx1", actions=(action,))]
        )
        assert block.action_count == 1
        assert block.transactions[0].metadata.get("unhandled") is True
