"""Tests for the simulated EOS contracts."""

import pytest

from repro.common.errors import ChainError
from repro.eos.accounts import EosAccountRegistry
from repro.eos.actions import EosAction, make_transfer
from repro.eos.contracts import (
    BettingContract,
    ContentPaymentContract,
    ContractRegistry,
    DexContract,
    EidosContract,
    GameContract,
    TokenContract,
)


@pytest.fixture
def registry():
    reg = EosAccountRegistry()
    reg.create("alice", initial_balance=100.0)
    reg.create("bob", initial_balance=10.0)
    return reg


class TestTokenContract:
    def test_transfer_moves_balance(self, registry):
        token = TokenContract("eosio.token", symbol="EOS")
        action = make_transfer("eosio.token", "alice", "bob", 25.0, "EOS")
        result = token.apply(action, registry, timestamp=0.0)
        assert result.applied
        assert registry.get("alice").balance() == 75.0
        assert registry.get("bob").balance() == 35.0

    def test_transfer_insufficient_funds_raises(self, registry):
        token = TokenContract("eosio.token", symbol="EOS")
        action = make_transfer("eosio.token", "bob", "alice", 999.0, "EOS")
        with pytest.raises(ChainError):
            token.apply(action, registry, timestamp=0.0)

    def test_issue_respects_max_supply(self, registry):
        token = TokenContract("mytoken", symbol="MYT", max_supply=100.0)
        issue = EosAction(
            contract="mytoken", name="issue", actor="alice", receiver="mytoken",
            data={"to": "alice", "quantity": 60.0},
        )
        token.apply(issue, registry, 0.0)
        assert registry.get("alice").balance("MYT") == 60.0
        with pytest.raises(ChainError):
            token.apply(
                EosAction(
                    contract="mytoken", name="issue", actor="alice", receiver="mytoken",
                    data={"to": "alice", "quantity": 50.0},
                ),
                registry,
                0.0,
            )

    def test_negative_transfer_rejected(self, registry):
        token = TokenContract("eosio.token", symbol="EOS")
        action = make_transfer("eosio.token", "alice", "bob", -1.0, "EOS")
        with pytest.raises(ChainError):
            token.apply(action, registry, 0.0)


class TestEidosContract:
    def test_claim_produces_boomerang_inline_actions(self, registry):
        eidos = EidosContract("eidosonecoin", initial_pool=1_000.0)
        registry.create("eidosonecoin", initial_balance=0.0)
        claim = EosAction(
            contract="eidosonecoin", name="transfer", actor="alice", receiver="eidosonecoin",
            data={"from": "alice", "to": "eidosonecoin", "quantity": 0.0001, "symbol": "EOS"},
        )
        result = eidos.apply(claim, registry, 0.0)
        assert result.notes["boomerang"] is True
        assert len(result.inline_actions) == 2
        refund, grant = result.inline_actions
        assert refund.contract == "eosio.token"
        assert refund.data["to"] == "alice"
        assert refund.data["quantity"] == 0.0001
        assert grant.contract == "eidosonecoin"
        assert grant.data["symbol"] == "EIDOS" or grant.data.get("memo") == "mining"
        assert eidos.claims == 1
        assert eidos.pool < 1_000.0

    def test_inline_grant_credits_recipient_without_recursion(self, registry):
        eidos = EidosContract("eidosonecoin", initial_pool=1_000.0)
        registry.create("eidosonecoin")
        grant = EosAction(
            contract="eidosonecoin", name="transfer", actor="eidosonecoin", receiver="eidosonecoin",
            data={"from": "eidosonecoin", "to": "alice", "quantity": 0.5, "symbol": "EIDOS"},
        )
        result = eidos.apply(grant, registry, 0.0)
        assert result.inline_actions == []
        assert registry.get("alice").balance("EIDOS") == 0.5

    def test_payout_is_fraction_of_remaining_pool(self, registry):
        eidos = EidosContract("eidosonecoin", initial_pool=10_000.0)
        registry.create("eidosonecoin")
        claim = EosAction(
            contract="eidosonecoin", name="transfer", actor="alice", receiver="eidosonecoin",
            data={"from": "alice", "quantity": 1.0},
        )
        first = eidos.apply(claim, registry, 0.0).notes["payout"]
        second = eidos.apply(claim, registry, 0.0).notes["payout"]
        assert first == pytest.approx(10_000.0 * EidosContract.PAYOUT_FRACTION)
        assert second < first


class TestDexContract:
    def test_self_trade_moves_nothing(self, registry):
        dex = DexContract("whaleextrust")
        registry.get("alice").credit(50.0, "USDT")
        action = EosAction(
            contract="whaleextrust", name="verifytrade2", actor="alice", receiver="whaleextrust",
            data={"buyer": "alice", "seller": "alice", "symbol": "USDT", "amount": 10.0, "price": 1.0},
        )
        result = dex.apply(action, registry, 0.0)
        assert result.notes["self_trade"] is True
        assert registry.get("alice").balance("USDT") == 50.0
        assert dex.self_trade_fraction() == 1.0

    def test_genuine_trade_moves_tokens(self, registry):
        dex = DexContract("whaleextrust")
        registry.get("alice").credit(50.0, "USDT")
        action = EosAction(
            contract="whaleextrust", name="verifytrade2", actor="bob", receiver="whaleextrust",
            data={"buyer": "bob", "seller": "alice", "symbol": "USDT", "amount": 20.0, "price": 1.0},
        )
        result = dex.apply(action, registry, 0.0)
        assert result.notes["self_trade"] is False
        assert registry.get("bob").balance("USDT") == 20.0
        assert registry.get("alice").balance("USDT") == 30.0

    def test_bookkeeping_actions_do_not_record_trades(self, registry):
        dex = DexContract("whaleextrust")
        action = EosAction(
            contract="whaleextrust", name="cancelorder", actor="alice", receiver="whaleextrust",
        )
        dex.apply(action, registry, 0.0)
        assert dex.trades == []
        assert dex.self_trade_fraction() == 0.0


class TestOtherContracts:
    def test_betting_contract_tracks_wagers(self, registry):
        betting = BettingContract("betdicetasks")
        bet = EosAction(
            contract="betdicetasks", name="betrecord", actor="alice", receiver="betdicetasks",
            data={"wager": 4.0},
        )
        payout = EosAction(
            contract="betdicetasks", name="betpayrecord", actor="alice", receiver="betdicetasks",
            data={"payout": 2.0},
        )
        log = EosAction(contract="betdicetasks", name="log", actor="alice", receiver="betdicetasks")
        betting.apply(bet, registry, 0.0)
        betting.apply(payout, registry, 0.0)
        result = betting.apply(log, registry, 0.0)
        assert betting.total_wagered == 4.0
        assert betting.total_paid_out == 2.0
        assert result.notes["bookkeeping"] is True

    def test_content_contract_counts_records_and_logins(self, registry):
        content = ContentPaymentContract("pornhashbaby")
        for _ in range(3):
            content.apply(
                EosAction(contract="pornhashbaby", name="record", actor="alice", receiver="pornhashbaby"),
                registry,
                0.0,
            )
        content.apply(
            EosAction(contract="pornhashbaby", name="login", actor="alice", receiver="pornhashbaby"),
            registry,
            0.0,
        )
        assert content.records == 3
        assert content.logins == 1

    def test_game_contract_counts_events(self, registry):
        game = GameContract("eossanguoone")
        for name in ("combat", "combat", "reveal2"):
            game.apply(
                EosAction(contract="eossanguoone", name=name, actor="alice", receiver="eossanguoone"),
                registry,
                0.0,
            )
        assert game.events == {"combat": 2, "reveal2": 1}

    def test_contract_registry(self):
        contracts = ContractRegistry()
        dex = DexContract("whaleextrust")
        contracts.deploy(dex)
        assert "whaleextrust" in contracts
        assert contracts.get("whaleextrust") is dex
        assert contracts.get("ghost") is None
        assert contracts.accounts() == ["whaleextrust"]

    def test_handles_respects_action_names(self):
        betting = BettingContract("betdicetasks")
        assert betting.handles("betrecord")
        assert not betting.handles("verifytrade2")
