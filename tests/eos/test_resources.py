"""Tests for the EOS resource market and congestion mode."""

import pytest

from repro.eos.resources import EosResourceMarket


@pytest.fixture
def market():
    return EosResourceMarket(
        total_cpu_us_per_block=1_000.0,
        congestion_threshold=0.8,
        leniency_multiplier=10.0,
        base_cpu_price=0.001,
    )


class TestStaking:
    def test_stake_and_unstake(self, market):
        market.stake_cpu("alice", 50.0)
        market.stake_cpu("alice", 25.0)
        assert market.staked("alice") == 75.0
        market.unstake_cpu("alice", 100.0)
        assert market.staked("alice") == 0.0

    def test_negative_stake_rejected(self, market):
        with pytest.raises(ValueError):
            market.stake_cpu("alice", -1.0)

    def test_entitlement_proportional_to_stake(self, market):
        market.stake_cpu("alice", 75.0)
        market.stake_cpu("bob", 25.0)
        # Normal mode multiplies the staked share by the leniency factor.
        assert market.cpu_entitlement_us("alice") == pytest.approx(0.75 * 1_000.0 * 10.0)
        assert market.cpu_entitlement_us("bob") == pytest.approx(0.25 * 1_000.0 * 10.0)

    def test_no_stake_no_entitlement(self, market):
        assert market.cpu_entitlement_us("ghost") == 0.0


class TestCongestionMode:
    def test_congestion_triggers_on_high_utilisation(self, market):
        market.stake_cpu("alice", 100.0)
        assert market.charge("alice", 900.0)
        sample = market.end_block(timestamp=1.0)
        assert sample.congested
        assert market.congested

    def test_congestion_clears_when_load_drops(self, market):
        market.stake_cpu("alice", 100.0)
        market.charge("alice", 900.0)
        market.end_block(1.0)
        market.charge("alice", 10.0)
        sample = market.end_block(2.0)
        assert not sample.congested

    def test_congested_mode_limits_to_staked_share(self, market):
        market.stake_cpu("alice", 50.0)
        market.stake_cpu("bob", 50.0)
        market.charge("alice", 900.0)
        market.end_block(1.0)
        # Now congested: entitlement falls back to the bare staked share.
        assert market.cpu_entitlement_us("alice") == pytest.approx(500.0)
        assert market.can_execute("alice", 400.0)
        assert not market.can_execute("alice", 600.0)

    def test_charge_rejected_beyond_entitlement(self, market):
        market.stake_cpu("alice", 1.0)
        market.stake_cpu("bob", 99.0)
        # Alice's normal-mode entitlement is 1% * 1000 * 10 = 100 us.
        assert market.charge("alice", 90.0)
        assert not market.charge("alice", 50.0)

    def test_usage_resets_each_block(self, market):
        market.stake_cpu("alice", 100.0)
        market.charge("alice", 500.0)
        market.end_block(1.0)
        assert market.utilization() == 0.0
        assert market.charge("alice", 500.0)


class TestCpuPrice:
    def test_price_spikes_with_utilisation(self, market):
        market.stake_cpu("alice", 100.0)
        idle_price = market.cpu_price()
        market.charge("alice", 990.0)
        busy_price = market.cpu_price()
        assert busy_price > idle_price * 100

    def test_price_history_recorded(self, market):
        market.stake_cpu("alice", 100.0)
        market.charge("alice", 100.0)
        market.end_block(1.0)
        market.charge("alice", 950.0)
        market.end_block(2.0)
        history = market.history()
        assert len(history) == 2
        assert history[1].cpu_price > history[0].cpu_price

    def test_congestion_periods(self, market):
        market.stake_cpu("alice", 100.0)
        market.charge("alice", 100.0)
        market.end_block(1.0)
        market.charge("alice", 950.0)
        market.end_block(2.0)
        market.charge("alice", 950.0)
        market.end_block(3.0)
        market.charge("alice", 10.0)
        market.end_block(4.0)
        periods = market.congestion_periods()
        assert periods == [(2.0, 4.0)]


class TestValidation:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EosResourceMarket(total_cpu_us_per_block=0.0)
        with pytest.raises(ValueError):
            EosResourceMarket(congestion_threshold=0.0)
        with pytest.raises(ValueError):
            EosResourceMarket(congestion_threshold=1.5)
