"""Tests for the simulated EOS RPC endpoint."""

import pytest

from repro.common.errors import EndpointUnavailable, RateLimitExceeded, RpcError
from repro.eos.chain import EosChain, EosTransaction
from repro.eos.actions import make_transfer
from repro.eos.contracts import TokenContract
from repro.eos.rpc import EndpointProfile, EosRpcEndpoint


@pytest.fixture
def chain():
    instance = EosChain()
    instance.deploy_contract(TokenContract("eosio.token", symbol="EOS"))
    instance.accounts.create("alice", initial_balance=10.0)
    instance.accounts.create("bob")
    instance.resources.stake_cpu("alice", 10.0)
    for index in range(3):
        instance.produce_block(
            [
                EosTransaction(
                    transaction_id=f"tx{index}",
                    actions=(make_transfer("eosio.token", "alice", "bob", 0.1, "EOS"),),
                )
            ]
        )
    return instance


class TestEndpoint:
    def test_head_height(self, chain):
        endpoint = EosRpcEndpoint(chain)
        assert endpoint.head_height(now=0.0) == chain.head_height

    def test_fetch_block_round_trip(self, chain):
        endpoint = EosRpcEndpoint(chain)
        height = chain.config.start_height + 1
        block = endpoint.fetch_block(height, now=0.0)
        assert block.height == height
        assert block.transactions == chain.block_at(height).transactions

    def test_missing_block_raises_rpc_error(self, chain):
        endpoint = EosRpcEndpoint(chain)
        with pytest.raises(RpcError):
            endpoint.fetch_block(999_999_999, now=0.0)

    def test_rate_limit_enforced(self, chain):
        endpoint = EosRpcEndpoint(
            chain, profile=EndpointProfile(name="tiny", requests_per_second=1.0, burst=2.0)
        )
        endpoint.head_height(0.0)
        endpoint.head_height(0.0)
        with pytest.raises(RateLimitExceeded):
            endpoint.head_height(0.0)
        # After the bucket refills the endpoint serves again.
        assert endpoint.head_height(10.0) == chain.head_height

    def test_transient_failures(self, chain):
        endpoint = EosRpcEndpoint(
            chain,
            profile=EndpointProfile(name="flaky", requests_per_second=100.0, burst=100.0, failure_rate=0.999),
        )
        with pytest.raises(EndpointUnavailable):
            endpoint.head_height(0.0)

    def test_latency_positive_and_bounded(self, chain):
        endpoint = EosRpcEndpoint(chain, profile=EndpointProfile(name="p", base_latency=0.1))
        for _ in range(20):
            latency = endpoint.latency()
            assert 0.1 <= latency <= 0.12 + 1e-9

    def test_counters(self, chain):
        endpoint = EosRpcEndpoint(chain)
        endpoint.head_height(0.0)
        endpoint.fetch_block(chain.config.start_height, 0.0)
        assert endpoint.requests_served == 2

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            EndpointProfile(name="bad", requests_per_second=0.0)
        with pytest.raises(ValueError):
            EndpointProfile(name="bad", failure_rate=1.5)

    def test_head_of_empty_chain(self):
        empty = EosChain()
        endpoint = EosRpcEndpoint(empty)
        assert endpoint.head_height(0.0) == empty.config.start_height - 1
