"""Tests for the calibrated EOS workload generator.

These are shape tests: the workload must reproduce the paper's qualitative
EOS findings (transfer dominance, the EIDOS explosion, the named top
applications, the wash-trading DEX pattern) at the reduced test scale.
"""

import pytest

from repro.common.clock import timestamp_from_iso
from repro.common.records import ChainId, iter_transactions
from repro.eos.workload import (
    APPLICATION_CATEGORIES,
    CATEGORY_BETTING,
    CATEGORY_TOKENS,
    EosWorkloadConfig,
    EosWorkloadGenerator,
)


class TestConfigValidation:
    def test_defaults_cover_the_paper_window(self):
        config = EosWorkloadConfig()
        assert config.start_date == "2019-10-01"
        assert config.total_days == pytest.approx(92.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transactions_per_day": 0},
            {"blocks_per_day": 0},
            {"eidos_share": 1.5},
            {"start_date": "2019-12-01", "end_date": "2019-11-01"},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            EosWorkloadConfig(**kwargs)


class TestGeneratedTraffic:
    def test_blocks_cover_the_window_in_order(self, eos_blocks, scenario):
        assert eos_blocks
        timestamps = [block.timestamp for block in eos_blocks]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] >= scenario.eos.start_timestamp
        assert timestamps[-1] < scenario.eos.end_timestamp
        heights = [block.height for block in eos_blocks]
        assert heights == list(range(heights[0], heights[0] + len(heights)))

    def test_all_records_are_eos(self, eos_records):
        assert all(record.chain is ChainId.EOS for record in eos_records)

    def test_transfer_actions_dominate_post_launch(self, eos_records, scenario):
        launch = scenario.eos.eidos_launch_timestamp
        post = [record for record in eos_records if record.timestamp >= launch]
        transfers = sum(1 for record in post if record.type == "transfer")
        assert transfers / len(post) > 0.85

    def test_eidos_launch_multiplies_traffic(self, eos_blocks, scenario):
        launch = scenario.eos.eidos_launch_timestamp
        pre = [block.action_count for block in eos_blocks if block.timestamp < launch]
        post = [block.action_count for block in eos_blocks if block.timestamp >= launch]
        assert pre and post
        assert (sum(post) / len(post)) > 5 * (sum(pre) / len(pre))

    def test_known_applications_receive_traffic(self, eos_records):
        receivers = {record.receiver for record in eos_records}
        for application in ("eosio.token", "betdicetasks", "whaleextrust", "pornhashbaby", "eossanguoone"):
            assert application in receivers

    def test_betting_sender_is_betdicegroup(self, eos_records):
        betting = [
            record
            for record in eos_records
            if record.receiver == "betdicetasks" and record.type != "transfer"
        ]
        assert betting
        assert all(record.sender == "betdicegroup" for record in betting)

    def test_wash_traders_dominate_dex_trades(self, eos_generator, eos_records):
        dex = eos_generator.dex_contract()
        assert dex.trades
        assert dex.self_trade_fraction() > 0.5

    def test_eidos_claims_recorded_by_contract(self, eos_generator):
        assert eos_generator.eidos_contract().claims > 0

    def test_congestion_mode_reached_after_launch(self, eos_generator, scenario):
        launch = scenario.eos.eidos_launch_timestamp
        history = eos_generator.chain.resources.history()
        post = [sample for sample in history if sample.timestamp >= launch]
        pre = [sample for sample in history if sample.timestamp < launch]
        assert any(sample.congested for sample in post)
        assert not any(sample.congested for sample in pre)

    def test_category_labels_cover_named_applications(self):
        assert APPLICATION_CATEGORIES["betdicetasks"] == CATEGORY_BETTING
        assert APPLICATION_CATEGORIES["eidosonecoin"] == CATEGORY_TOKENS

    def test_determinism(self):
        config = EosWorkloadConfig(
            start_date="2019-10-30",
            end_date="2019-11-02",
            transactions_per_day=200,
            blocks_per_day=4,
            user_account_count=20,
            seed=99,
        )
        first = EosWorkloadGenerator(config).generate()
        second = EosWorkloadGenerator(config).generate()
        assert [block.action_count for block in first] == [block.action_count for block in second]
        first_records = [record.type for record in iter_transactions(first)]
        second_records = [record.type for record in iter_transactions(second)]
        assert first_records == second_records

    def test_user_names_are_valid_and_unique(self):
        generator = EosWorkloadGenerator(
            EosWorkloadConfig(
                start_date="2019-10-30",
                end_date="2019-10-31",
                transactions_per_day=10,
                blocks_per_day=2,
                user_account_count=150,
                seed=1,
            )
        )
        assert len(set(generator._users)) == 150
