"""End-to-end integration: workload → RPC → crawler → store → analysis.

These tests run the entire pipeline exactly the way the paper's measurement
did — generate chain activity, serve it over the (simulated) RPC endpoints,
crawl it in reverse chronological order into the gzip block store, and run
the analyses over the crawled data — and check that the headline findings
survive the full round trip.
"""

import pytest

from repro.common.records import ChainId, iter_transactions
from repro.common.rng import DeterministicRng
from repro.collection.crawler import BlockCrawler
from repro.collection.dataset import characterize_dataset
from repro.collection.endpoints import EndpointPool, shortlist_endpoints
from repro.collection.store import BlockStore
from repro.analysis.classify import category_distribution, tezos_category_distribution
from repro.analysis.report import build_summary_report
from repro.analysis.value import ExchangeRateOracle, XrpValueAnalyzer
from repro.eos.rpc import EndpointProfile, EosRpcEndpoint
from repro.eos.workload import EosWorkloadConfig, EosWorkloadGenerator
from repro.scenarios import small_scenario
from repro.tezos.rpc import TezosRpcEndpoint
from repro.tezos.workload import TezosWorkloadConfig, TezosWorkloadGenerator
from repro.xrp.rpc import XrpRpcEndpoint
from repro.xrp.workload import XrpWorkloadConfig, XrpWorkloadGenerator


@pytest.fixture(scope="module")
def pipeline_scenario():
    return small_scenario(seed=17)


class TestEosPipeline:
    def test_crawl_and_classify(self, pipeline_scenario):
        generator = EosWorkloadGenerator(pipeline_scenario.eos)
        generator.generate()
        chain = generator.chain
        # The paper shortlists 6 of 32 advertised endpoints; model a smaller
        # advertised set with a few rate-limited stragglers.
        advertised = [
            EosRpcEndpoint(chain, profile=EndpointProfile(name=f"bp{i}", requests_per_second=200.0, burst=400.0), rng=DeterministicRng(i))
            for i in range(4)
        ] + [
            EosRpcEndpoint(chain, profile=EndpointProfile(name=f"slow{i}", requests_per_second=0.5, burst=1.0), rng=DeterministicRng(10 + i))
            for i in range(4)
        ]
        shortlisted = shortlist_endpoints(advertised, now=0.0, max_selected=4)
        assert all(endpoint.name.startswith("bp") for endpoint in shortlisted)
        store = BlockStore(chunk_size=64)
        crawler = BlockCrawler(EndpointPool(shortlisted), store=store)
        head = crawler.discover_head()
        report = crawler.crawl_range(highest=head, lowest=chain.config.start_height)
        assert report.complete
        assert store.block_count == len(chain.blocks)
        records = list(iter_transactions(store.iter_blocks()))
        categories = category_distribution(records)
        assert categories["Tokens"] == max(categories.values())
        characterization = characterize_dataset(store, chain=ChainId.EOS)
        assert characterization.transaction_count == store.transaction_count
        assert characterization.compressed_gigabytes > 0.0


class TestTezosPipeline:
    def test_crawl_and_classify(self, pipeline_scenario):
        generator = TezosWorkloadGenerator(pipeline_scenario.tezos)
        generator.generate()
        chain = generator.chain
        endpoint = TezosRpcEndpoint(chain)
        store = BlockStore(chunk_size=64)
        crawler = BlockCrawler(EndpointPool([endpoint]), store=store)
        head = crawler.discover_head()
        report = crawler.crawl_range(highest=head, lowest=chain.config.start_level)
        assert report.complete
        records = list(iter_transactions(store.iter_blocks()))
        categories = tezos_category_distribution(records)
        assert categories["consensus"] > 0.7


class TestXrpPipeline:
    def test_crawl_and_value_analysis(self, pipeline_scenario):
        generator = XrpWorkloadGenerator(pipeline_scenario.xrp)
        generator.generate()
        ledger = generator.ledger
        endpoint = XrpRpcEndpoint(ledger)
        store = BlockStore(chunk_size=64)
        crawler = BlockCrawler(EndpointPool([endpoint]), store=store)
        head = crawler.discover_head()
        report = crawler.crawl_range(highest=head, lowest=ledger.config.start_index)
        assert report.complete
        records = list(iter_transactions(store.iter_blocks()))
        # The exchange-rate oracle is fed from the endpoint's data API, like
        # the paper's use of the Ripple Data API.
        rates = {}
        for currency, issuer in generator.valued_assets():
            rates[(currency, issuer)] = endpoint.exchange_rate(currency, issuer, now=0.0)
        oracle = ExchangeRateOracle(rates)
        decomposition = XrpValueAnalyzer(oracle).decompose(records)
        assert decomposition.total == store.action_count
        assert decomposition.failed_share < 0.2
        assert decomposition.economic_value_share < 0.1


class TestCrossChainSummary:
    def test_summary_report_over_crawled_data(self, pipeline_scenario):
        eos = EosWorkloadGenerator(pipeline_scenario.eos)
        tezos = TezosWorkloadGenerator(pipeline_scenario.tezos)
        xrp = XrpWorkloadGenerator(pipeline_scenario.xrp)
        eos_blocks, tezos_blocks, xrp_blocks = eos.generate(), tezos.generate(), xrp.generate()
        oracle = ExchangeRateOracle.from_orderbook(xrp.ledger.orderbook)
        report = build_summary_report(
            eos_records=iter_transactions(eos_blocks),
            tezos_records=iter_transactions(tezos_blocks),
            xrp_records=iter_transactions(xrp_blocks),
            xrp_oracle=oracle,
        )
        assert len(report.chains) == 3
        text = report.format_text()
        assert "EOS" in text and "TEZOS" in text and "XRP" in text
        # The three headline findings of the paper, at reduced scale.
        assert report.chains[ChainId.EOS].dominant_label == "category:Tokens"
        assert report.chains[ChainId.TEZOS].dominant_share > 0.7
        assert report.chains[ChainId.XRP].value_share < 0.1
