"""Checkpoint persistence and the accumulator snapshot/restore contract.

Two layers are covered:

* :class:`CheckpointStore` / :class:`PipelineCheckpoint` — atomic durable
  persistence, corruption and version-skew degradation, signature gating;
* the snapshot/restore contract of **every** accumulator across all nine
  analysis modules: scanning a row prefix, pickling the pre-finalize
  state, restoring it in a "new session", merging it into freshly bound
  accumulators and scanning the suffix must equal one serial pass.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.accounts import (
    AccountActivityAccumulator,
    SenderCountsAccumulator,
    SenderReceiverPairsAccumulator,
)
from repro.analysis.airdrop import AirdropAccumulator, BoomerangClaimsAccumulator
from repro.analysis.classify import (
    CategoryDistributionAccumulator,
    ContractBreakdownAccumulator,
    TezosCategoryAccumulator,
    TypeDistributionAccumulator,
)
from repro.analysis.clustering import (
    AccountClusterer,
    ClusterCountsAccumulator,
    StaticAccountClusterer,
)
from repro.analysis.engine import AnalysisEngine, TxStatsAccumulator
from repro.analysis.flows import ValueFlowAccumulator
from repro.analysis.governance import GovernanceOpsAccumulator
from repro.analysis.report import FIGURE3_CATEGORIZERS
from repro.analysis.throughput import ThroughputSeriesAccumulator
from repro.analysis.value import (
    ExchangeRateOracle,
    FailureCodeAccumulator,
    XrpDecompositionAccumulator,
)
from repro.analysis.washtrading import TradeExtractionAccumulator, WashTradeAccumulator
from repro.common.columns import TxFrame, TxView
from repro.common.records import ChainId
from repro.pipeline.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    PipelineCheckpoint,
)


@pytest.fixture(scope="module")
def combined_frame(eos_records, tezos_records, xrp_records):
    return TxFrame.from_records(eos_records + tezos_records + xrp_records)


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


def _checkpoint_cycle(factory, frame, split):
    """Scan [0, split), snapshot, restore, merge, scan [split, n)."""
    prefix = factory()
    AnalysisEngine(prefix).run(TxView(frame, range(0, split)))
    blob = pickle.dumps(prefix)  # pre-finalize snapshot
    restored = pickle.loads(blob)
    base = factory()
    consumers = [accumulator.bind_batch(frame) for accumulator in base]
    for target, part in zip(base, restored):
        assert target.config_signature() == part.config_signature()
        target.merge(part)
    suffix = range(split, len(frame))
    for consume in consumers:
        consume(suffix)
    return {accumulator.name: accumulator.finalize() for accumulator in base}


def _serial(factory, frame):
    result = AnalysisEngine(factory()).run(frame)
    return {name: result[name] for name in result.keys()}


class TestSnapshotRestoreContract:
    """Prefix snapshot + suffix scan == one pass, for every accumulator."""

    SPLIT_FRACTIONS = (0.33, 0.8)

    def _check(self, factory, combined_frame):
        serial = _serial(factory, combined_frame)
        for fraction in self.SPLIT_FRACTIONS:
            split = int(len(combined_frame) * fraction)
            cycled = _checkpoint_cycle(factory, combined_frame, split)
            assert cycled.keys() == serial.keys()
            for name in serial:
                assert cycled[name] == serial[name], name

    def test_tx_stats(self, combined_frame):
        self._check(lambda: [TxStatsAccumulator()], combined_frame)

    def test_type_distribution(self, combined_frame):
        self._check(lambda: [TypeDistributionAccumulator()], combined_frame)

    def test_category_distribution(self, combined_frame):
        self._check(lambda: [CategoryDistributionAccumulator()], combined_frame)

    def test_tezos_category_distribution(self, combined_frame):
        self._check(lambda: [TezosCategoryAccumulator()], combined_frame)

    def test_contract_breakdown(self, combined_frame):
        self._check(
            lambda: [ContractBreakdownAccumulator("eosio.token")], combined_frame
        )

    def test_throughput_series(self, combined_frame):
        bounds = combined_frame.chain_bounds(ChainId.EOS)
        self._check(
            lambda: [
                ThroughputSeriesAccumulator(
                    key_columns=FIGURE3_CATEGORIZERS[ChainId.EOS],
                    start=bounds[0],
                    end=bounds[1],
                )
            ],
            combined_frame,
        )

    def test_account_activity(self, combined_frame):
        self._check(
            lambda: [
                AccountActivityAccumulator("sender", 10),
                AccountActivityAccumulator("receiver", 10),
            ],
            combined_frame,
        )

    def test_sender_receiver_pairs(self, combined_frame):
        self._check(lambda: [SenderReceiverPairsAccumulator()], combined_frame)

    def test_sender_counts(self, combined_frame):
        self._check(lambda: [SenderCountsAccumulator()], combined_frame)

    def test_xrp_decomposition(self, combined_frame, xrp_oracle):
        self._check(
            lambda: [XrpDecompositionAccumulator(xrp_oracle)], combined_frame
        )

    def test_failure_codes(self, combined_frame):
        self._check(lambda: [FailureCodeAccumulator()], combined_frame)

    def test_wash_trading(self, combined_frame):
        self._check(
            lambda: [WashTradeAccumulator(), TradeExtractionAccumulator()],
            combined_frame,
        )

    def test_airdrop(self, combined_frame):
        self._check(
            lambda: [AirdropAccumulator(), BoomerangClaimsAccumulator()],
            combined_frame,
        )

    def test_cluster_counts(self, combined_frame, xrp_clusterer):
        self._check(
            lambda: [ClusterCountsAccumulator(xrp_clusterer, "sender")],
            combined_frame,
        )

    def test_governance_ops(self, combined_frame):
        self._check(lambda: [GovernanceOpsAccumulator()], combined_frame)

    def test_value_flows_exact(self, combined_frame, xrp_oracle, xrp_clusterer):
        # Prefix merge + suffix scan replays the serial row order exactly,
        # so even the float sums match bit-for-bit (unlike shard merging).
        self._check(
            lambda: [ValueFlowAccumulator(xrp_clusterer, xrp_oracle)],
            combined_frame,
        )


class TestConfigSignatures:
    def test_configuration_changes_signature(self, xrp_oracle):
        assert (
            AccountActivityAccumulator("sender", 10).config_signature()
            != AccountActivityAccumulator("sender", 5).config_signature()
        )
        assert (
            AccountActivityAccumulator("sender", 10).config_signature()
            != AccountActivityAccumulator("receiver", 10).config_signature()
        )
        richer = ExchangeRateOracle(
            {(c, i): xrp_oracle.rate(c, i) for c, i in xrp_oracle.known_assets()}
        )
        assert (
            XrpDecompositionAccumulator(xrp_oracle).config_signature()
            == XrpDecompositionAccumulator(richer).config_signature()
        )
        drifted = ExchangeRateOracle({("USD", "issuer"): 2.0})
        assert (
            XrpDecompositionAccumulator(xrp_oracle).config_signature()
            != XrpDecompositionAccumulator(drifted).config_signature()
        )

    def test_throughput_signature_ignores_end_but_not_start(self):
        categorizer = FIGURE3_CATEGORIZERS[ChainId.EOS]
        base = ThroughputSeriesAccumulator(
            key_columns=categorizer, start=100.0, end=200.0
        )
        extended = ThroughputSeriesAccumulator(
            key_columns=categorizer, start=100.0, end=900.0
        )
        shifted = ThroughputSeriesAccumulator(
            key_columns=categorizer, start=50.0, end=900.0
        )
        assert base.config_signature() == extended.config_signature()
        assert base.config_signature() != shifted.config_signature()

    def test_static_clusterer_signature_tracks_mapping(self):
        a = StaticAccountClusterer({"r1": "Huobi"})
        b = StaticAccountClusterer({"r1": "Huobi"})
        c = StaticAccountClusterer({"r1": "Kraken"})
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()


class TestCheckpointStore:
    def _capture(self, combined_frame):
        accumulators = [TxStatsAccumulator(), TypeDistributionAccumulator()]
        AnalysisEngine(accumulators).run(combined_frame)
        return PipelineCheckpoint.capture(
            len(combined_frame), {"eos": accumulators}
        )

    def test_save_load_round_trip(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        checkpoint = self._capture(combined_frame)
        store.save(checkpoint)
        loaded = store.load()
        assert loaded is not None
        assert loaded.watermark_rows == len(combined_frame)
        assert loaded.signatures == checkpoint.signatures
        restored = loaded.restore_states("eos")
        assert restored[0].finalize() == checkpoint.restore_states("eos")[0].finalize()

    def test_load_missing_returns_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).load() is None

    def test_corrupt_checkpoint_degrades_to_none(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        with open(store.path, "wb") as handle:
            handle.write(b"\x80garbage")
        assert store.load() is None

    def test_truncated_checkpoint_degrades_to_none(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        with open(store.path, "rb") as handle:
            blob = handle.read()
        with open(store.path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.load() is None

    def test_version_skew_degrades_to_none(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        checkpoint = self._capture(combined_frame)
        checkpoint.version = CHECKPOINT_VERSION + 1
        store.save(checkpoint)
        assert store.load() is None

    def test_save_is_atomic(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        assert not any(tmp_path.glob("*.tmp"))

    def test_clear(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        store.clear()
        assert store.load() is None

    def test_compatible_with_gates_on_signatures(self, combined_frame):
        checkpoint = self._capture(combined_frame)
        fresh = [TxStatsAccumulator(), TypeDistributionAccumulator()]
        assert checkpoint.compatible_with("eos", fresh)
        assert not checkpoint.compatible_with("tezos", fresh)
        assert not checkpoint.compatible_with("eos", [TxStatsAccumulator()])
        assert not checkpoint.compatible_with(
            "eos", [TypeDistributionAccumulator(), TxStatsAccumulator()]
        )
