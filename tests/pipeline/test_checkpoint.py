"""Checkpoint persistence and the accumulator snapshot/restore contract.

Two layers are covered:

* :class:`CheckpointStore` / :class:`PipelineCheckpoint` — the versioned
  codec snapshot format: atomic durable persistence, corruption /
  truncation / version-skew degradation, signature gating, delta-aware
  blob carry-forward, and migration of legacy pickle checkpoints;
* the snapshot/restore contract of **every** accumulator across all nine
  analysis modules: scanning a row prefix, exporting the pre-finalize
  state through the codec, restoring it in a "new session" into freshly
  bound accumulators and scanning the suffix must equal one serial pass.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.analysis.accounts import (
    AccountActivityAccumulator,
    SenderCountsAccumulator,
    SenderReceiverPairsAccumulator,
)
from repro.analysis.airdrop import AirdropAccumulator, BoomerangClaimsAccumulator
from repro.analysis.classify import (
    CategoryDistributionAccumulator,
    ContractBreakdownAccumulator,
    TezosCategoryAccumulator,
    TypeDistributionAccumulator,
)
from repro.analysis.clustering import (
    AccountClusterer,
    ClusterCountsAccumulator,
    StaticAccountClusterer,
)
from repro.analysis.engine import AnalysisEngine, TxStatsAccumulator
from repro.analysis.flows import ValueFlowAccumulator
from repro.analysis.governance import GovernanceOpsAccumulator
from repro.analysis.report import FIGURE3_CATEGORIZERS, full_report
from repro.analysis.throughput import ThroughputSeriesAccumulator
from repro.analysis.value import (
    ExchangeRateOracle,
    FailureCodeAccumulator,
    XrpDecompositionAccumulator,
)
from repro.analysis.washtrading import TradeExtractionAccumulator, WashTradeAccumulator
from repro.common import statecodec, statsmode
from repro.common.columns import TxFrame
from repro.common.records import ChainId
from repro.pipeline import incremental_report
from repro.pipeline.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    PipelineCheckpoint,
)

from tests.pipeline.util import assert_reports_identical


@pytest.fixture(scope="module")
def combined_frame(eos_records, tezos_records, xrp_records):
    return TxFrame.from_records(eos_records + tezos_records + xrp_records)


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


def _scan_without_finalize(accumulators, frame, rows):
    """Drive a scan manually — snapshots must capture pre-finalize state."""
    consumers = [accumulator.bind_batch(frame) for accumulator in accumulators]
    for consume in consumers:
        consume(rows)


def _checkpoint_cycle(factory, frame, split):
    """Scan [0, split), snapshot via the codec, restore, scan [split, n)."""
    prefix = factory()
    _scan_without_finalize(prefix, frame, range(0, split))
    # Pre-finalize snapshot: export → codec bytes → decode → restore.
    blob = statecodec.encode(
        [accumulator.export_state() for accumulator in prefix]
    )
    signatures = [accumulator.config_signature() for accumulator in prefix]
    payloads = statecodec.decode(blob)
    base = factory()
    consumers = [accumulator.bind_batch(frame) for accumulator in base]
    for target, signature, payload in zip(base, signatures, payloads):
        assert target.config_signature() == signature
        target.restore_state(payload)
    suffix = range(split, len(frame))
    for consume in consumers:
        consume(suffix)
    return {accumulator.name: accumulator.finalize() for accumulator in base}


def _serial(factory, frame):
    result = AnalysisEngine(factory()).run(frame)
    return {name: result[name] for name in result.keys()}


class TestSnapshotRestoreContract:
    """Prefix snapshot + suffix scan == one pass, for every accumulator."""

    SPLIT_FRACTIONS = (0.33, 0.8)

    def _check(self, factory, combined_frame):
        serial = _serial(factory, combined_frame)
        for fraction in self.SPLIT_FRACTIONS:
            split = int(len(combined_frame) * fraction)
            cycled = _checkpoint_cycle(factory, combined_frame, split)
            assert cycled.keys() == serial.keys()
            for name in serial:
                assert cycled[name] == serial[name], name

    def test_tx_stats(self, combined_frame):
        self._check(lambda: [TxStatsAccumulator()], combined_frame)

    def test_type_distribution(self, combined_frame):
        self._check(lambda: [TypeDistributionAccumulator()], combined_frame)

    def test_category_distribution(self, combined_frame):
        self._check(lambda: [CategoryDistributionAccumulator()], combined_frame)

    def test_tezos_category_distribution(self, combined_frame):
        self._check(lambda: [TezosCategoryAccumulator()], combined_frame)

    def test_contract_breakdown(self, combined_frame):
        self._check(
            lambda: [ContractBreakdownAccumulator("eosio.token")], combined_frame
        )

    def test_throughput_series(self, combined_frame):
        bounds = combined_frame.chain_bounds(ChainId.EOS)
        self._check(
            lambda: [
                ThroughputSeriesAccumulator(
                    key_columns=FIGURE3_CATEGORIZERS[ChainId.EOS],
                    start=bounds[0],
                    end=bounds[1],
                )
            ],
            combined_frame,
        )

    def test_account_activity(self, combined_frame):
        self._check(
            lambda: [
                AccountActivityAccumulator("sender", 10),
                AccountActivityAccumulator("receiver", 10),
            ],
            combined_frame,
        )

    def test_sender_receiver_pairs(self, combined_frame):
        self._check(lambda: [SenderReceiverPairsAccumulator()], combined_frame)

    def test_sender_counts(self, combined_frame):
        self._check(lambda: [SenderCountsAccumulator()], combined_frame)

    def test_xrp_decomposition(self, combined_frame, xrp_oracle):
        self._check(
            lambda: [XrpDecompositionAccumulator(xrp_oracle)], combined_frame
        )

    def test_failure_codes(self, combined_frame):
        self._check(lambda: [FailureCodeAccumulator()], combined_frame)

    def test_wash_trading(self, combined_frame):
        self._check(
            lambda: [WashTradeAccumulator(), TradeExtractionAccumulator()],
            combined_frame,
        )

    def test_airdrop(self, combined_frame):
        self._check(
            lambda: [AirdropAccumulator(), BoomerangClaimsAccumulator()],
            combined_frame,
        )

    def test_cluster_counts(self, combined_frame, xrp_clusterer):
        self._check(
            lambda: [ClusterCountsAccumulator(xrp_clusterer, "sender")],
            combined_frame,
        )

    def test_governance_ops(self, combined_frame):
        self._check(lambda: [GovernanceOpsAccumulator()], combined_frame)

    def test_value_flows_exact(self, combined_frame, xrp_oracle, xrp_clusterer):
        # Prefix merge + suffix scan replays the serial row order exactly,
        # so even the float sums match bit-for-bit (unlike shard merging).
        self._check(
            lambda: [ValueFlowAccumulator(xrp_clusterer, xrp_oracle)],
            combined_frame,
        )


class TestConfigSignatures:
    def test_configuration_changes_signature(self, xrp_oracle):
        assert (
            AccountActivityAccumulator("sender", 10).config_signature()
            != AccountActivityAccumulator("sender", 5).config_signature()
        )
        assert (
            AccountActivityAccumulator("sender", 10).config_signature()
            != AccountActivityAccumulator("receiver", 10).config_signature()
        )
        richer = ExchangeRateOracle(
            {(c, i): xrp_oracle.rate(c, i) for c, i in xrp_oracle.known_assets()}
        )
        assert (
            XrpDecompositionAccumulator(xrp_oracle).config_signature()
            == XrpDecompositionAccumulator(richer).config_signature()
        )
        drifted = ExchangeRateOracle({("USD", "issuer"): 2.0})
        assert (
            XrpDecompositionAccumulator(xrp_oracle).config_signature()
            != XrpDecompositionAccumulator(drifted).config_signature()
        )

    def test_throughput_signature_ignores_end_but_not_start(self):
        categorizer = FIGURE3_CATEGORIZERS[ChainId.EOS]
        base = ThroughputSeriesAccumulator(
            key_columns=categorizer, start=100.0, end=200.0
        )
        extended = ThroughputSeriesAccumulator(
            key_columns=categorizer, start=100.0, end=900.0
        )
        shifted = ThroughputSeriesAccumulator(
            key_columns=categorizer, start=50.0, end=900.0
        )
        assert base.config_signature() == extended.config_signature()
        assert base.config_signature() != shifted.config_signature()

    def test_static_clusterer_signature_tracks_mapping(self):
        a = StaticAccountClusterer({"r1": "Huobi"})
        b = StaticAccountClusterer({"r1": "Huobi"})
        c = StaticAccountClusterer({"r1": "Kraken"})
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()


def _scanned_accumulators(frame):
    accumulators = [TxStatsAccumulator(), TypeDistributionAccumulator()]
    AnalysisEngine(accumulators).run(frame)
    return accumulators


def _restored_results(checkpoint, chain_value, frame):
    """Restore one chain's payloads into fresh bound accumulators."""
    accumulators = [TxStatsAccumulator(), TypeDistributionAccumulator()]
    for accumulator in accumulators:
        accumulator.bind_batch(frame)
    payloads = checkpoint.restore_payloads(chain_value)
    assert payloads is not None
    for accumulator, payload in zip(accumulators, payloads):
        accumulator.restore_state(payload)
    return [accumulator.finalize() for accumulator in accumulators]


class TestCheckpointStore:
    def _capture(self, combined_frame):
        return PipelineCheckpoint.capture(
            len(combined_frame), {"eos": _scanned_accumulators(combined_frame)}
        )

    def test_save_load_round_trip(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        checkpoint = self._capture(combined_frame)
        store.save(checkpoint)
        loaded = store.load()
        assert loaded is not None
        assert loaded.watermark_rows == len(combined_frame)
        assert loaded.signatures == checkpoint.signatures
        assert loaded.chain_states == checkpoint.chain_states
        assert _restored_results(loaded, "eos", combined_frame) == _restored_results(
            checkpoint, "eos", combined_frame
        )

    def test_snapshot_contains_no_pickle(self, tmp_path, combined_frame):
        """The durable format is the closed codec, never a pickle stream."""
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        with open(store.path, "rb") as handle:
            blob = handle.read()
        assert blob.startswith(statecodec.MAGIC)
        # Decoding with the strict codec succeeds without unpickling.
        payload = statecodec.decode(blob)
        assert payload["format"] == "repro-checkpoint"
        assert payload["version"] == CHECKPOINT_VERSION

    def test_load_missing_returns_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).load() is None

    def test_corrupt_checkpoint_degrades_to_none(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        with open(store.path, "wb") as handle:
            handle.write(b"\x80garbage")
        assert store.load() is None

    def test_truncated_checkpoint_degrades_to_none(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        with open(store.path, "rb") as handle:
            blob = handle.read()
        with open(store.path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.load() is None

    def test_flipped_byte_degrades_to_none_or_mismatch(self, tmp_path, combined_frame):
        """Arbitrary corruption mid-file never crashes the loader."""
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        with open(store.path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[len(blob) // 3] ^= 0xFF
        with open(store.path, "wb") as handle:
            handle.write(bytes(blob))
        loaded = store.load()  # must not raise; None is the common outcome
        if loaded is not None:
            # If the header survived, the chain blob may still be torn:
            # restore_payloads degrades to None rather than raising.
            loaded.restore_payloads("eos")

    def test_version_skew_degrades_to_none(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        checkpoint = self._capture(combined_frame)
        checkpoint.version = CHECKPOINT_VERSION + 1
        store.save(checkpoint)
        assert store.load() is None

    def test_corrupt_chain_blob_degrades_to_rescan(self, combined_frame):
        checkpoint = self._capture(combined_frame)
        checkpoint.chain_states["eos"] = checkpoint.chain_states["eos"][:-7]
        assert checkpoint.restore_payloads("eos") is None
        assert checkpoint.restore_payloads("missing") is None

    def test_save_is_atomic(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        assert not any(tmp_path.glob("*.tmp"))

    def test_save_and_load_report_timings(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        assert store.last_save_seconds > 0.0
        store.load()
        assert store.last_load_seconds > 0.0

    def test_clear(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        store.clear()
        assert store.load() is None

    def test_compatible_with_gates_on_signatures(self, combined_frame):
        checkpoint = self._capture(combined_frame)
        fresh = [TxStatsAccumulator(), TypeDistributionAccumulator()]
        assert checkpoint.compatible_with("eos", fresh)
        assert not checkpoint.compatible_with("tezos", fresh)
        assert not checkpoint.compatible_with("eos", [TxStatsAccumulator()])
        assert not checkpoint.compatible_with(
            "eos", [TypeDistributionAccumulator(), TxStatsAccumulator()]
        )

    def test_signatures_survive_the_codec_round_trip(self, tmp_path, combined_frame):
        """Decoded signatures still gate compatibility (tuple identity)."""
        store = CheckpointStore(str(tmp_path))
        store.save(self._capture(combined_frame))
        loaded = store.load()
        fresh = [TxStatsAccumulator(), TypeDistributionAccumulator()]
        assert loaded.compatible_with("eos", fresh)
        assert not loaded.compatible_with("eos", list(reversed(fresh)))


class TestCarryForward:
    def test_carry_chain_reuses_the_stored_blob(self, combined_frame):
        previous = PipelineCheckpoint.capture(
            len(combined_frame), {"eos": _scanned_accumulators(combined_frame)}
        )
        fresh = PipelineCheckpoint(watermark_rows=len(combined_frame) + 10)
        assert fresh.carry_chain("eos", previous)
        # The blob is carried by reference: no re-export, no re-encode.
        assert fresh.chain_states["eos"] is previous.chain_states["eos"]
        assert fresh.signatures["eos"] == previous.signatures["eos"]

    def test_carry_chain_without_stored_state_declines(self, combined_frame):
        previous = PipelineCheckpoint(watermark_rows=0)
        fresh = PipelineCheckpoint(watermark_rows=len(combined_frame))
        assert not fresh.carry_chain("eos", previous)
        assert "eos" not in fresh.chain_states


class TestLegacyMigration:
    def _legacy_pickle(self, combined_frame, watermark=None):
        """A version-1 checkpoint exactly as the old code wrote it."""
        accumulators = _scanned_accumulators(combined_frame)
        legacy = PipelineCheckpoint(
            watermark_rows=watermark if watermark is not None else len(combined_frame)
        )
        legacy.chain_states["eos"] = pickle.dumps(accumulators)
        legacy.signatures["eos"] = [
            accumulator.config_signature() for accumulator in accumulators
        ]
        legacy.version = 1
        return legacy

    def test_legacy_checkpoint_migrates_on_first_load(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        with open(store.legacy_path, "wb") as handle:
            pickle.dump(self._legacy_pickle(combined_frame), handle)
        loaded = store.load()
        assert loaded is not None
        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.watermark_rows == len(combined_frame)
        # Old file removed, new snapshot committed.
        assert not os.path.exists(store.legacy_path)
        assert os.path.exists(store.path)
        # The migrated state restores to the same figures.
        expected = [
            accumulator.finalize()
            for accumulator in _scanned_accumulators(combined_frame)
        ]
        assert _restored_results(loaded, "eos", combined_frame) == expected
        # Second load reads the snapshot path (no pickle left to touch).
        again = store.load()
        assert again is not None
        assert again.signatures == loaded.signatures

    def test_legacy_signatures_survive_migration(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        legacy = self._legacy_pickle(combined_frame)
        with open(store.legacy_path, "wb") as handle:
            pickle.dump(legacy, handle)
        loaded = store.load()
        assert loaded.signatures["eos"] == legacy.signatures["eos"]
        assert loaded.compatible_with(
            "eos", [TxStatsAccumulator(), TypeDistributionAccumulator()]
        )

    def test_corrupt_legacy_degrades_to_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.legacy_path, "wb") as handle:
            handle.write(b"\x80\x04 definitely not a checkpoint")
        assert store.load() is None

    def test_version_skewed_legacy_degrades_to_none(self, tmp_path, combined_frame):
        store = CheckpointStore(str(tmp_path))
        legacy = self._legacy_pickle(combined_frame)
        legacy.version = 99
        with open(store.legacy_path, "wb") as handle:
            pickle.dump(legacy, handle)
        assert store.load() is None

    def test_snapshot_shadows_a_stale_legacy_file(self, tmp_path, combined_frame):
        """Once a snapshot exists, a leftover pickle is never read again."""
        store = CheckpointStore(str(tmp_path))
        checkpoint = PipelineCheckpoint.capture(
            len(combined_frame), {"eos": _scanned_accumulators(combined_frame)}
        )
        store.save(checkpoint)
        with open(store.legacy_path, "wb") as handle:
            handle.write(b"stale garbage that would fail to unpickle")
        loaded = store.load()
        assert loaded is not None
        assert loaded.signatures == checkpoint.signatures


class TestStatsModeCheckpoints:
    """Sketch-mode checkpoints: warm updates, corruption, cross-mode gating.

    Sketch state is a pure function of the scanned multiset, so a warm
    ``ingest → checkpoint → update`` cycle must reproduce a cold
    sketch-mode rescan figure-for-figure — the error envelope never widens
    through a checkpoint.  And because ``config_signature`` carries the
    stats mode, a checkpoint written in one mode can never silently merge
    into the other: the reporter falls back to a full chain rescan.
    """

    @pytest.fixture(scope="class")
    def stream(self, eos_records, tezos_records, xrp_records):
        return eos_records + tezos_records + xrp_records

    def test_sketch_warm_update_equals_cold_sketch_rescan(
        self, stream, xrp_oracle, xrp_clusterer
    ):
        split = len(stream) * 2 // 3
        with statsmode.use_mode(statsmode.SKETCH):
            frame = TxFrame.from_records(stream[:split])
            _, checkpoint, _ = incremental_report(
                frame, None, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
            frame.extend(stream[split:])
            warm, _, stats = incremental_report(
                frame, checkpoint, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
            cold = full_report(frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
        assert stats.incremental
        assert stats.rows_scanned == len(stream) - split
        assert_reports_identical(warm, cold, exact_flows=True)

    def test_corrupt_sketch_blob_degrades_to_chain_rescan(
        self, stream, xrp_oracle, xrp_clusterer
    ):
        split = len(stream) * 2 // 3
        with statsmode.use_mode(statsmode.SKETCH):
            frame = TxFrame.from_records(stream[:split])
            _, checkpoint, _ = incremental_report(
                frame, None, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
            # Tear the EOS sketch blob mid-stream: signatures still match,
            # but the payloads no longer decode.
            checkpoint.chain_states[ChainId.EOS.value] = checkpoint.chain_states[
                ChainId.EOS.value
            ][:-7]
            frame.extend(stream[split:])
            report, _, stats = incremental_report(
                frame, checkpoint, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
            expected = full_report(
                frame, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
        assert ChainId.EOS.value in stats.chains_rescanned
        assert_reports_identical(report, expected, exact_flows=True)

    @pytest.mark.parametrize(
        "written_in, loaded_under",
        [
            (statsmode.EXACT, statsmode.SKETCH),
            (statsmode.SKETCH, statsmode.EXACT),
        ],
    )
    def test_cross_mode_checkpoint_forces_full_rescan(
        self,
        eos_records,
        tezos_records,
        xrp_records,
        xrp_oracle,
        xrp_clusterer,
        written_in,
        loaded_under,
    ):
        # Split each chain so the checkpoint covers all three (the combined
        # stream is chain-contiguous; a flat split would checkpoint EOS only
        # and the others would be first-seen scans, not cross-mode rescans).
        prefix, suffix = [], []
        for records in (eos_records, tezos_records, xrp_records):
            half = len(records) // 2
            prefix.extend(records[:half])
            suffix.extend(records[half:])
        frame = TxFrame.from_records(prefix)
        with statsmode.use_mode(written_in):
            _, checkpoint, _ = incremental_report(
                frame, None, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
        frame.extend(suffix)
        with statsmode.use_mode(loaded_under):
            report, _, stats = incremental_report(
                frame, checkpoint, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
            expected = full_report(
                frame, oracle=xrp_oracle, clusterer=xrp_clusterer
            )
        # Never a silent cross-mode merge: every checkpointed chain is
        # rescanned from row zero under the new mode.
        assert sorted(stats.chains_rescanned) == sorted(
            chain.value for chain in report.chains
        )
        assert stats.rows_scanned == len(frame)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_stats_mode_is_part_of_every_sketch_backed_signature(self, xrp_oracle):
        from repro.analysis.value import ValueDistributionAccumulator

        factories = [
            lambda stats: TxStatsAccumulator(stats=stats),
            lambda stats: AccountActivityAccumulator("sender", 10, stats=stats),
            lambda stats: SenderReceiverPairsAccumulator(stats=stats),
            lambda stats: SenderCountsAccumulator(stats=stats),
            lambda stats: ValueDistributionAccumulator(xrp_oracle, stats=stats),
        ]
        for factory in factories:
            exact_signature = factory(statsmode.EXACT).config_signature()
            sketch_signature = factory(statsmode.SKETCH).config_signature()
            assert exact_signature != sketch_signature

    def test_cross_mode_capture_is_incompatible(self, combined_frame):
        with statsmode.use_mode(statsmode.SKETCH):
            accumulators = _scanned_accumulators(combined_frame)
            checkpoint = PipelineCheckpoint.capture(
                len(combined_frame), {"eos": accumulators}
            )
        with statsmode.use_mode(statsmode.EXACT):
            fresh = [TxStatsAccumulator(), TypeDistributionAccumulator()]
        assert not checkpoint.compatible_with("eos", fresh)
