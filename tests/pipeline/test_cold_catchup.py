"""Cold catch-up: a fresh session fans out over committed chunks.

When ``update(workers>1)`` runs in a session with no checkpoint and no
resident frame, the pipeline reuses the out-of-core chunk engine: workers
stream the store's committed chunks and the parent folds their states —
the full frame is never materialised in any process.  The resulting
checkpoint must be indistinguishable from one written by the serial path,
so later incremental updates compose on top of it.
"""

from __future__ import annotations

import pytest

from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
from repro.analysis.report import full_report
from repro.analysis.value import ExchangeRateOracle
from repro.pipeline import Pipeline

from tests.pipeline.util import assert_reports_identical


@pytest.fixture(scope="module")
def sample_records(eos_records, tezos_records, xrp_records):
    return eos_records[:4000] + tezos_records[:2000] + xrp_records[:4000]


@pytest.fixture(scope="module")
def frozen_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def frozen_clusterer(xrp_generator, sample_records):
    live = AccountClusterer(xrp_generator.ledger.accounts)
    addresses = {record.sender for record in sample_records} | {
        record.receiver for record in sample_records
    }
    return StaticAccountClusterer.from_clusterer(live, sorted(addresses))


def _configured(root, oracle, clusterer, chunk_rows=1000) -> Pipeline:
    pipeline = Pipeline(str(root), chunk_rows=chunk_rows)
    if not pipeline.has_analysis_config():
        pipeline.set_analysis_config(oracle, clusterer)
    return pipeline


class TestColdCatchUp:
    def test_out_of_core_cold_update_matches_serial(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        ingest = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        ingest.ingest_records(iter(sample_records))
        del ingest  # session ends without ever updating: no checkpoint

        cold = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        report, stats = cold.update(workers=2)
        assert stats.workers == 2
        assert not stats.used_checkpoint
        assert stats.rows_scanned == len(sample_records)
        # The out-of-core engine never pulled the frame into this process.
        assert cold._frame is None

        serial_root = tmp_path / "serial"
        serial = _configured(serial_root, frozen_oracle, frozen_clusterer)
        serial.ingest_records(iter(sample_records))
        expected, _ = serial.update()
        assert_reports_identical(report, expected, exact_flows=False)

    def test_cold_checkpoint_powers_later_incremental_updates(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        head, tail = sample_records[:7000], sample_records[7000:]
        ingest = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        ingest.ingest_records(iter(head))
        del ingest

        cold = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        cold.update(workers=2)
        del cold

        resumed = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        resumed.ingest_records(iter(tail))
        report, stats = resumed.update()
        assert stats.incremental
        assert stats.rows_scanned == len(tail)
        oracle, clusterer = resumed.analysis_config()
        expected = full_report(resumed.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(report, expected, exact_flows=False)

    def test_cold_path_skipped_when_frame_resident(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        """Same-session ingest keeps the classic sharded catch-up path."""
        pipeline = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        pipeline.ingest_records(iter(sample_records))
        assert pipeline.frame is not None  # materialise before updating
        report, stats = pipeline.update(workers=2, shards=2)
        assert stats.workers == 2
        oracle, clusterer = pipeline.analysis_config()
        expected = full_report(pipeline.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(report, expected, exact_flows=False)
