"""Tests for the store/pipeline fsck doctor.

The contract under test: fsck detects 100% of injected corruptions, and
``--repair`` leaves a store that ``FrameStore.open`` and a pipeline
``update`` both accept, with exact per-chain degraded-row accounting.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import MANIFEST_NAME, FrameStore
from repro.pipeline import Pipeline, run_fsck
from repro.pipeline.fsck import QUARANTINE_DIR, resolve_store_dir


@pytest.fixture(scope="module")
def sample_records(eos_records, tezos_records, xrp_records):
    return eos_records[:3000] + tezos_records[:1500] + xrp_records[:3000]


@pytest.fixture(scope="module")
def frozen_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def frozen_clusterer(xrp_generator, sample_records):
    clusterer = AccountClusterer(xrp_generator.ledger.accounts)
    return StaticAccountClusterer.from_clusterer(
        clusterer, xrp_generator.ledger.accounts.addresses()
    )


@pytest.fixture
def pipeline_dir(tmp_path, sample_records, frozen_oracle, frozen_clusterer):
    """A healthy pipeline directory: several chunks, checkpoint, meta."""
    root = str(tmp_path / "data")
    pipeline = Pipeline(root, chunk_rows=1_000)
    pipeline.set_analysis_config(frozen_oracle, frozen_clusterer)
    pipeline.ingest_records(sample_records)
    pipeline.update()
    return root


def _manifest(root):
    store_dir = resolve_store_dir(root)
    with open(os.path.join(store_dir, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        return store_dir, json.load(handle)


def _chunk_path(root, index=0):
    store_dir, manifest = _manifest(root)
    return os.path.join(store_dir, manifest["chunks"][index]["file"])


def _flip_byte(path, offset=None):
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    offset = len(blob) // 2 if offset is None else offset
    blob[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))


class TestDetection:
    def test_clean_directory(self, pipeline_dir):
        report = run_fsck(pipeline_dir)
        assert report.clean
        assert report.chunks_checked > 3
        assert report.chunks_ok == report.chunks_checked
        assert report.checkpoint_checked

    def test_bitflipped_chunk(self, pipeline_dir):
        _flip_byte(_chunk_path(pipeline_dir, 1))
        report = run_fsck(pipeline_dir)
        assert [issue.kind for issue in report.issues] == ["chunk_corrupt"]

    def test_torn_chunk(self, pipeline_dir):
        path = _chunk_path(pipeline_dir, 0)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        report = run_fsck(pipeline_dir)
        assert [issue.kind for issue in report.issues] == ["chunk_size_mismatch"]

    def test_missing_chunk(self, pipeline_dir):
        os.remove(_chunk_path(pipeline_dir, 2))
        report = run_fsck(pipeline_dir)
        assert [issue.kind for issue in report.issues] == ["chunk_missing"]

    def test_uncommitted_chunk_file(self, pipeline_dir):
        store_dir = resolve_store_dir(pipeline_dir)
        with open(
            os.path.join(store_dir, "frame-chunk-999999.bin"), "wb"
        ) as handle:
            handle.write(b"leftover")
        report = run_fsck(pipeline_dir)
        assert [issue.kind for issue in report.issues] == ["chunk_uncommitted"]

    def test_corrupt_checkpoint(self, pipeline_dir):
        _flip_byte(os.path.join(pipeline_dir, "checkpoint.snap"), offset=4)
        report = run_fsck(pipeline_dir)
        assert len(report.issues) == 1
        assert report.issues[0].kind in (
            "checkpoint_unreadable",
            "checkpoint_chain_corrupt",
        )

    def test_partial_assembly_manifest(self, pipeline_dir):
        store_dir, manifest = _manifest(pipeline_dir)
        manifest["assembling"] = True
        with open(
            os.path.join(store_dir, MANIFEST_NAME), "w", encoding="utf-8"
        ) as handle:
            json.dump(manifest, handle)
        report = run_fsck(pipeline_dir)
        assert any(issue.kind == "partial_assembly" for issue in report.issues)

    def test_unreadable_meta(self, pipeline_dir):
        with open(
            os.path.join(pipeline_dir, "meta.json"), "w", encoding="utf-8"
        ) as handle:
            handle.write("{not json")
        report = run_fsck(pipeline_dir)
        assert any(issue.kind == "meta_unreadable" for issue in report.issues)

    def test_detects_every_injected_corruption(self, pipeline_dir):
        """Several simultaneous corruptions: nothing masks anything else."""
        _flip_byte(_chunk_path(pipeline_dir, 1))
        os.remove(_chunk_path(pipeline_dir, 3))
        store_dir = resolve_store_dir(pipeline_dir)
        with open(
            os.path.join(store_dir, "frame-chunk-777777.bin"), "wb"
        ) as handle:
            handle.write(b"leftover")
        _flip_byte(os.path.join(pipeline_dir, "checkpoint.snap"), offset=4)
        report = run_fsck(pipeline_dir)
        kinds = sorted(issue.kind for issue in report.issues)
        assert kinds[0] in ("checkpoint_chain_corrupt", "checkpoint_unreadable")
        assert kinds[1:] == ["chunk_corrupt", "chunk_missing", "chunk_uncommitted"]

    def test_verification_never_mutates(self, pipeline_dir):
        _flip_byte(_chunk_path(pipeline_dir, 1))
        before = sorted(os.listdir(resolve_store_dir(pipeline_dir)))
        run_fsck(pipeline_dir)
        assert sorted(os.listdir(resolve_store_dir(pipeline_dir))) == before

    def test_rejects_non_directory(self, tmp_path):
        from repro.common.errors import CollectionError

        with pytest.raises(CollectionError):
            run_fsck(str(tmp_path / "nope"))


class TestRepair:
    def test_repair_quarantines_and_the_store_reopens(self, pipeline_dir):
        damaged = _chunk_path(pipeline_dir, 1)
        store_dir, manifest = _manifest(pipeline_dir)
        damaged_entry = manifest["chunks"][1]
        _flip_byte(damaged)
        report = run_fsck(pipeline_dir, repair=True)
        assert not report.clean and report.repaired
        # Exact degraded-row accounting: the dropped chunk's per-chain rows.
        assert report.degraded_rows == {
            chain: int(rows) for chain, rows in damaged_entry["chain_rows"].items()
        }
        assert sum(report.degraded_rows.values()) == int(damaged_entry["rows"])
        # The evidence survives in quarantine, outside the chunk globs.
        quarantine = os.path.join(store_dir, QUARANTINE_DIR)
        assert os.path.basename(damaged) in os.listdir(quarantine)
        # The repaired store opens and reports without complaint.
        store = FrameStore.open(store_dir)
        assert store.row_count == int(manifest["row_count"]) - int(
            damaged_entry["rows"]
        )
        assert run_fsck(pipeline_dir).clean

    def test_repaired_pipeline_accepts_update(self, pipeline_dir):
        _flip_byte(_chunk_path(pipeline_dir, 0))
        run_fsck(pipeline_dir, repair=True)
        pipeline = Pipeline(pipeline_dir, chunk_rows=1_000)
        report, stats = pipeline.update()
        assert stats.rows_total == pipeline.store.row_count
        assert report.chains  # figures computed over the surviving rows

    def test_repair_also_quarantines_the_stale_checkpoint(self, pipeline_dir):
        """Dropping a chunk leaves the watermark past the store: both go."""
        _flip_byte(_chunk_path(pipeline_dir, 0))
        report = run_fsck(pipeline_dir, repair=True)
        kinds = {issue.kind for issue in report.issues}
        assert "chunk_corrupt" in kinds
        assert "checkpoint_stale" in kinds
        assert all(issue.repair == "quarantined" for issue in report.issues)
        assert not os.path.exists(os.path.join(pipeline_dir, "checkpoint.snap"))

    def test_repair_preserves_uncommitted_files(self, pipeline_dir):
        store_dir = resolve_store_dir(pipeline_dir)
        leftover = os.path.join(store_dir, "frame-chunk-424242.bin")
        with open(leftover, "wb") as handle:
            handle.write(b"crash leftover")
        report = run_fsck(pipeline_dir, repair=True)
        assert [issue.kind for issue in report.issues] == ["chunk_uncommitted"]
        assert not os.path.exists(leftover)
        quarantined = os.listdir(os.path.join(store_dir, QUARANTINE_DIR))
        assert "frame-chunk-424242.bin" in quarantined

    def test_later_chunks_shed_pool_deltas_after_a_drop(self, pipeline_dir):
        _flip_byte(_chunk_path(pipeline_dir, 0))
        run_fsck(pipeline_dir, repair=True)
        _, manifest = _manifest(pipeline_dir)
        assert all("pools" not in entry for entry in manifest["chunks"])
        # The store backfills the stats lazily and still answers queries.
        store = FrameStore.open(resolve_store_dir(pipeline_dir))
        assert store.row_count == int(manifest["row_count"])
