"""fsck awareness of the chunk-state aggregate cache.

The doctor must classify every kind of cache damage — corrupt entries,
entries keyed to superseded chunk bytes (stale), unrecognisable files in
``cache/`` (orphaned) — report them without mutating anything, and
quarantine them under ``--repair``.  Chunk repair and cache checking
compose: quarantining a damaged chunk in the same walk must turn that
chunk's cache entries stale.  And because every one of these states
degrades to a cache miss, none of them may ever change a figure.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.parallel import parallel_report_from_store
from repro.analysis.statecache import ChunkStateCache, parse_entry_name
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import FrameStore, state_cache_dir
from repro.pipeline import run_fsck
from repro.pipeline.fsck import QUARANTINE_DIR

CHUNK_ROWS = 1_000


@pytest.fixture(scope="module")
def frozen_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture
def warm_store(tmp_path, eos_records, xrp_records, frozen_oracle):
    """A committed store with a fully-populated chunk-state cache."""
    directory = str(tmp_path / "store")
    store = FrameStore(chunk_rows=CHUNK_ROWS, directory=directory)
    store.add_records(eos_records[:3000] + xrp_records[:3000])
    store.flush()
    cache = ChunkStateCache.for_store(directory)
    parallel_report_from_store(
        directory, oracle=frozen_oracle, workers=1, cache=cache
    )
    assert cache.misses == store.committed_chunk_count
    return directory


def _entries(directory):
    cache_dir = state_cache_dir(directory)
    return cache_dir, sorted(
        name for name in os.listdir(cache_dir) if parse_entry_name(name)
    )


def _issues_of(report, kind):
    return [issue for issue in report.issues if issue.kind == kind]


def test_clean_cache_passes(warm_store):
    report = run_fsck(warm_store)
    assert report.clean
    assert report.cache_entries_checked > 0
    assert report.cache_entries_ok == report.cache_entries_checked


def test_corrupt_entry_detected_and_quarantined(warm_store):
    cache_dir, entries = _entries(warm_store)
    victim = os.path.join(cache_dir, entries[0])
    with open(victim, "r+b") as handle:
        handle.seek(12)
        byte = handle.read(1)
        handle.seek(12)
        handle.write(bytes([byte[0] ^ 0xFF]))

    report = run_fsck(warm_store)
    assert not report.clean
    assert len(_issues_of(report, "cache_entry_corrupt")) == 1
    assert os.path.exists(victim)  # detection never mutates

    repaired = run_fsck(warm_store, repair=True)
    issue = _issues_of(repaired, "cache_entry_corrupt")[0]
    assert issue.repair == "quarantined"
    assert not os.path.exists(victim)
    assert os.path.dirname(issue.path).endswith(QUARANTINE_DIR)
    assert run_fsck(warm_store).clean


def test_stale_entry_detected_and_quarantined(warm_store):
    cache_dir, entries = _entries(warm_store)
    key = parse_entry_name(entries[0])
    stale = entries[0].replace(key.chunk_checksum, "00000000")
    os.rename(os.path.join(cache_dir, entries[0]), os.path.join(cache_dir, stale))

    report = run_fsck(warm_store)
    stale_issues = _issues_of(report, "cache_entry_stale")
    assert len(stale_issues) == 1
    assert "00000000" in stale_issues[0].detail

    repaired = run_fsck(warm_store, repair=True)
    assert _issues_of(repaired, "cache_entry_stale")[0].repair == "quarantined"
    assert run_fsck(warm_store).clean


def test_orphaned_file_detected_and_quarantined(warm_store):
    cache_dir, _ = _entries(warm_store)
    leftover = os.path.join(cache_dir, "state-aa-bb-exact-v2.state.tmp.x1")
    with open(leftover, "wb") as handle:
        handle.write(b"half a write")

    report = run_fsck(warm_store)
    assert len(_issues_of(report, "cache_entry_orphaned")) == 1

    repaired = run_fsck(warm_store, repair=True)
    assert _issues_of(repaired, "cache_entry_orphaned")[0].repair == "quarantined"
    assert not os.path.exists(leftover)
    assert run_fsck(warm_store).clean


def test_chunk_repair_turns_entries_stale_in_same_walk(warm_store):
    """Quarantining a damaged chunk strands its cache entries as stale."""
    import json

    from repro.collection.store import MANIFEST_NAME

    with open(os.path.join(warm_store, MANIFEST_NAME)) as handle:
        manifest = json.load(handle)
    chunk_path = os.path.join(warm_store, manifest["chunks"][0]["file"])
    with open(chunk_path, "r+b") as handle:
        handle.truncate(max(os.path.getsize(chunk_path) // 2, 1))

    repaired = run_fsck(warm_store, repair=True)
    assert _issues_of(repaired, "chunk_size_mismatch") or _issues_of(
        repaired, "chunk_corrupt"
    )
    # The truncated chunk was quarantined first, so its (now chunk-less)
    # cache entry is stale within the same pass.
    stale = _issues_of(repaired, "cache_entry_stale")
    assert len(stale) == 1
    assert all(issue.repair == "quarantined" for issue in stale)
    assert run_fsck(warm_store).clean

    # The surviving store still reports, repopulating only what was lost.
    report = parallel_report_from_store(
        warm_store, workers=1, cache=ChunkStateCache.for_store(warm_store)
    )
    assert report.chains


def test_fsck_json_counts_cache_entries(warm_store):
    payload = run_fsck(warm_store).to_dict()
    assert payload["cache_entries_checked"] == payload["cache_entries_ok"] > 0
