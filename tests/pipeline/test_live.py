"""Live tailing: timed batches, the watch loop, and resume-across-sessions."""

from __future__ import annotations

import pytest

from repro.analysis.report import full_report
from repro.common.clock import SimulationClock
from repro.common.errors import CollectionError
from repro.eos.workload import EosWorkloadConfig
from repro.pipeline import (
    LiveTailRunner,
    Pipeline,
    frozen_analysis_config,
    scenario_generators,
    stream_block_batches,
)
from repro.scenarios import PaperScenario, get_scenario
from repro.scenarios.registry import scenario_names
from repro.tezos.workload import TezosWorkloadConfig
from repro.xrp.workload import XrpWorkloadConfig

from tests.pipeline.util import assert_reports_identical

BATCH_SECONDS = 6 * 3600.0


def _tiny_scenario(seed: int = 7) -> PaperScenario:
    """Three dense days — enough batches to tail, cheap to generate."""
    window = {"start_date": "2019-10-30", "end_date": "2019-11-02"}
    return PaperScenario(
        name="live-tiny",
        eos=EosWorkloadConfig(
            transactions_per_day=200, blocks_per_day=8, user_account_count=30,
            seed=seed, **window
        ),
        tezos=TezosWorkloadConfig(
            blocks_per_day=8, baker_count=8, user_account_count=40,
            seed=seed + 1, **window
        ),
        xrp=XrpWorkloadConfig(
            transactions_per_day=300, ledgers_per_day=8, ordinary_account_count=30,
            spam_accounts_per_wave=10, seed=seed + 2, **window
        ),
    )


class TestStreamBlockBatches:
    def test_batches_cover_every_block_in_time_order(self):
        scenario = _tiny_scenario()
        batches = list(
            stream_block_batches(scenario_generators(scenario), BATCH_SECONDS)
        )
        assert batches
        blocks = [block for _, batch in batches for block in batch]
        timestamps = [block.timestamp for block in blocks]
        assert timestamps == sorted(timestamps)
        expected = sum(
            len(generator.generate())
            for generator in scenario_generators(scenario).values()
        )
        assert len(blocks) == expected
        for end, batch in batches:
            for block in batch:
                assert end - BATCH_SECONDS <= block.timestamp < end

    def test_deterministic(self):
        scenario = _tiny_scenario()
        first = list(stream_block_batches(scenario_generators(scenario), BATCH_SECONDS))
        second = list(stream_block_batches(scenario_generators(scenario), BATCH_SECONDS))
        assert [(end, [b.height for b in batch]) for end, batch in first] == [
            (end, [b.height for b in batch]) for end, batch in second
        ]

    def test_rejects_non_positive_batch(self):
        with pytest.raises(CollectionError):
            next(stream_block_batches(scenario_generators(_tiny_scenario()), 0))

    def test_live_tail_scenario_registered(self):
        assert "live_tail" in scenario_names()
        scenario = get_scenario("live_tail", seed=3)
        assert scenario.eos.seed == 3


class TestLiveTailRunner:
    def test_ticks_converge_to_batch_report(self, tmp_path):
        scenario = _tiny_scenario()
        pipeline = Pipeline(str(tmp_path), chunk_rows=2000)
        clock = SimulationClock(0.0)
        runner = LiveTailRunner(
            pipeline, scenario, batch_seconds=BATCH_SECONDS, clock=clock
        )
        updates = list(runner.run())
        assert len(updates) >= 8
        # The clock followed the batch boundaries.
        assert clock.now == updates[-1].virtual_time
        # Every tick past the first scanned only its delta.
        for update in updates[1:]:
            assert update.stats.rows_scanned <= update.rows_ingested
            assert not update.stats.chains_rescanned
        # The final live report equals a from-scratch batch run with the
        # same frozen analysis companions.
        oracle, clusterer = pipeline.analysis_config()
        expected = full_report(pipeline.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(updates[-1].report, expected, exact_flows=True)

    def test_resume_across_sessions_matches_uninterrupted(self, tmp_path):
        scenario = _tiny_scenario()
        # Uninterrupted run.
        solo_root = tmp_path / "solo"
        solo = Pipeline(str(solo_root), chunk_rows=2000)
        solo_updates = list(
            LiveTailRunner(solo, scenario, batch_seconds=BATCH_SECONDS).run()
        )
        # Interrupted after 3 batches, resumed in a new "session".  Resume
        # is row-driven (the durable store decides), no cursor needed.
        split_root = tmp_path / "split"
        first = Pipeline(str(split_root), chunk_rows=2000)
        list(
            LiveTailRunner(first, scenario, batch_seconds=BATCH_SECONDS).run(
                max_batches=3
            )
        )
        assert int(first.meta["next_batch_index"]) == 3
        del first
        second = Pipeline(str(split_root), chunk_rows=2000)
        resumed = list(
            LiveTailRunner(second, scenario, batch_seconds=BATCH_SECONDS).run()
        )
        assert resumed[0].batch_index == 3
        assert_reports_identical(
            resumed[-1].report, solo_updates[-1].report, exact_flows=True
        )

    def test_crash_between_chunk_commit_and_meta_write_no_duplicates(
        self, tmp_path
    ):
        """The crash window the meta cursor cannot see must not double-ingest.

        A session that committed a batch's chunk but died before any meta
        write leaves a stale ``next_batch_index``; the resumed runner must
        trust the durable row count instead and skip the committed rows.
        """
        scenario = _tiny_scenario()
        root = str(tmp_path)
        pipeline = Pipeline(root, chunk_rows=2000)
        list(
            LiveTailRunner(pipeline, scenario, batch_seconds=BATCH_SECONDS).run(
                max_batches=2
            )
        )
        rows_after_two = pipeline.store.row_count
        # Simulate the crash: rewind the meta cursor as if the second
        # batch's meta write never happened (its chunk IS committed).
        pipeline.set_meta(next_batch_index=1)
        del pipeline
        reopened = Pipeline(root, chunk_rows=2000)
        resumed = list(
            LiveTailRunner(reopened, scenario, batch_seconds=BATCH_SECONDS).run(
                max_batches=1
            )
        )
        assert resumed[0].batch_index == 2  # not a replay of batch 1
        frame = reopened.frame
        ids = list(frame.transaction_id)
        assert reopened.store.row_count > rows_after_two
        # No row appears twice per (chain, id, height) identity.
        seen = list(zip(frame.chain_code, ids, frame.block_height, frame.type_code))
        solo = Pipeline(str(tmp_path / "solo"), chunk_rows=2000)
        list(
            LiveTailRunner(solo, scenario, batch_seconds=BATCH_SECONDS).run(
                max_batches=3
            )
        )
        assert len(seen) == solo.store.row_count

    def test_analysis_config_frozen_once(self, tmp_path):
        scenario = _tiny_scenario()
        pipeline = Pipeline(str(tmp_path), chunk_rows=2000)
        runner = LiveTailRunner(pipeline, scenario, batch_seconds=BATCH_SECONDS)
        list(runner.run(max_batches=1))
        rates_after_one = pipeline.meta["oracle_rates"]
        list(
            LiveTailRunner(pipeline, scenario, batch_seconds=BATCH_SECONDS).run(
                max_batches=2
            )
        )
        assert pipeline.meta["oracle_rates"] == rates_after_one

    def test_frozen_config_matches_fresh_generators(self):
        scenario = _tiny_scenario()
        oracle_a, clusterer_a = frozen_analysis_config(scenario_generators(scenario))
        oracle_b, clusterer_b = frozen_analysis_config(scenario_generators(scenario))
        assert oracle_a.signature() == oracle_b.signature()
        assert clusterer_a.signature() == clusterer_b.signature()
