"""End-to-end legacy-checkpoint migration through the pipeline and CLI.

The scenario the migration satellite guards: a pipeline directory written
by the pickle-checkpoint era is opened by the new code.  The first
``update`` must adopt the old state (no rescan — the whole point of a
checkpoint), rewrite it in the snapshot format, remove the pickle, and
produce figures identical to a from-scratch batch run.
"""

from __future__ import annotations

import io
import os
import pickle

from repro.analysis.engine import BLOCK_ROWS, scan_blocks
from repro.analysis.report import figure_accumulators, full_report
from repro.cli import main
from repro.pipeline import Pipeline, PipelineCheckpoint

from tests.pipeline.util import assert_reports_identical


def _ingest(data: str, *extra: str) -> None:
    out = io.StringIO()
    assert main(["ingest", "--data", data, *extra], out=out) == 0


def _write_legacy_checkpoint(pipeline: Pipeline) -> None:
    """Rewrite the pipeline's checkpoint exactly as version 1 stored it."""
    frame = pipeline.frame
    oracle, clusterer = pipeline.analysis_config()
    legacy = PipelineCheckpoint(watermark_rows=len(frame))
    for chain in frame.chains():
        view = frame.chain_view(chain)
        if not len(view):
            continue
        accumulators = figure_accumulators(
            chain, frame.chain_bounds(chain), oracle, clusterer
        )
        consumers = [
            accumulator.bind_batch(frame) for accumulator in accumulators
        ]
        for block in scan_blocks(view.rows, BLOCK_ROWS):
            for consume in consumers:
                consume(block)
        legacy.chain_states[chain.value] = pickle.dumps(accumulators)
        legacy.signatures[chain.value] = [
            accumulator.config_signature() for accumulator in accumulators
        ]
    legacy.version = 1
    store = pipeline.checkpoints
    if os.path.exists(store.path):
        os.remove(store.path)
    with open(store.legacy_path, "wb") as handle:
        pickle.dump(legacy, handle)


def test_update_migrates_legacy_checkpoint_without_rescan(tmp_path):
    data = str(tmp_path / "pipe")
    _ingest(data, "--scale", "live_tail", "--batches", "3")
    pipeline = Pipeline(data)
    pipeline.update()  # settles the analysis config + a snapshot to replace
    _write_legacy_checkpoint(pipeline)
    assert os.path.exists(pipeline.checkpoints.legacy_path)
    assert not os.path.exists(pipeline.checkpoints.path)

    # New rows land, then the new code opens the legacy directory.
    _ingest(data, "--batches", "1")
    reopened = Pipeline(data)
    report, stats = reopened.update()

    # The pickle era's state was adopted: incremental, no chain rescanned.
    assert stats.used_checkpoint
    assert not stats.chains_rescanned
    assert 0 < stats.rows_scanned < stats.rows_total
    # Migrated in place: snapshot written, pickle removed.
    assert os.path.exists(reopened.checkpoints.path)
    assert not os.path.exists(reopened.checkpoints.legacy_path)
    # Figure identity with a from-scratch batch run (bit-for-bit flows —
    # the serial path's Figure 12 contract survives migration).
    oracle, clusterer = reopened.analysis_config()
    expected = full_report(reopened.frame, oracle=oracle, clusterer=clusterer)
    assert_reports_identical(report, expected, exact_flows=True)

    # The CLI entry point runs clean on the migrated directory.
    out = io.StringIO()
    assert main(["update", "--data", data], out=out) == 0
    assert "Update scanned" in out.getvalue()


def test_corrupt_legacy_checkpoint_degrades_to_full_rescan(tmp_path):
    data = str(tmp_path / "pipe")
    _ingest(data, "--scale", "live_tail", "--batches", "2")
    pipeline = Pipeline(data)
    pipeline.update()
    store = pipeline.checkpoints
    os.remove(store.path)
    with open(store.legacy_path, "wb") as handle:
        handle.write(b"\x80\x04 not a checkpoint at all")

    reopened = Pipeline(data)
    report, stats = reopened.update()
    assert not stats.used_checkpoint  # degraded to a full rescan
    oracle, clusterer = reopened.analysis_config()
    expected = full_report(reopened.frame, oracle=oracle, clusterer=clusterer)
    assert_reports_identical(report, expected, exact_flows=True)
    # The rescan committed a fresh snapshot; the wreck is shadowed forever.
    assert os.path.exists(store.path)
    follow_up, follow_stats = Pipeline(data).update()
    assert follow_stats.rows_scanned == 0
    assert follow_stats.incremental
    assert_reports_identical(follow_up, expected, exact_flows=True)
