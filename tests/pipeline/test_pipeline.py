"""The durable pipeline directory: sessions, crash recovery, crawl ingest.

Covers the operational story end to end: a pipeline directory is built
across several "sessions" (fresh :class:`Pipeline` objects over the same
root), killed mid-chunk, reopened, crawled into — and after every
misadventure, ``update`` converges to the batch-identical report.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
from repro.analysis.report import full_report
from repro.analysis.value import ExchangeRateOracle
from repro.collection.endpoints import EndpointPool
from repro.common.records import ChainId
from repro.common.rng import DeterministicRng
from repro.eos.rpc import EndpointProfile, EosRpcEndpoint
from repro.pipeline import Pipeline, tail_crawl

from tests.pipeline.util import assert_reports_identical


@pytest.fixture(scope="module")
def sample_records(eos_records, tezos_records, xrp_records):
    """A cross-chain slice small enough to re-compress repeatedly."""
    return eos_records[:4000] + tezos_records[:2000] + xrp_records[:4000]


@pytest.fixture(scope="module")
def frozen_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def frozen_clusterer(xrp_generator, sample_records):
    live = AccountClusterer(xrp_generator.ledger.accounts)
    addresses = {record.sender for record in sample_records} | {
        record.receiver for record in sample_records
    }
    return StaticAccountClusterer.from_clusterer(live, sorted(addresses))


def _configured(root, frozen_oracle, frozen_clusterer, chunk_rows=1000) -> Pipeline:
    pipeline = Pipeline(str(root), chunk_rows=chunk_rows)
    if not pipeline.has_analysis_config():
        pipeline.set_analysis_config(frozen_oracle, frozen_clusterer)
    return pipeline


class TestPipelineSessions:
    def test_multi_session_ingest_matches_batch(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        """Three sessions, each ingest+update; final report == batch run."""
        third = len(sample_records) // 3
        batches = [
            sample_records[:third],
            sample_records[third : 2 * third],
            sample_records[2 * third :],
        ]
        report = None
        for batch in batches:
            pipeline = _configured(tmp_path, frozen_oracle, frozen_clusterer)
            pipeline.ingest_records(iter(batch))
            report, stats = pipeline.update()
            del pipeline  # session ends; everything must be on disk
        assert stats.rows_scanned == len(batches[-1])
        assert stats.incremental
        final = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        oracle, clusterer = final.analysis_config()
        expected = full_report(final.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_update_with_workers_matches(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        pipeline = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        pipeline.ingest_records(iter(sample_records))
        report, stats = pipeline.update(workers=2, shards=2)
        assert stats.workers == 2
        oracle, clusterer = pipeline.analysis_config()
        expected = full_report(pipeline.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(report, expected, exact_flows=False)

    def test_watermark_tracks_checkpoint(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        pipeline = _configured(tmp_path, frozen_oracle, frozen_clusterer)
        assert pipeline.watermark == 0
        pipeline.ingest_records(iter(sample_records[:500]))
        pipeline.update()
        assert pipeline.watermark == 500
        reopened = Pipeline(str(tmp_path))
        assert reopened.watermark == 500
        assert reopened.store.row_count == 500


class TestCrashRecovery:
    """Satellite: kill an ingest mid-chunk, reopen, converge anyway."""

    def _seed(self, root, records, frozen_oracle, frozen_clusterer):
        pipeline = _configured(root, frozen_oracle, frozen_clusterer)
        pipeline.ingest_records(iter(records))
        pipeline.update()
        return pipeline

    def test_uncommitted_partial_chunk_cleaned_and_converges(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        half = len(sample_records) // 2
        pipeline = self._seed(
            tmp_path, sample_records[:half], frozen_oracle, frozen_clusterer
        )
        frames_dir = pipeline.frames_dir
        committed = sorted(glob.glob(os.path.join(frames_dir, "frame-chunk-*")))
        # Simulate dying mid-chunk: a partial file appears on disk but the
        # manifest (the commit point) was never updated.
        with open(committed[0], "rb") as handle:
            blob = handle.read()
        stale = os.path.join(frames_dir, f"frame-chunk-{len(committed):06d}.json.gz")
        with open(stale, "wb") as handle:
            handle.write(blob[: len(blob) // 3])
        del pipeline

        reopened = Pipeline(str(tmp_path))
        assert stale in reopened.store.cleaned_paths
        assert not os.path.exists(stale)
        assert reopened.store.row_count == half
        # The "lost" rows are re-ingested and update converges.
        reopened.ingest_records(iter(sample_records[half:]))
        report, stats = reopened.update()
        assert stats.incremental
        oracle, clusterer = reopened.analysis_config()
        expected = full_report(reopened.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_torn_committed_chunk_truncates_and_converges(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        pipeline = self._seed(
            tmp_path, sample_records, frozen_oracle, frozen_clusterer
        )
        frames_dir = pipeline.frames_dir
        committed = sorted(glob.glob(os.path.join(frames_dir, "frame-chunk-*")))
        # Tear the last committed chunk (size no longer matches the manifest).
        with open(committed[-1], "rb") as handle:
            blob = handle.read()
        with open(committed[-1], "wb") as handle:
            handle.write(blob[: len(blob) - 7])
        del pipeline

        reopened = Pipeline(str(tmp_path))
        assert committed[-1] in reopened.store.cleaned_paths
        rows_after_truncation = reopened.store.row_count
        assert rows_after_truncation < len(sample_records)
        # The checkpoint now covers more rows than exist: update must fall
        # back to a full rescan instead of trusting it — and re-ingesting
        # the lost tail converges to the batch-identical report.
        lost = len(sample_records) - rows_after_truncation
        reopened.ingest_records(iter(sample_records[-lost:]))
        report, _ = reopened.update()
        oracle, clusterer = reopened.analysis_config()
        expected = full_report(reopened.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_corrupt_checkpoint_falls_back_to_full_rescan(
        self, tmp_path, sample_records, frozen_oracle, frozen_clusterer
    ):
        pipeline = self._seed(
            tmp_path, sample_records, frozen_oracle, frozen_clusterer
        )
        with open(pipeline.checkpoints.path, "wb") as handle:
            handle.write(b"not a pickle")
        del pipeline
        reopened = Pipeline(str(tmp_path))
        report, stats = reopened.update()
        assert not stats.used_checkpoint
        assert stats.rows_scanned == len(sample_records)
        oracle, clusterer = reopened.analysis_config()
        expected = full_report(reopened.frame, oracle=oracle, clusterer=clusterer)
        assert_reports_identical(report, expected, exact_flows=True)


class TestCrawlIngest:
    """The crawler's frame-sink path feeding a pipeline directory."""

    def _pool(self, chain):
        endpoints = [
            EosRpcEndpoint(
                chain, profile=EndpointProfile(name=f"e{i}"), rng=DeterministicRng(i)
            )
            for i in range(2)
        ]
        return EndpointPool(endpoints)

    def _chain(self, eos_generator):
        # The session-scoped generator retains the simulated chain with all
        # generated blocks — a ready-made RPC backend.
        return eos_generator.chain

    def test_tail_crawl_ingests_only_above_watermark(self, tmp_path, eos_generator):
        chain = self._chain(eos_generator)
        blocks = len(eos_generator.blocks)
        pipeline = Pipeline(str(tmp_path), chunk_rows=2000)
        with pytest.raises(Exception):
            tail_crawl(pipeline, self._pool(chain), ChainId.EOS)  # unbounded cold start
        report = tail_crawl(
            pipeline, self._pool(chain), ChainId.EOS, backfill_blocks=blocks
        )
        assert report.blocks_fetched > 0
        bounds = pipeline.store.height_bounds(ChainId.EOS)
        assert bounds is not None and bounds[1] == chain.head_height
        rows_first = pipeline.store.row_count
        # Second tail crawl: the head has not moved, nothing to fetch.
        second = tail_crawl(pipeline, self._pool(chain), ChainId.EOS)
        assert second.blocks_fetched in (0, report.blocks_fetched)
        assert pipeline.store.row_count == rows_first

    def test_failed_blocks_become_missing_heights_and_are_retried(
        self, tmp_path, eos_generator, eos_records
    ):
        """A failed fetch is a tracked hole, not silent data loss."""
        from repro.common.errors import RpcError

        class FlakyEndpoint:
            """Delegates to a real endpoint but fails selected heights."""

            chain_name = "eos"

            def __init__(self, inner, fail_heights):
                self.inner = inner
                self.fail_heights = fail_heights

            @property
            def name(self):
                return self.inner.name

            def head_height(self, now):
                return self.inner.head_height(now)

            def fetch_block(self, height, now):
                if height in self.fail_heights:
                    raise RpcError(500, f"synthetic outage for {height}")
                return self.inner.fetch_block(height, now)

            def latency(self):
                return self.inner.latency()

        chain = self._chain(eos_generator)
        blocks = len(eos_generator.blocks)
        hole = chain.head_height - 3
        fail_heights = {hole}
        pool = EndpointPool(
            [
                FlakyEndpoint(endpoint, fail_heights)
                for endpoint in self._pool(chain).endpoints
            ]
        )
        pipeline = Pipeline(str(tmp_path), chunk_rows=5000)
        report = tail_crawl(
            pipeline, pool, ChainId.EOS, backfill_blocks=blocks,
            max_attempts_per_block=2,
        )
        assert report.failed_blocks == [hole]
        assert pipeline.missing_heights(ChainId.EOS) == [hole]
        lost_rows = len(chain.block_at(hole).transactions)
        assert pipeline.store.row_count == len(eos_records) - lost_rows
        # The hole is not papered over by the contiguous-bounds answer.
        assert hole not in pipeline.sink(
            ChainId.EOS, missing_heights=pipeline.missing_heights(ChainId.EOS)
        )
        # The outage ends; the next tick retries the hole and fills it.
        fail_heights.clear()
        second = tail_crawl(pipeline, pool, ChainId.EOS)
        assert second.failed_blocks == []
        assert pipeline.missing_heights(ChainId.EOS) == []
        assert pipeline.store.row_count == len(eos_records)
        report, _ = pipeline.update()
        expected = full_report(pipeline.frame)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_crawled_rows_analyse_identically_to_generated(
        self, tmp_path, eos_generator, eos_records
    ):
        chain = self._chain(eos_generator)
        pipeline = Pipeline(str(tmp_path), chunk_rows=5000)
        tail_crawl(
            pipeline,
            self._pool(chain),
            ChainId.EOS,
            backfill_blocks=len(eos_generator.blocks),
        )
        report, _ = pipeline.update()
        expected = full_report(pipeline.frame)
        assert_reports_identical(report, expected, exact_flows=True)
        # The sink stored every generated transaction, in block order.
        assert pipeline.store.row_count == len(eos_records)
