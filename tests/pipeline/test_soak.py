"""Tests for the crash-schedule soak harness.

Short soaks (a few simulated days of the ``small`` scenario) under pinned
fault plans: recovery must converge to figure-for-figure identity with a
fault-free oracle, and the event log must be byte-reproducible.
"""

from __future__ import annotations

import pytest

from repro.common.faults import FaultPlan
from repro.pipeline.soak import SoakResult, _check_memory_flat, run_soak
from repro.pipeline.soak import SoakCycle

#: Endpoint flaps + a torn chunk write + a mid-update crash + one corrupted
#: checkpoint — the ISSUE's pinned recovery schedule, scaled to test size.
RECOVERY_SPEC = (
    "seed=11;"
    "crawler.fetch:mode=rate_limit:every=40:times=2:retry_after=5;"
    "crawler.fetch:mode=unavailable:p=0.01:times=5;"
    "crawler.head:mode=timeout:nth=4;"
    "store.chunk_write:mode=torn:nth=3;"
    "pipeline.update:mode=crash:nth=2;"
    "checkpoint.save:mode=bitflip:nth=3"
)


class TestFaultedSoak:
    def test_recovers_to_oracle_identity(self, tmp_path):
        plan = FaultPlan.parse(RECOVERY_SPEC)
        result = run_soak(str(tmp_path / "soak"), days=3, scale="small", plan=plan)
        assert result.ok, result.failures
        assert len(result.cycles) == 3
        # The schedule actually exercised the recovery paths.
        assert result.injected_fires > 0
        assert result.crashes > 0
        assert result.rescans > 0  # the corrupted checkpoint degraded to a rescan
        assert result.rate_limit_hits > 0
        # And every gate held.
        assert result.fsck_clean
        assert result.identity_ok
        assert result.rows_total == result.oracle_rows > 0
        assert result.memory_flat

    def test_event_log_is_byte_identical_across_runs(self, tmp_path):
        logs = []
        for run in range(2):
            plan = FaultPlan.parse(RECOVERY_SPEC)
            result = run_soak(
                str(tmp_path / f"soak-{run}"),
                days=3,
                scale="small",
                plan=plan,
                oracle=False,
            )
            assert result.fsck_clean
            logs.append(result.event_log)
        assert logs[0] == logs[1]
        assert logs[0]  # something actually fired

    def test_worker_death_degrades_to_serial(self, tmp_path):
        plan = FaultPlan.parse("seed=3;worker.chunk_task:mode=kill:nth=1")
        result = run_soak(
            str(tmp_path / "soak"),
            days=2,
            scale="small",
            plan=plan,
            workers=2,
            oracle=False,
        )
        assert result.ok, result.failures
        assert result.worker_deaths > 0
        assert result.fsck_clean

    def test_silent_corruption_fails_the_gates(self, tmp_path):
        # A bit flip the durability machinery cannot see at write time:
        # the soak must *fail loudly* — fsck damage, not a green run.
        plan = FaultPlan.parse("seed=1;store.chunk_write:mode=bitflip:nth=2")
        result = run_soak(
            str(tmp_path / "soak"),
            days=2,
            scale="small",
            plan=plan,
            oracle=False,
        )
        assert not result.ok
        assert result.fsck_clean is False

    def test_fault_free_soak_is_clean(self, tmp_path):
        result = run_soak(str(tmp_path / "soak"), days=2, scale="small")
        assert result.ok, result.failures
        assert result.crashes == 0
        assert result.retries == 0
        assert result.injected_fires == 0
        assert result.event_log == ""


class TestMemoryGate:
    def _result_with(self, samples):
        result = SoakResult(scale="small", seed=7, days_requested=len(samples))
        for day, tracemalloc_bytes in enumerate(samples):
            result.cycles.append(
                SoakCycle(
                    day=day,
                    rows_ingested=0,
                    rows_total=0,
                    retries=0,
                    rate_limit_hits=0,
                    rescans=0,
                    crashes=0,
                    worker_deaths=0,
                    tracemalloc_bytes=tracemalloc_bytes,
                )
            )
        return result

    def test_flat_profile_passes(self):
        result = self._result_with([100 << 20] * 10)
        assert _check_memory_flat(result)

    def test_leaking_profile_fails(self):
        result = self._result_with([(100 + 50 * day) << 20 for day in range(10)])
        assert not _check_memory_flat(result)

    def test_short_runs_are_not_judged(self):
        result = self._result_with([1, 1000])
        assert _check_memory_flat(result)
