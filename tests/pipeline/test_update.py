"""Incremental update identity: K-batch ingestion == one serial batch run.

The acceptance bar of the incremental pipeline: for every registered
accumulator and the full figure report, the state after ingesting a
workload in K batches (K ∈ {1, 2, 7, ragged}) equals a single-pass
:func:`~repro.analysis.report.full_report` over the same rows — and the
incremental path scans only the delta.
"""

from __future__ import annotations

import pytest

from repro.analysis.clustering import AccountClusterer
from repro.analysis.report import full_report
from repro.analysis.value import ExchangeRateOracle
from repro.common.columns import TxFrame
from repro.common.errors import AnalysisError
from repro.common.records import ChainId
from repro.pipeline import incremental_report

from tests.pipeline.util import assert_reports_identical


@pytest.fixture(scope="module")
def all_records(eos_records, tezos_records, xrp_records):
    return eos_records + tezos_records + xrp_records


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


def _splits(total, count):
    """``count`` contiguous near-equal split points over ``total`` rows."""
    base, extra = divmod(total, count)
    sizes = [base + (1 if index < extra else 0) for index in range(count)]
    boundaries = []
    position = 0
    for size in sizes:
        position += size
        boundaries.append(position)
    return boundaries


def _ingest_in_batches(records, boundaries, oracle, clusterer, workers=0):
    """Grow a frame batch by batch, updating the checkpoint after each."""
    frame = TxFrame()
    checkpoint = None
    report = stats = None
    position = 0
    for boundary in boundaries:
        frame.extend(records[position:boundary])
        position = boundary
        report, checkpoint, stats = incremental_report(
            frame, checkpoint, oracle=oracle, clusterer=clusterer, workers=workers
        )
    return frame, report, stats


class TestBatchIdentity:
    @pytest.mark.parametrize("batches", [1, 2, 7])
    def test_equal_batches(self, all_records, xrp_oracle, xrp_clusterer, batches):
        boundaries = _splits(len(all_records), batches)
        frame, report, stats = _ingest_in_batches(
            all_records, boundaries, xrp_oracle, xrp_clusterer
        )
        expected = full_report(frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
        assert_reports_identical(report, expected, exact_flows=True)
        if batches > 1:
            assert stats.rows_scanned == boundaries[-1] - boundaries[-2]
            assert not stats.chains_rescanned

    def test_ragged_batches(self, all_records, xrp_oracle, xrp_clusterer):
        total = len(all_records)
        # Deliberately uneven: a tiny batch, a huge one, single rows, a tail.
        boundaries = sorted(
            {1, 7, total // 2, total // 2 + 1, total - 3, total - 2, total}
        )
        frame, report, _ = _ingest_in_batches(
            all_records, boundaries, xrp_oracle, xrp_clusterer
        )
        expected = full_report(frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_chains_appearing_mid_stream(self, all_records, xrp_oracle, xrp_clusterer):
        # The concatenated stream is per-chain contiguous, so early batches
        # are EOS-only and the other chains appear in later batches — a new
        # chain's first update must scan all of its rows, never less.
        boundaries = _splits(len(all_records), 5)
        frame, report, _ = _ingest_in_batches(
            all_records, boundaries, xrp_oracle, xrp_clusterer
        )
        expected = full_report(frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
        assert set(report.chains) == {ChainId.EOS, ChainId.TEZOS, ChainId.XRP}
        assert_reports_identical(report, expected, exact_flows=True)

    def test_no_new_rows_is_cheap_and_identical(
        self, all_records, xrp_oracle, xrp_clusterer
    ):
        frame = TxFrame.from_records(all_records)
        report1, checkpoint, _ = incremental_report(
            frame, None, oracle=xrp_oracle, clusterer=xrp_clusterer
        )
        report2, new_checkpoint, stats = incremental_report(
            frame, checkpoint, oracle=xrp_oracle, clusterer=xrp_clusterer
        )
        assert stats.rows_scanned == 0
        assert stats.incremental
        assert_reports_identical(report2, report1, exact_flows=True)
        # Every chain's blob was carried forward — by reference, not by a
        # re-serialisation of identical state.
        assert sorted(stats.chains_carried) == sorted(
            chain.value for chain in report1.chains
        )
        for chain_value in stats.chains_carried:
            assert (
                new_checkpoint.chain_states[chain_value]
                is checkpoint.chain_states[chain_value]
            )

    def test_unchanged_chains_carry_their_blob_forward(
        self, eos_records, tezos_records, xrp_records, xrp_oracle, xrp_clusterer
    ):
        """Rows landing on one chain must not re-snapshot the other two."""
        split = len(xrp_records) // 2
        frame = TxFrame.from_records(
            eos_records + tezos_records + xrp_records[:split]
        )
        _, checkpoint, _ = incremental_report(
            frame, None, oracle=xrp_oracle, clusterer=xrp_clusterer
        )
        frame.extend(xrp_records[split:])  # only XRP advances
        report, new_checkpoint, stats = incremental_report(
            frame, checkpoint, oracle=xrp_oracle, clusterer=xrp_clusterer
        )
        assert stats.rows_scanned == len(xrp_records) - split
        assert sorted(stats.chains_carried) == [
            ChainId.EOS.value,
            ChainId.TEZOS.value,
        ]
        assert not stats.chains_rescanned
        for chain_value in stats.chains_carried:
            assert (
                new_checkpoint.chain_states[chain_value]
                is checkpoint.chain_states[chain_value]
            )
        # The advanced chain was re-captured (fresh, different blob).
        assert (
            new_checkpoint.chain_states[ChainId.XRP.value]
            is not checkpoint.chain_states[ChainId.XRP.value]
        )
        expected = full_report(frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
        assert_reports_identical(report, expected, exact_flows=True)
        # And the carried checkpoint still drives later updates correctly.
        follow_up, _, follow_stats = incremental_report(
            frame, new_checkpoint, oracle=xrp_oracle, clusterer=xrp_clusterer
        )
        assert follow_stats.rows_scanned == 0
        assert_reports_identical(follow_up, expected, exact_flows=True)


class TestParallelCatchUp:
    def test_sharded_catch_up_matches_serial(
        self, all_records, xrp_oracle, xrp_clusterer
    ):
        """A cold update over a large backlog shards across processes."""
        boundaries = _splits(len(all_records), 3)
        frame, report, stats = _ingest_in_batches(
            all_records, boundaries, xrp_oracle, xrp_clusterer, workers=2
        )
        expected = full_report(frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
        assert stats.workers == 2
        assert_reports_identical(report, expected, exact_flows=False)

    def test_parallel_then_serial_updates_compose(
        self, all_records, xrp_oracle, xrp_clusterer
    ):
        """A parallel catch-up's checkpoint feeds later serial updates."""
        split = len(all_records) * 2 // 3
        frame = TxFrame.from_records(all_records[:split])
        _, checkpoint, _ = incremental_report(
            frame, None, oracle=xrp_oracle, clusterer=xrp_clusterer, workers=2
        )
        frame.extend(all_records[split:])
        report, _, stats = incremental_report(
            frame, checkpoint, oracle=xrp_oracle, clusterer=xrp_clusterer
        )
        assert stats.rows_scanned == len(all_records) - split
        expected = full_report(frame, oracle=xrp_oracle, clusterer=xrp_clusterer)
        assert_reports_identical(report, expected, exact_flows=False)


class TestFallbacks:
    def test_out_of_order_history_forces_chain_rescan(self, eos_records):
        """Rows older than the checkpointed series anchor trigger a rescan.

        The throughput accumulator's bin grid is anchored at the chain's
        minimum timestamp; ingesting even older history shifts the anchor,
        the config signature changes, and the incremental reporter falls
        back to a full rescan of the chain — still result-identical.
        """
        cutoff = eos_records[0].timestamp + 1
        later = [r for r in eos_records if r.timestamp > cutoff]
        earlier = [r for r in eos_records if r.timestamp <= cutoff]
        assert earlier and later
        frame = TxFrame.from_records(later)
        _, checkpoint, _ = incremental_report(frame, None)
        frame.extend(earlier)  # older rows arrive late
        report, _, stats = incremental_report(frame, checkpoint)
        assert stats.chains_rescanned == [ChainId.EOS.value]
        assert stats.rows_scanned == len(frame)
        expected = full_report(frame)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_oracle_drift_forces_xrp_rescan(self, xrp_records, xrp_clusterer):
        frame = TxFrame.from_records(xrp_records[: len(xrp_records) // 2])
        oracle_a = ExchangeRateOracle({("USD", "gate"): 1.5})
        _, checkpoint, _ = incremental_report(
            frame, checkpoint=None, oracle=oracle_a, clusterer=xrp_clusterer
        )
        frame.extend(xrp_records[len(xrp_records) // 2 :])
        oracle_b = ExchangeRateOracle({("USD", "gate"): 2.5})
        report, _, stats = incremental_report(
            frame, checkpoint, oracle=oracle_b, clusterer=xrp_clusterer
        )
        assert stats.chains_rescanned == [ChainId.XRP.value]
        expected = full_report(frame, oracle=oracle_b, clusterer=xrp_clusterer)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_garbage_chain_payloads_degrade_to_chain_rescan(self, eos_records):
        """A blob that decodes but carries nonsense state must rescan.

        Signatures can match while the per-accumulator payloads are
        bit-rotted (or hostile): restore_state raises, the reporter
        rebuilds the chain's accumulators, and the figures still come out
        identical to a batch run.
        """
        from repro.common import statecodec

        frame = TxFrame.from_records(eos_records)
        _, checkpoint, _ = incremental_report(frame, None)
        chain = ChainId.EOS.value
        payload_count = len(checkpoint.restore_payloads(chain))
        checkpoint.chain_states[chain] = statecodec.encode(
            [{"wrong": "shape"}] * payload_count
        )
        report, _, stats = incremental_report(frame, checkpoint)
        assert stats.chains_rescanned == [chain]
        assert stats.rows_scanned == len(frame)
        expected = full_report(frame)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_bit_flipped_chain_blob_degrades_to_chain_rescan(self, eos_records):
        """A single flipped byte is caught by the blob checksum."""
        frame = TxFrame.from_records(eos_records)
        _, checkpoint, _ = incremental_report(frame, None)
        chain = ChainId.EOS.value
        blob = bytearray(checkpoint.chain_states[chain])
        blob[len(blob) // 2] ^= 0x01
        checkpoint.chain_states[chain] = bytes(blob)
        assert checkpoint.restore_payloads(chain) is None
        report, _, stats = incremental_report(frame, checkpoint)
        assert stats.chains_rescanned == [chain]
        assert_reports_identical(report, full_report(frame), exact_flows=True)

    def test_garbage_lazy_column_degrades_at_finalize_time(self, eos_records):
        """Checksum-valid garbage inside a lazily stashed column rescans.

        A hostile snapshot can recompute the blob checksum, and the TxStats
        id column is only decoded when the chain's figures are produced —
        the failure must still collapse to a chain rescan, not crash the
        update.
        """
        import zlib

        from repro.common import statecodec

        split = len(eos_records) * 2 // 3
        frame = TxFrame.from_records(eos_records[:split])
        _, checkpoint, _ = incremental_report(frame, None)
        chain = ChainId.EOS.value
        payloads = checkpoint.restore_payloads(chain)
        tx_stats_index = next(
            index
            for index, payload in enumerate(payloads)
            if "seen" in payload or "hll" in payload
        )
        if "seen" in payloads[tx_stats_index]:
            payloads[tx_stats_index]["seen"] = {"n": 3, "blob": b"\xff\xfe\x00ab"}
        else:
            # Sketch mode: the HLL payload is validated on restore, which
            # must likewise collapse to a chain rescan.
            payloads[tx_stats_index]["hll"] = {"mode": "bogus"}
        blob = statecodec.encode(payloads)
        checkpoint.chain_states[chain] = blob
        checkpoint.checksums[chain] = zlib.adler32(blob)
        frame.extend(eos_records[split:])  # a delta forces materialisation
        report, _, stats = incremental_report(frame, checkpoint)
        assert stats.chains_rescanned == [chain]
        assert_reports_identical(report, full_report(frame), exact_flows=True)

    def test_undecodable_chain_blob_degrades_to_chain_rescan(self, eos_records):
        frame = TxFrame.from_records(eos_records)
        _, checkpoint, _ = incremental_report(frame, None)
        chain = ChainId.EOS.value
        checkpoint.chain_states[chain] = b"RSC\x01<" + b"\xff" * 16
        report, _, stats = incremental_report(frame, checkpoint)
        assert stats.chains_rescanned == [chain]
        expected = full_report(frame)
        assert_reports_identical(report, expected, exact_flows=True)

    def test_shrunken_frame_rejected(self, eos_records):
        frame = TxFrame.from_records(eos_records)
        _, checkpoint, _ = incremental_report(frame, None)
        smaller = TxFrame.from_records(eos_records[: len(eos_records) // 2])
        with pytest.raises(AnalysisError):
            incremental_report(smaller, checkpoint)
