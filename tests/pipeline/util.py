"""Shared assertions for the incremental-pipeline tests."""

from __future__ import annotations

import pytest


def assert_reports_identical(actual, expected, exact_flows: bool = True):
    """Figure-for-figure equality of two :class:`FullReport` objects.

    ``exact_flows=True`` asserts the Figure 12 value sums bit-for-bit —
    valid for the serial incremental path, which replays the serial scan
    order exactly.  Parallel catch-up adds shard subtotals, so those tests
    pass ``exact_flows=False`` and compare the sums to within rounding.
    """
    assert set(actual.chains) == set(expected.chains)
    for chain, exp in expected.chains.items():
        act = actual.chains[chain]
        assert act.type_rows == exp.type_rows, (chain, "type_rows")
        assert act.stats == exp.stats, (chain, "stats")
        assert act.throughput == exp.throughput, (chain, "throughput")
        assert act.top_senders == exp.top_senders, (chain, "top_senders")
        assert act.categories == exp.categories, (chain, "categories")
        assert act.top_receivers == exp.top_receivers, (chain, "top_receivers")
        assert act.wash_trading == exp.wash_trading, (chain, "wash_trading")
        assert act.decomposition == exp.decomposition, (chain, "decomposition")
        # Exact equality holds in both stats modes: the exact finalizer is
        # a sorted fold and the sketch finalizer a pure function of bucket
        # sums, so neither depends on scan or merge order.
        assert act.value_distribution == exp.value_distribution, (
            chain,
            "value_distribution",
        )
        if exp.value_flows is None:
            assert act.value_flows is None
        elif exact_flows:
            assert act.value_flows == exp.value_flows, (chain, "value_flows")
        else:
            flows = act.value_flows
            assert [
                (f.sender_cluster, f.receiver_cluster, f.currency, f.payment_count)
                for f in flows.flows
            ] == [
                (f.sender_cluster, f.receiver_cluster, f.currency, f.payment_count)
                for f in exp.value_flows.flows
            ]
            assert flows.total_xrp_value == pytest.approx(
                exp.value_flows.total_xrp_value, rel=1e-9
            )
    assert actual.summary().to_rows() == expected.summary().to_rows()
