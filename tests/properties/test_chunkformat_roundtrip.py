"""Property-based round-trip tests for the v2 binary chunk format.

The format's contract is stronger than "decodes without error": a chunk
written from *any* frame — ragged chain mixes, empty columns, unicode
memos and transaction ids, ``None``-bearing pools — must rebuild a frame
whose records and figures are identical under both kernel backends.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.classify import type_distribution
from repro.collection.chunkformat import decode_chunk, encode_chunk
from repro.common import kernels
from repro.common.columns import TxFrame
from repro.common.records import ChainId, TransactionRecord

DEFAULT_SETTINGS = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

# JSON-able metadata values (the record contract); includes unicode memos.
_metadata_value = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
    st.text(max_size=12),
)

def _record_strategy(contract):
    return st.builds(
        TransactionRecord,
        chain=st.sampled_from(list(ChainId)),
        transaction_id=st.text(min_size=1, max_size=16),
        block_height=st.integers(min_value=0, max_value=10**9),
        timestamp=st.floats(min_value=0, max_value=2e9, allow_nan=False),
        type=st.text(min_size=1, max_size=20),
        sender=st.text(max_size=20),
        receiver=st.text(max_size=20),
        contract=contract,
        amount=st.floats(min_value=0, max_value=1e12, allow_nan=False),
        currency=st.sampled_from(["", "EOS", "XRP", "USD", "EIDOS"]),
        issuer=st.text(max_size=20),
        fee=st.floats(min_value=0, max_value=100, allow_nan=False),
        success=st.booleans(),
        error_code=st.one_of(
            st.none(), st.sampled_from(["", "tecPATH_DRY", "tecUNFUNDED_OFFER"])
        ),
        metadata=st.dictionaries(st.text(max_size=8), _metadata_value, max_size=3),
    )


#: Figure-safe records: the EOS action classifier requires a contract
#: string (real EOS workloads always set one).
record_strategy = _record_strategy(st.text(max_size=20))

#: Pool-stress records: ``None`` contracts exercise the null-bearing pools.
nullable_record_strategy = _record_strategy(st.one_of(st.none(), st.text(max_size=20)))


def _backends():
    names = [kernels.PYTHON]
    if kernels.numpy_available():
        names.append(kernels.NUMPY)
    return names


@DEFAULT_SETTINGS
@given(records=st.lists(record_strategy, max_size=30))
def test_encode_decode_round_trip_is_figure_identical(records):
    frame = TxFrame.from_records(records)
    expected_figures = {
        chain: type_distribution(frame.chain_view(chain)) for chain in frame.chains()
    }
    rebuilt_by_backend = {}
    for backend in _backends():
        with kernels.use_backend(backend):
            blob, _ = encode_chunk(frame.to_payload(arrays=True))
            rebuilt = TxFrame.from_payload(decode_chunk(blob))
            assert list(rebuilt) == records
            assert rebuilt.chains() == frame.chains()
            for chain in frame.chains():
                assert (
                    type_distribution(rebuilt.chain_view(chain))
                    == expected_figures[chain]
                )
            rebuilt_by_backend[backend] = blob
    # The encoded bytes are backend-independent (sharded generation relies
    # on equal payloads encoding to equal bytes regardless of the encoder's
    # active backend).
    assert len(set(rebuilt_by_backend.values())) == 1


@DEFAULT_SETTINGS
@given(records=st.lists(nullable_record_strategy, min_size=1, max_size=20))
def test_extend_from_decoded_payload_matches_direct_extend(records):
    """A frame grown from decoded chunks equals one grown from records."""
    direct = TxFrame.from_records(records)
    blob, _ = encode_chunk(direct.to_payload(arrays=True))
    for backend in _backends():
        with kernels.use_backend(backend):
            grown = TxFrame()
            grown.extend_from_payload(decode_chunk(blob))
            assert list(grown) == records
            assert grown.timestamps_sorted == direct.timestamps_sorted
