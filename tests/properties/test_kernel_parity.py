"""Differential property tests: numpy kernels ≡ pure-python reference kernels.

Every accumulator ships two ``bind_batch`` implementations — the reference
python block kernels and the vectorized numpy kernels — and the contract is
figure-for-figure identity on the serial path, bit-for-bit for the float
sums.  Hypothesis drives both backends over random slices of a generated
multi-chain scenario frame: full scans, contiguous windows, filtered
``TxView`` row arrays, single-chain views (which leave the other chains
empty for the chain-specific accumulators), fully empty selections, and
ragged block sizes down to one row per block.
"""

from __future__ import annotations

from array import array
from random import Random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.accounts import (
    AccountActivityAccumulator,
    SenderCountsAccumulator,
    SenderReceiverPairsAccumulator,
)
from repro.analysis.airdrop import AirdropAccumulator, BoomerangClaimsAccumulator
from repro.analysis.classify import (
    CategoryDistributionAccumulator,
    ContractBreakdownAccumulator,
    TezosCategoryAccumulator,
    TypeDistributionAccumulator,
)
from repro.analysis.clustering import AccountClusterer, ClusterCountsAccumulator
from repro.analysis.engine import AnalysisEngine, TxStatsAccumulator
from repro.analysis.flows import ValueFlowAccumulator
from repro.analysis.governance import GovernanceOpsAccumulator
from repro.analysis.report import FIGURE3_CATEGORIZERS
from repro.analysis.throughput import ThroughputSeriesAccumulator
from repro.analysis.value import (
    ExchangeRateOracle,
    FailureCodeAccumulator,
    ValueDistributionAccumulator,
    XrpDecompositionAccumulator,
)
from repro.analysis.washtrading import TradeExtractionAccumulator, WashTradeAccumulator
from repro.common import kernels
from repro.common.columns import TxFrame, TxView
from repro.common.records import ChainId

pytestmark = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)

PARITY_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def parity_frame(eos_records, tezos_records, xrp_records):
    """A strided multi-chain sample: small enough for many examples, varied
    enough to hit every accumulator's interesting rows (trades, claims,
    failed transactions, valueless payments)."""
    records = eos_records[::40] + tezos_records[::10] + xrp_records[::20]
    return TxFrame.from_records(records)


@pytest.fixture(scope="module")
def parity_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def parity_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


def _all_accumulators(frame, oracle, clusterer):
    """One instance of every accumulator across the analysis modules."""
    start = frame.min_timestamp() or 0.0
    end = frame.max_timestamp()
    return [
        TxStatsAccumulator(),
        TypeDistributionAccumulator(),
        CategoryDistributionAccumulator(),
        ContractBreakdownAccumulator("eosio.token"),
        TezosCategoryAccumulator(),
        ThroughputSeriesAccumulator(
            key_columns=FIGURE3_CATEGORIZERS[ChainId.XRP],
            bin_seconds=6 * 3600.0,
            start=start,
            end=end,
        ),
        AccountActivityAccumulator("sender", 10),
        AccountActivityAccumulator("receiver", 10),
        SenderReceiverPairsAccumulator(),
        SenderCountsAccumulator(),
        ClusterCountsAccumulator(clusterer, "sender"),
        XrpDecompositionAccumulator(oracle),
        ValueDistributionAccumulator(oracle),
        FailureCodeAccumulator(),
        ValueFlowAccumulator(clusterer, oracle),
        TradeExtractionAccumulator(),
        WashTradeAccumulator(),
        BoomerangClaimsAccumulator(),
        AirdropAccumulator(),
        GovernanceOpsAccumulator(),
    ]


@st.composite
def selections(draw):
    return {
        "mode": draw(
            st.sampled_from(["all", "window", "subset", "chain", "empty"])
        ),
        "seed": draw(st.integers(0, 2**31 - 1)),
        "block_rows": draw(st.sampled_from([1, 7, 991, 65_536])),
        "chain": draw(st.sampled_from(list(ChainId))),
        "fraction": draw(st.floats(0.05, 0.9)),
        "offset": draw(st.floats(0.0, 0.9)),
    }


def _select_view(frame: TxFrame, params) -> TxView:
    total = len(frame)
    mode = params["mode"]
    if mode == "all":
        return frame.all_rows()
    if mode == "window":
        start = int(params["offset"] * total)
        stop = min(total, start + max(1, int(params["fraction"] * total)))
        return TxView(frame, range(start, stop))
    if mode == "subset":
        count = max(1, int(params["fraction"] * total))
        sample = sorted(Random(params["seed"]).sample(range(total), count))
        rows = array("q", sample)
        return TxView(frame, rows)
    if mode == "chain":
        return frame.chain_view(params["chain"])
    return TxView(frame, array("q"))


@PARITY_SETTINGS
@given(params=selections())
def test_every_accumulator_parity_on_random_slices(
    parity_frame, parity_oracle, parity_clusterer, params
):
    view = _select_view(parity_frame, params)
    results = {}
    for backend in (kernels.PYTHON, kernels.NUMPY):
        with kernels.use_backend(backend):
            accumulators = _all_accumulators(
                parity_frame, parity_oracle, parity_clusterer
            )
            results[backend] = AnalysisEngine(accumulators).run(
                view, block_rows=params["block_rows"]
            )
    reference = results[kernels.PYTHON]
    vectorized = results[kernels.NUMPY]
    assert set(reference.keys()) == set(vectorized.keys())
    for name in reference.keys():
        # Exact equality — for the float-summing figures (value_flows,
        # airdrop rates) this asserts bit-for-bit serial-path identity.
        assert vectorized[name] == reference[name], (name, params)


@PARITY_SETTINGS
@given(params=selections())
def test_view_helpers_parity_on_random_slices(parity_frame, params):
    """chain_view / time_window / min-max agree between both backends."""
    view = _select_view(parity_frame, params)
    low = view.min_timestamp()
    high = view.max_timestamp()
    windows = {}
    for backend in (kernels.PYTHON, kernels.NUMPY):
        with kernels.use_backend(backend):
            chained = view.chain_view(params["chain"])
            assert view.min_timestamp() == low
            assert view.max_timestamp() == high
            if low is not None:
                mid = low + (high - low) / 2
                window = view.time_window(low, mid)
            else:
                window = view.time_window(0.0, 1.0)
            windows[backend] = (list(chained.rows), list(window.rows))
    assert windows[kernels.PYTHON] == windows[kernels.NUMPY]
