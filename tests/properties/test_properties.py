"""Property-based tests (hypothesis) on core data structures and invariants."""

import functools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.compression import compress_json, decompress_json, split_into_chunks
from repro.common.ratelimit import TokenBucket
from repro.common.records import BlockRecord, ChainId, TransactionRecord
from repro.common.retry import BackoffPolicy
from repro.common.rng import DeterministicRng
from repro.eos.accounts import EosAccountRegistry
from repro.xrp.amounts import IouAmount, drops_to_xrp, xrp_to_drops
from repro.xrp.orderbook import OrderBook
from repro.xrp.trustlines import TrustLineTable

# Some strategies draw hundreds of values per example; silence the
# too-slow health check to keep the suite deterministic across machines.
DEFAULT_SETTINGS = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


# -- serialisation round trips ----------------------------------------------------
record_strategy = st.builds(
    TransactionRecord,
    chain=st.sampled_from(list(ChainId)),
    transaction_id=st.text(min_size=1, max_size=16),
    block_height=st.integers(min_value=0, max_value=10**9),
    timestamp=st.floats(min_value=0, max_value=2e9, allow_nan=False),
    type=st.text(min_size=1, max_size=20),
    sender=st.text(max_size=20),
    receiver=st.text(max_size=20),
    contract=st.text(max_size=20),
    amount=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    currency=st.sampled_from(["", "EOS", "XRP", "USD", "BTC", "EIDOS"]),
    issuer=st.text(max_size=20),
    fee=st.floats(min_value=0, max_value=100, allow_nan=False),
    success=st.booleans(),
    error_code=st.sampled_from(["", "tecPATH_DRY", "tecUNFUNDED_OFFER"]),
    metadata=st.dictionaries(st.text(max_size=8), st.integers(), max_size=3),
)


@DEFAULT_SETTINGS
@given(record=record_strategy)
def test_transaction_record_serialisation_round_trip(record):
    assert TransactionRecord.from_dict(record.to_dict()) == record


@DEFAULT_SETTINGS
@given(records=st.lists(record_strategy, max_size=10), height=st.integers(0, 10**6))
def test_block_record_counts_and_round_trip(records, height):
    block = BlockRecord(
        chain=ChainId.EOS,
        height=height,
        timestamp=0.0,
        producer="producer01a",
        transactions=tuple(records),
    )
    rebuilt = BlockRecord.from_dict(block.to_dict())
    assert rebuilt.action_count == len(records)
    assert rebuilt.transaction_count <= rebuilt.action_count
    assert rebuilt.transaction_count == len({record.transaction_id for record in records})


@DEFAULT_SETTINGS
@given(payload=st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20),
    lambda children: st.lists(children, max_size=5) | st.dictionaries(st.text(max_size=5), children, max_size=5),
    max_leaves=20,
))
def test_compression_round_trip(payload):
    assert decompress_json(compress_json(payload)) == payload


@DEFAULT_SETTINGS
@given(items=st.lists(st.integers(), max_size=200), chunk_size=st.integers(1, 50))
def test_chunking_preserves_order_and_content(items, chunk_size):
    chunks = split_into_chunks(items, chunk_size)
    assert [item for chunk in chunks for item in chunk] == items
    assert all(len(chunk) <= chunk_size for chunk in chunks)


# -- XRP amounts ---------------------------------------------------------------------
@DEFAULT_SETTINGS
@given(xrp=st.floats(min_value=0, max_value=1e11, allow_nan=False))
def test_drops_round_trip_within_one_drop(xrp):
    # One drop of absolute error, plus float rounding at very large amounts.
    assert abs(drops_to_xrp(xrp_to_drops(xrp)) - xrp) <= max(1e-6, xrp * 1e-12)


@DEFAULT_SETTINGS
@given(
    first=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    second=st.floats(min_value=0, max_value=1e9, allow_nan=False),
)
def test_iou_addition_is_commutative(first, second):
    a = IouAmount.iou("USD", first, "rIssuer")
    b = IouAmount.iou("USD", second, "rIssuer")
    assert (a + b).value == (b + a).value


# -- conservation invariants ----------------------------------------------------------
@DEFAULT_SETTINGS
@given(transfers=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4), st.floats(0, 10)), max_size=30))
def test_eos_total_supply_conserved_under_transfers(transfers):
    registry = EosAccountRegistry()
    names = [f"account{letter}" for letter in "abcde"]
    for name in names:
        registry.create(name, initial_balance=100.0)
    total_before = registry.total_supply()
    for sender_index, receiver_index, amount in transfers:
        sender = registry.get(names[sender_index])
        receiver = registry.get(names[receiver_index])
        if sender.balance() >= amount:
            sender.debit(amount)
            receiver.credit(amount)
    assert abs(registry.total_supply() - total_before) < 1e-6


@DEFAULT_SETTINGS
@given(
    operations=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.floats(0.001, 50.0)), max_size=30
    )
)
def test_trustline_transfers_conserve_net_iou_supply(operations):
    """Issued minus redeemed IOUs always equals the sum of holder balances."""
    table = TrustLineTable()
    issuer = "rIssuer"
    holders = ["rA", "rB", "rC", "rD"]
    for holder in holders:
        table.set_trust(holder, "USD", issuer, limit=1e9)
    issued = 0.0
    participants = [issuer] + holders
    for sender_index, receiver_index, amount in operations:
        sender = participants[sender_index]
        receiver = participants[receiver_index + 1] if receiver_index + 1 < len(participants) else issuer
        if sender == receiver:
            continue
        iou = IouAmount.iou("USD", amount, issuer)
        if not table.can_send(sender, iou) or not table.can_receive(receiver, iou):
            continue
        table.transfer(sender, receiver, iou)
        if sender == issuer:
            issued += amount
        if receiver == issuer:
            issued -= amount
    held = sum(table.balance(holder, "USD", issuer) for holder in holders)
    assert abs(held - issued) < 1e-6


# -- order book -------------------------------------------------------------------------
@DEFAULT_SETTINGS
@given(
    offers=st.lists(
        st.tuples(st.booleans(), st.floats(0.1, 10.0), st.floats(0.1, 10.0)),
        min_size=1,
        max_size=30,
    )
)
def test_orderbook_fill_invariants(offers):
    """Filled quantities never exceed offered quantities; fills are symmetric."""
    book = OrderBook()
    for sells_btc, amount, price in offers:
        if sells_btc:
            gets = IouAmount.iou("BTC", amount, "rIssuer")
            pays = IouAmount.native(amount * price)
        else:
            gets = IouAmount.native(amount * price)
            pays = IouAmount.iou("BTC", amount, "rIssuer")
        book.place(f"owner{len(book.all_offers())}", gets, pays)
    for offer in book.all_offers():
        assert offer.filled_gets <= offer.taker_gets.value + 1e-9
        assert offer.remaining_gets >= -1e-9
        if offer.was_filled:
            assert offer.filled_pays > 0.0
    # Every execution moves a positive quantity of two distinct assets.
    for execution in book.executions:
        assert execution.sold.value > 0
        assert execution.bought.value > 0
        assert execution.sold.asset_key != execution.bought.asset_key


# -- rate limiting and backoff --------------------------------------------------------
@DEFAULT_SETTINGS
@given(
    rate=st.floats(0.1, 100.0),
    capacity=st.floats(1.0, 100.0),
    requests=st.lists(st.floats(0.0, 100.0), max_size=50),
)
def test_token_bucket_never_exceeds_capacity(rate, capacity, requests):
    bucket = TokenBucket(rate=rate, capacity=capacity)
    granted_in_burst = 0
    for now in sorted(requests):
        if bucket.try_acquire(now):
            granted_in_burst += 1
        assert bucket.tokens <= capacity + 1e-9


@DEFAULT_SETTINGS
@given(
    base=st.floats(0.01, 10.0),
    multiplier=st.floats(1.0, 5.0),
    attempts=st.integers(0, 20),
)
def test_backoff_is_monotonic_and_bounded(base, multiplier, attempts):
    policy = BackoffPolicy(base_delay=base, multiplier=multiplier, max_delay=base * 1000)
    delays = [policy.delay(attempt) for attempt in range(attempts + 1)]
    assert all(later >= earlier - 1e-12 for earlier, later in zip(delays, delays[1:]))
    assert all(delay <= base * 1000 * (1 + policy.jitter_fraction) for delay in delays)


# -- deterministic RNG -----------------------------------------------------------------
@DEFAULT_SETTINGS
@given(seed=st.integers(0, 2**31 - 1), label=st.text(min_size=1, max_size=10))
def test_rng_fork_reproducible(seed, label):
    first = DeterministicRng(seed).fork(label)
    second = DeterministicRng(seed).fork(label)
    assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]


@DEFAULT_SETTINGS
@given(
    seed=st.integers(0, 2**31 - 1),
    weights=st.dictionaries(st.text(min_size=1, max_size=5), st.floats(0.01, 10.0), min_size=1, max_size=8),
)
def test_categorical_always_returns_a_key(seed, weights):
    rng = DeterministicRng(seed)
    for _ in range(20):
        assert rng.categorical(weights) in weights


# -- incremental pipeline identity ---------------------------------------------------
@functools.lru_cache(maxsize=1)
def _pipeline_workload():
    """One small three-chain workload plus its frozen analysis companions.

    Generated once per test session: the property draws random batch
    splits over these records, so the workload itself can stay fixed.
    """
    from repro.analysis.clustering import AccountClusterer, StaticAccountClusterer
    from repro.analysis.value import ExchangeRateOracle
    from repro.eos.workload import EosWorkloadConfig, EosWorkloadGenerator
    from repro.tezos.workload import TezosWorkloadConfig, TezosWorkloadGenerator
    from repro.xrp.workload import XrpWorkloadConfig, XrpWorkloadGenerator

    window = {"start_date": "2019-10-30", "end_date": "2019-11-01"}
    eos = EosWorkloadGenerator(
        EosWorkloadConfig(
            transactions_per_day=150, blocks_per_day=8, user_account_count=25,
            seed=11, **window
        )
    )
    tezos = TezosWorkloadGenerator(
        TezosWorkloadConfig(
            blocks_per_day=8, baker_count=8, user_account_count=30,
            seed=12, **window
        )
    )
    xrp = XrpWorkloadGenerator(
        XrpWorkloadConfig(
            transactions_per_day=200, ledgers_per_day=8, ordinary_account_count=25,
            spam_accounts_per_wave=8, seed=13, **window
        )
    )
    records = (
        list(eos.stream_records())
        + list(tezos.stream_records())
        + list(xrp.stream_records())
    )
    oracle = ExchangeRateOracle.from_orderbook(xrp.ledger.orderbook)
    clusterer = StaticAccountClusterer.from_clusterer(
        AccountClusterer(xrp.ledger.accounts), xrp.ledger.accounts.addresses()
    )
    return records, oracle, clusterer


@settings(max_examples=12, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(data=st.data())
def test_random_batch_splits_match_single_pass_report(data):
    """Incremental ``update`` == one-shot ``full_report``, figure for figure.

    For an arbitrary split of the record stream into ingestion batches —
    any count, any (ragged) sizes, including empty batches — growing the
    frame batch by batch with a checkpointed incremental report must end at
    exactly the figures of a single serial pass over all rows.
    """
    from repro.analysis.report import full_report
    from repro.common.columns import TxFrame
    from repro.pipeline import incremental_report

    records, oracle, clusterer = _pipeline_workload()
    total = len(records)
    boundaries = sorted(
        data.draw(
            st.lists(st.integers(0, total), min_size=0, max_size=9),
            label="split boundaries",
        )
    ) + [total]
    frame = TxFrame()
    checkpoint = None
    report = None
    position = 0
    for boundary in boundaries:
        frame.extend(records[position:boundary])
        position = boundary
        report, checkpoint, stats = incremental_report(
            frame, checkpoint, oracle=oracle, clusterer=clusterer
        )
        assert stats.watermark_after == len(frame)
    expected = full_report(frame, oracle=oracle, clusterer=clusterer)
    assert set(report.chains) == set(expected.chains)
    for chain, exp in expected.chains.items():
        act = report.chains[chain]
        assert act.type_rows == exp.type_rows
        assert act.stats == exp.stats
        assert act.throughput == exp.throughput
        assert act.top_senders == exp.top_senders
        assert act.categories == exp.categories
        assert act.top_receivers == exp.top_receivers
        assert act.wash_trading == exp.wash_trading
        assert act.decomposition == exp.decomposition
        # The serial incremental path replays the serial scan order, so
        # even the Figure 12 float sums match exactly.
        assert act.value_flows == exp.value_flows
    assert report.summary().to_rows() == expected.summary().to_rows()
