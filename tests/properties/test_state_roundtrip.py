"""Property test: export_state → codec → restore_state ≡ one serial pass.

For every accumulator across the nine analysis modules, Hypothesis drives
random row selections and split points: scanning the selection's prefix,
round-tripping the pre-finalize state through the snapshot codec
(:mod:`repro.common.statecodec`), restoring it into freshly bound
accumulators and scanning the suffix must produce figures identical to one
uninterrupted pass — under **both** kernel backends, bit-for-bit for the
float-summing figures (the serial Figure 12 contract).

This is the end-to-end guarantee the versioned checkpoint format rests on;
the checkpoint store tests cover the durable-file half.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import AccountClusterer
from repro.analysis.engine import BLOCK_ROWS, AnalysisEngine, scan_blocks
from repro.analysis.value import ExchangeRateOracle
from repro.common import kernels, statecodec
from repro.common.columns import TxFrame

from tests.properties.test_kernel_parity import (
    _all_accumulators,
    _select_view,
    selections,
)


@pytest.fixture(scope="module")
def parity_frame(eos_records, tezos_records, xrp_records):
    """Strided multi-chain sample (same shape the parity sweep uses)."""
    records = eos_records[::40] + tezos_records[::10] + xrp_records[::20]
    return TxFrame.from_records(records)


@pytest.fixture(scope="module")
def parity_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def parity_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)

ROUNDTRIP_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BACKENDS = [kernels.PYTHON] + (
    [kernels.NUMPY] if kernels.numpy_available() else []
)


@st.composite
def roundtrip_cases(draw):
    return {
        "selection": draw(selections()),
        "split": draw(st.floats(0.0, 1.0)),
        "backend": draw(st.sampled_from(BACKENDS)),
    }


def _scan(accumulators, frame, rows) -> None:
    """Scan ``rows`` without finalizing — snapshots must be pre-finalize."""
    consumers = [accumulator.bind_batch(frame) for accumulator in accumulators]
    for block in scan_blocks(rows, BLOCK_ROWS):
        for consume in consumers:
            consume(block)


@ROUNDTRIP_SETTINGS
@given(case=roundtrip_cases())
def test_codec_roundtrip_equals_serial_pass(
    parity_frame, parity_oracle, parity_clusterer, case
):
    view = _select_view(parity_frame, case["selection"])
    rows = view.rows
    split = int(len(rows) * case["split"])
    with kernels.use_backend(case["backend"]):
        serial = AnalysisEngine(
            _all_accumulators(parity_frame, parity_oracle, parity_clusterer)
        ).run(view)
        prefix = _all_accumulators(parity_frame, parity_oracle, parity_clusterer)
        _scan(prefix, parity_frame, rows[:split])
        # Snapshot through the full codec: export → bytes → decode.
        payloads = statecodec.decode(
            statecodec.encode(
                [accumulator.export_state() for accumulator in prefix]
            )
        )
        base = _all_accumulators(parity_frame, parity_oracle, parity_clusterer)
        consumers = [accumulator.bind_batch(parity_frame) for accumulator in base]
        for target, payload in zip(base, payloads):
            target.restore_state(payload)
        suffix = rows[split:]
        for consume in consumers:
            consume(suffix)
        for accumulator in base:
            assert accumulator.finalize() == serial[accumulator.name], (
                accumulator.name,
                case,
            )


@ROUNDTRIP_SETTINGS
@given(case=roundtrip_cases())
def test_double_restore_equals_serial_pass(
    parity_frame, parity_oracle, parity_clusterer, case
):
    """Two restored segments (the parallel catch-up shape) replay serially."""
    view = _select_view(parity_frame, case["selection"])
    rows = view.rows
    split = int(len(rows) * case["split"])
    with kernels.use_backend(case["backend"]):
        serial = AnalysisEngine(
            _all_accumulators(parity_frame, parity_oracle, parity_clusterer)
        ).run(view)
        segments = []
        for segment_rows in (rows[:split], rows[split:]):
            scanned = _all_accumulators(parity_frame, parity_oracle, parity_clusterer)
            _scan(scanned, parity_frame, segment_rows)
            segments.append(
                statecodec.decode(
                    statecodec.encode(
                        [accumulator.export_state() for accumulator in scanned]
                    )
                )
            )
        base = _all_accumulators(parity_frame, parity_oracle, parity_clusterer)
        for accumulator in base:
            accumulator.bind_batch(parity_frame)
        for payloads in segments:  # restore strictly in row order
            for target, payload in zip(base, payloads):
                target.restore_state(payload)
        for accumulator in base:
            result = accumulator.finalize()
            expected = serial[accumulator.name]
            if accumulator.name == "value_flows":
                # Restoring two independently scanned segments adds segment
                # subtotals — the documented shard-merge float caveat.
                assert [
                    (f.sender_cluster, f.receiver_cluster, f.currency, f.payment_count)
                    for f in result.flows
                ] == [
                    (f.sender_cluster, f.receiver_cluster, f.currency, f.payment_count)
                    for f in expected.flows
                ]
                assert result.total_xrp_value == pytest.approx(
                    expected.total_xrp_value, rel=1e-9
                )
            elif accumulator.name == "airdrop":
                # Rates divide float sums; compare the exact integer parts.
                assert result.claim_count == expected.claim_count
                assert result.total_actions == expected.total_actions
                assert result.post_launch_actions == expected.post_launch_actions
                assert result.unique_claimers == expected.unique_claimers
            else:
                assert result == expected, (accumulator.name, case)
