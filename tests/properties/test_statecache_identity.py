"""Property-based identity of cached vs uncached out-of-core reports.

The chunk-state aggregate cache is a pure memoization layer: for *any*
chunk partitioning of *any* record mix, under either kernel backend and
either statistics mode, a report folded from cached per-chunk states
must be bit-for-bit identical to the same chunked report computed
without a cache.  A mid-run analysis-config change must key every chunk
to a fresh entry (all misses) and still produce the uncached figures —
never a figure computed from the stale configuration's states.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import AccountClusterer
from repro.analysis.parallel import parallel_report_from_store
from repro.analysis.statecache import ChunkStateCache
from repro.analysis.value import ExchangeRateOracle
from repro.collection.store import FrameStore
from repro.common import kernels, statsmode

from tests.pipeline.util import assert_reports_identical

DEFAULT_SETTINGS = settings(
    max_examples=15, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def _backends():
    names = [kernels.PYTHON]
    if kernels.numpy_available():
        names.append(kernels.NUMPY)
    return names


@pytest.fixture(scope="module")
def xrp_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def xrp_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


def _build_store(tmp_path_factory, records, chunk_rows):
    directory = str(tmp_path_factory.mktemp("prop-store") / "store")
    store = FrameStore(chunk_rows=chunk_rows, directory=directory)
    store.add_records(records)
    store.flush()
    return directory, store.committed_chunk_count


def _report(directory, oracle, clusterer, cache=None):
    return parallel_report_from_store(
        directory, oracle=oracle, clusterer=clusterer, workers=1, cache=cache
    )


@DEFAULT_SETTINGS
@given(
    chunk_rows=st.integers(min_value=311, max_value=2_111),
    eos_take=st.integers(min_value=0, max_value=2_500),
    xrp_take=st.integers(min_value=200, max_value=2_500),
    mode=st.sampled_from([statsmode.EXACT, statsmode.SKETCH]),
    backend=st.sampled_from(_backends()),
)
def test_cached_report_identical_under_random_partitions(
    tmp_path_factory,
    eos_records,
    xrp_records,
    xrp_oracle,
    xrp_clusterer,
    chunk_rows,
    eos_take,
    xrp_take,
    mode,
    backend,
):
    records = eos_records[:eos_take] + xrp_records[:xrp_take]
    directory, chunks = _build_store(tmp_path_factory, records, chunk_rows)
    with kernels.use_backend(backend), statsmode.use_mode(mode):
        uncached = _report(directory, xrp_oracle, xrp_clusterer)
        cold = ChunkStateCache.for_store(directory)
        cold_report = _report(directory, xrp_oracle, xrp_clusterer, cache=cold)
        warm = ChunkStateCache.for_store(directory)
        warm_report = _report(directory, xrp_oracle, xrp_clusterer, cache=warm)
    assert (cold.hits, cold.misses) == (0, chunks)
    assert (warm.hits, warm.misses) == (chunks, 0)
    assert_reports_identical(cold_report, uncached, exact_flows=True)
    assert_reports_identical(warm_report, uncached, exact_flows=True)


@DEFAULT_SETTINGS
@given(
    chunk_rows=st.integers(min_value=311, max_value=1_500),
    xrp_take=st.integers(min_value=500, max_value=2_500),
)
def test_config_change_mid_run_forces_misses_not_stale_figures(
    tmp_path_factory,
    xrp_records,
    xrp_oracle,
    xrp_clusterer,
    chunk_rows,
    xrp_take,
):
    directory, chunks = _build_store(
        tmp_path_factory, xrp_records[:xrp_take], chunk_rows
    )
    # Warm the cache under the scenario oracle...
    warm = ChunkStateCache.for_store(directory)
    _report(directory, xrp_oracle, xrp_clusterer, cache=warm)
    assert warm.misses == chunks

    # ...then change the analysis config: a different oracle changes every
    # accumulator config signature, so each chunk keys to a new entry.
    flat_oracle = ExchangeRateOracle({})
    uncached = _report(directory, flat_oracle, xrp_clusterer)
    changed = ChunkStateCache.for_store(directory)
    changed_report = _report(directory, flat_oracle, xrp_clusterer, cache=changed)
    assert (changed.hits, changed.misses) == (0, chunks)
    assert_reports_identical(changed_report, uncached, exact_flows=True)

    # Both configurations now coexist in the cache; each hits its own keys.
    for oracle in (xrp_oracle, flat_oracle):
        rerun = ChunkStateCache.for_store(directory)
        _report(directory, oracle, xrp_clusterer, cache=rerun)
        assert (rerun.hits, rerun.misses) == (chunks, 0)
