"""Shared workload generators for the sketch error-bound suite.

The adversarial distributions the suite sweeps:

* ``uniform`` — every key distinct, every weight equal: stresses the
  cardinality estimate (HLL) and gives the heavy-hitter summary no signal;
* ``zipf`` — a power-law head over a long tail: the distribution the
  space-saving summary is designed for, and the shape real per-account
  activity takes (the paper's Figures 4-6 are all heavy-headed);
* ``single_hot_key`` — one key carries almost the whole stream: the
  degenerate extreme where every sketch must stay essentially exact.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Dict, List

import pytest


def uniform_keys(count: int, seed: int = 0) -> List[str]:
    """``count`` draws over ``count`` distinct keys (roughly uniform)."""
    rng = Random(seed)
    return [f"u{rng.randrange(count)}" for _ in range(count)]


def zipf_keys(count: int, distinct: int, seed: int = 0, s: float = 1.2) -> List[str]:
    """``count`` draws over ``distinct`` ranks with P(rank) ∝ rank^-s."""
    rng = Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(distinct)]
    return [f"z{value}" for value in rng.choices(range(distinct), weights, k=count)]


def single_hot_key(count: int, seed: int = 0, hot_share: float = 0.98) -> List[str]:
    """One key carries ``hot_share`` of the stream; the rest is distinct."""
    rng = Random(seed)
    return [
        "hot" if rng.random() < hot_share else f"cold{index}"
        for index in range(count)
    ]


DISTRIBUTIONS: Dict[str, Callable[[int], List[str]]] = {
    "uniform": lambda count: uniform_keys(count),
    "zipf": lambda count: zipf_keys(count, max(64, count // 10)),
    "single_hot_key": lambda count: single_hot_key(count),
}


@pytest.fixture(params=sorted(DISTRIBUTIONS))
def key_stream(request):
    """50k keys drawn from one adversarial distribution."""
    return DISTRIBUTIONS[request.param](50_000)
