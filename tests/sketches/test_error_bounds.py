"""Error-bound envelopes: every sketch vs the exact answer it replaces.

Each sketch family is swept across the adversarial distributions from
``conftest`` (uniform, Zipfian, single-hot-key) and checked against its
theoretical guarantee:

* **HyperLogLog** — exact while sparse; once dense, the estimate's
  standard error is ``1.04 / sqrt(m)`` (~0.81 % at ``p = 14``), asserted
  here at a 3-sigma envelope of 2.5 %;
* **SpaceSaving** — per-key certificates ``true <= estimate`` and
  ``estimate - error <= true``; any key whose true count exceeds the
  floor is retained; exact (floor 0) below capacity;
* **QuantileSketch** — relative bucket error ``alpha`` (1 % by default),
  asserted at 1.5 * alpha to absorb nearest-rank discretisation at bucket
  boundaries.

These envelopes are the contract ``docs/architecture.md`` documents and the
figure-level tolerance tests reuse.
"""

from __future__ import annotations

import math
from collections import Counter
from random import Random

import pytest

from repro.common.sketches import (
    DEFAULT_QUANTILE_ALPHA,
    HyperLogLog,
    QuantileSketch,
    SpaceSaving,
    hash64,
)

from tests.sketches.conftest import DISTRIBUTIONS

#: 3-sigma envelope on the dense HLL estimate at p=14.
HLL_ENVELOPE = 3 * 1.04 / math.sqrt(1 << 14)

#: Quantile envelope: alpha plus slack for nearest-rank bucket edges.
QUANTILE_ENVELOPE = 1.5 * DEFAULT_QUANTILE_ALPHA


class TestHyperLogLog:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_sparse_phase_is_exact(self, name):
        keys = DISTRIBUTIONS[name](50_000)
        sketch = HyperLogLog()
        for key in keys:
            sketch.add(key)
        assert sketch.is_sparse
        assert sketch.count() == len(set(keys))

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_dense_estimate_within_envelope(self, name):
        keys = DISTRIBUTIONS[name](50_000)
        # A small sparse limit forces the dense regime at test scale.
        sketch = HyperLogLog(sparse_limit=512)
        for key in keys:
            sketch.add(key)
        exact = len(set(keys))
        if exact <= 512:
            assert sketch.count() == exact  # stream never left sparse
            return
        assert not sketch.is_sparse
        assert abs(sketch.count() - exact) <= HLL_ENVELOPE * exact

    def test_dense_estimate_at_scale(self):
        """200k distinct keys: well past the production sparse limit."""
        sketch = HyperLogLog()
        sketch.update(hash64(f"dense{index}") for index in range(200_000))
        assert not sketch.is_sparse
        assert abs(sketch.count() - 200_000) <= HLL_ENVELOPE * 200_000

    def test_duplicates_never_inflate(self):
        sketch = HyperLogLog(sparse_limit=256)
        for _ in range(50):
            for index in range(1_000):
                sketch.add(f"dup{index}")
        assert abs(sketch.count() - 1_000) <= HLL_ENVELOPE * 1_000


class TestSpaceSaving:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_per_key_certificates(self, name):
        keys = DISTRIBUTIONS[name](50_000)
        truth = Counter(keys)
        sketch = SpaceSaving(capacity=128)
        for key in keys:
            sketch.add(key)
        assert sketch.total == len(keys)
        retained = sketch.counts()
        for key, estimate in retained.items():
            true = truth[key]
            assert true <= estimate, key
            assert estimate - sketch.error(key) <= true, key
        # Completeness: a key heavier than the floor cannot have been lost.
        for key, true in truth.items():
            if true > sketch.floor:
                assert key in retained, (key, true, sketch.floor)

    def test_zipf_head_is_recovered(self):
        keys = DISTRIBUTIONS["zipf"](50_000)
        truth = Counter(keys)
        sketch = SpaceSaving(capacity=128)
        for key in keys:
            sketch.add(key)
        retained = sketch.counts()
        for key, true in truth.most_common(10):
            assert key in retained
            assert retained[key] - sketch.error(key) <= true <= retained[key]

    def test_exact_below_capacity(self):
        keys = DISTRIBUTIONS["zipf"](5_000)
        truth = Counter(keys)
        sketch = SpaceSaving(capacity=2 * len(truth))
        for key in keys:
            sketch.add(key)
        assert sketch.is_exact
        assert sketch.floor == 0
        assert dict(sketch.counts()) == dict(truth)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_sharded_merge_keeps_certificates(self, name):
        keys = DISTRIBUTIONS[name](50_000)
        truth = Counter(keys)
        shards = [SpaceSaving(capacity=128) for _ in range(4)]
        for index, key in enumerate(keys):
            shards[index % 4].add(key)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert merged.total == len(keys)
        retained = merged.counts()
        for key, estimate in retained.items():
            true = truth[key]
            assert true <= estimate, key
            assert estimate - merged.error(key) <= true, key


def _exact_quantile(values, q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def _value_streams():
    rng = Random(11)
    return {
        "uniform": [rng.uniform(0.01, 10_000.0) for _ in range(50_000)],
        "lognormal": [rng.lognormvariate(3.0, 2.0) for _ in range(50_000)],
        "single_hot_value": [42.0] * 49_000 + [rng.uniform(0.5, 5.0) for _ in range(1_000)],
    }


class TestQuantileSketch:
    @pytest.mark.parametrize("name", sorted(_value_streams()))
    def test_quantiles_within_relative_envelope(self, name):
        values = _value_streams()[name]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.total == len(values)
        for q in (0.01, 0.1, 0.5, 0.9, 0.99):
            exact = _exact_quantile(values, q)
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= QUANTILE_ENVELOPE * exact, (name, q)

    @pytest.mark.parametrize("name", sorted(_value_streams()))
    def test_sum_min_max_within_envelope(self, name):
        values = _value_streams()[name]
        sketch = QuantileSketch()
        sketch.extend(values)
        exact_sum = math.fsum(values)
        assert abs(sketch.sum() - exact_sum) <= DEFAULT_QUANTILE_ALPHA * exact_sum
        assert abs(sketch.min_value() - min(values)) <= DEFAULT_QUANTILE_ALPHA * min(values)
        assert abs(sketch.max_value() - max(values)) <= DEFAULT_QUANTILE_ALPHA * max(values)

    def test_constant_stream_is_tight(self):
        sketch = QuantileSketch()
        sketch.extend([7.5] * 10_000)
        for q in (0.0, 0.5, 1.0):
            assert abs(sketch.quantile(q) - 7.5) <= DEFAULT_QUANTILE_ALPHA * 7.5
