"""Figure-level tolerance: the full report in both stats modes.

Two regimes, matching the documented contract:

* at paper scale every sketch is below its capacity, so sketch mode
  reproduces the exact figures bit-for-bit — except the value
  distribution, whose quantile sketch has no exact phase and instead
  carries its alpha relative-error bound;
* forced past capacity (a tiny HLL sparse limit injected into the
  engine), the approximate figures must stay inside the documented
  envelopes while everything the sketches don't touch remains identical.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.analysis import engine as engine_module
from repro.analysis.accounts import AccountActivityAccumulator
from repro.analysis.clustering import AccountClusterer
from repro.analysis.report import full_report
from repro.analysis.value import ExchangeRateOracle
from repro.common import kernels, statsmode
from repro.common.columns import TxFrame
from repro.common.sketches import HyperLogLog

from tests.sketches.test_error_bounds import HLL_ENVELOPE, QUANTILE_ENVELOPE

BACKENDS = [kernels.PYTHON] + (
    [kernels.NUMPY] if kernels.numpy_available() else []
)


@pytest.fixture(scope="module")
def tolerance_frame(eos_records, tezos_records, xrp_records):
    return TxFrame.from_records(eos_records + tezos_records + xrp_records)


@pytest.fixture(scope="module")
def tolerance_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


@pytest.fixture(scope="module")
def tolerance_clusterer(xrp_generator):
    return AccountClusterer(xrp_generator.ledger.accounts)


def _report(frame, oracle, clusterer, mode, backend):
    with kernels.use_backend(backend), statsmode.use_mode(mode):
        return full_report(frame, oracle=oracle, clusterer=clusterer)


def _assert_distribution_within_envelope(sketch_dist, exact_dist):
    if exact_dist is None:
        assert sketch_dist is None
        return
    assert sketch_dist.approximate and not exact_dist.approximate
    assert sketch_dist.count == exact_dist.count
    for attribute in ("total_xrp", "minimum", "maximum", "p50", "p90", "p99"):
        expected = getattr(exact_dist, attribute)
        assert abs(getattr(sketch_dist, attribute) - expected) <= (
            QUANTILE_ENVELOPE * abs(expected)
        ), attribute


@pytest.mark.parametrize("backend", BACKENDS)
def test_paper_scale_sketch_report_matches_exact(
    tolerance_frame, tolerance_oracle, tolerance_clusterer, backend
):
    """Below every sketch capacity the figures are identical, not just close."""
    exact = _report(
        tolerance_frame, tolerance_oracle, tolerance_clusterer, statsmode.EXACT, backend
    )
    sketch = _report(
        tolerance_frame, tolerance_oracle, tolerance_clusterer, statsmode.SKETCH, backend
    )
    assert set(sketch.chains) == set(exact.chains)
    for chain, exact_figures in exact.chains.items():
        sketch_figures = sketch.chains[chain]
        assert sketch_figures.stats == exact_figures.stats, chain
        assert sketch_figures.type_rows == exact_figures.type_rows, chain
        assert sketch_figures.categories == exact_figures.categories, chain
        assert sketch_figures.throughput == exact_figures.throughput, chain
        assert sketch_figures.top_senders == exact_figures.top_senders, chain
        assert sketch_figures.top_receivers == exact_figures.top_receivers, chain
        assert sketch_figures.wash_trading == exact_figures.wash_trading, chain
        assert sketch_figures.decomposition == exact_figures.decomposition, chain
        assert sketch_figures.value_flows == exact_figures.value_flows, chain
        _assert_distribution_within_envelope(
            sketch_figures.value_distribution, exact_figures.value_distribution
        )
    assert sketch.summary().to_rows() == exact.summary().to_rows()


@pytest.mark.parametrize("backend", BACKENDS)
def test_dense_hll_counts_within_envelope(
    tolerance_frame,
    tolerance_oracle,
    tolerance_clusterer,
    backend,
    monkeypatch,
):
    """Past the sparse limit the distinct counts are estimates — bounded ones."""
    monkeypatch.setattr(
        engine_module, "HyperLogLog", partial(HyperLogLog, sparse_limit=512)
    )
    exact = _report(
        tolerance_frame, tolerance_oracle, tolerance_clusterer, statsmode.EXACT, backend
    )
    sketch = _report(
        tolerance_frame, tolerance_oracle, tolerance_clusterer, statsmode.SKETCH, backend
    )
    for chain, exact_figures in exact.chains.items():
        sketch_figures = sketch.chains[chain]
        expected = exact_figures.stats.transaction_count
        estimated = sketch_figures.stats.transaction_count
        assert abs(estimated - expected) <= HLL_ENVELOPE * expected, chain
        # Row-exact fields of the same figure are untouched by the sketch.
        assert sketch_figures.stats.action_count == exact_figures.stats.action_count
        assert sketch_figures.stats.first_timestamp == exact_figures.stats.first_timestamp
        assert sketch_figures.stats.last_timestamp == exact_figures.stats.last_timestamp
        # ... and so is every figure the HLL plays no part in.
        assert sketch_figures.type_rows == exact_figures.type_rows, chain
        assert sketch_figures.top_senders == exact_figures.top_senders, chain


@pytest.mark.parametrize("backend", BACKENDS)
def test_evicting_top_k_stays_inside_certificates(
    tolerance_frame, backend
):
    """A capacity far below the distinct-pair count still ranks the head.

    The accumulators' production capacity keeps paper workloads exact; this
    forces eviction to check the degradation is the documented envelope.
    The summary keys ``(account, type)`` pairs, so an account's total can
    deviate from the truth by at most ``floor`` per type it uses — over
    (per-pair over-count certificates) or under (an evicted minor-type
    pair) — never by unbounded garbage.
    """
    with kernels.use_backend(backend):
        with statsmode.use_mode(statsmode.EXACT):
            exact = AccountActivityAccumulator("sender", 10).run(tolerance_frame)
        with statsmode.use_mode(statsmode.SKETCH):
            accumulator = AccountActivityAccumulator("sender", 10)
            accumulator.capacity = 64  # force eviction at test scale
            approximate = accumulator.run(tolerance_frame)
            floor = accumulator._sketch.floor
    assert floor > 0  # the capacity squeeze actually evicted something
    exact_figures = {activity.account: activity for activity in exact}
    # The heaviest senders dominate the stream; estimates may reorder
    # near-ties but the head of the ranking must survive eviction.
    approximate_totals = {
        activity.account: activity.total for activity in approximate
    }
    for activity in exact[:3]:
        assert activity.account in approximate_totals
    for account, total in approximate_totals.items():
        expected = exact_figures.get(account)
        if expected is None:
            continue
        slack = floor * len(expected.type_breakdown)
        assert expected.total - slack <= total <= expected.total + slack, account
