"""Bounded-memory guarantee: sketch accumulator state is O(1) in rows.

The tentpole claim of sketch mode, asserted with ``tracemalloc``: growing
the workload 4x leaves the traced allocation peak of a sketch-mode
accumulator pass essentially flat, while exact mode's peak grows with the
distinct-key count.  The frame itself and its lazily materialised caches
(ndarray views, the transaction-id hash column) are O(rows) by design and
prewarmed *outside* the traced window — the contract covers accumulator
state, not the dataset.
"""

from __future__ import annotations

import tracemalloc
from random import Random

import pytest

from repro.analysis.accounts import AccountActivityAccumulator, SenderCountsAccumulator
from repro.analysis.engine import BLOCK_ROWS, TxStatsAccumulator, scan_blocks
from repro.analysis.value import ExchangeRateOracle, ValueDistributionAccumulator
from repro.common import statsmode
from repro.common.columns import TxFrame
from repro.common.records import ChainId, TransactionRecord

#: 4x row growth with every transaction id and sender distinct, so the
#: exact accumulators' O(distinct) state actually grows 4x.
SMALL_ROWS = 80_000
LARGE_ROWS = 320_000


def _synthetic_records(rows: int, seed: int = 0):
    rng = Random(seed)
    records = []
    for index in range(rows):
        if index % 8 == 7:
            records.append(
                TransactionRecord(
                    chain=ChainId.XRP,
                    transaction_id=f"x{index}",
                    block_height=index // 64,
                    timestamp=1.5e9 + index,
                    type="Payment",
                    sender=f"xs{index}",
                    receiver=f"xr{index}",
                    amount=rng.uniform(0.1, 10_000.0),
                    currency="XRP",
                )
            )
        else:
            records.append(
                TransactionRecord(
                    chain=ChainId.EOS,
                    transaction_id=f"e{index}",
                    block_height=index // 64,
                    timestamp=1.5e9 + index,
                    type="transfer",
                    sender=f"s{index}",
                    receiver=f"r{index % 97}",
                    contract="eosio.token",
                )
            )
    return records


def _accumulators(oracle):
    return [
        TxStatsAccumulator(),
        AccountActivityAccumulator("sender", 10),
        SenderCountsAccumulator(),
        ValueDistributionAccumulator(oracle),
    ]


def _scan(frame: TxFrame, oracle, mode: str) -> None:
    with statsmode.use_mode(mode):
        consumers = [
            accumulator.bind_batch(frame)
            for accumulator in _accumulators(oracle)
        ]
        for block in scan_blocks(range(len(frame)), BLOCK_ROWS):
            for consume in consumers:
                consume(block)


def _traced_peak(frame: TxFrame, oracle, mode: str) -> int:
    tracemalloc.start()
    try:
        _scan(frame, oracle, mode)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.fixture(scope="module")
def memory_frames():
    oracle = ExchangeRateOracle({})
    frames = {}
    for rows in (SMALL_ROWS, LARGE_ROWS):
        frame = TxFrame.from_records(_synthetic_records(rows))
        frame.transaction_id_hashes()  # prewarm the O(rows) hash column
        # Prewarm the lazily cached ndarray views (and interning tables)
        # with a throwaway pass, so the traced window sees only state.
        _scan(frame, oracle, statsmode.SKETCH)
        frames[rows] = frame
    return frames, oracle


def test_sketch_peak_is_flat_under_4x_growth(memory_frames):
    frames, oracle = memory_frames
    small = _traced_peak(frames[SMALL_ROWS], oracle, statsmode.SKETCH)
    large = _traced_peak(frames[LARGE_ROWS], oracle, statsmode.SKETCH)
    # "Flat": bounded by the sketches' fixed capacities, not by rows.  The
    # 2.0 allowance absorbs allocator noise around the HLL's sparse-to-
    # dense conversion, which only the larger workload crosses.
    assert large <= 2.0 * small, (small, large)


def test_exact_peak_grows_with_rows(memory_frames):
    """The contrast that proves the probe measures what it claims to."""
    frames, oracle = memory_frames
    small = _traced_peak(frames[SMALL_ROWS], oracle, statsmode.EXACT)
    large = _traced_peak(frames[LARGE_ROWS], oracle, statsmode.EXACT)
    assert large >= 2.0 * small, (small, large)


def test_sketch_peak_beats_exact_at_scale(memory_frames):
    """At 320k distinct keys sketch state is a small fraction of exact.

    The sketch side's peak is dominated by the bounded scratch tallies at
    their fold threshold — a constant — while exact grows with every
    distinct key, so this margin only widens at larger scales.
    """
    frames, oracle = memory_frames
    exact = _traced_peak(frames[LARGE_ROWS], oracle, statsmode.EXACT)
    sketch = _traced_peak(frames[LARGE_ROWS], oracle, statsmode.SKETCH)
    assert sketch <= exact / 2, (sketch, exact)
