"""Hypothesis properties: merge-order invariance and merge ≡ concat.

The HyperLogLog and quantile sketches promise more than an error bound:
their *state* is a pure function of the input multiset (hash set for HLL,
bucket histogram for quantiles), so any sharding, any merge order, and any
codec round-trip must reproduce the exact same exported payload as one
serial pass.  The space-saving summary guarantees that only below capacity
(where it is the exact tally); past eviction its retained key set is
order-dependent by design and only the error envelope holds (covered in
``test_error_bounds``).
"""

from __future__ import annotations

from collections import Counter
from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import statecodec
from repro.common.sketches import HyperLogLog, QuantileSketch, SpaceSaving

PROPERTY_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

keys_strategy = st.lists(
    st.text(min_size=0, max_size=12), min_size=0, max_size=300
)
values_strategy = st.lists(
    st.floats(
        min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=300,
)


def _shards(items, seed: int, count: int):
    """Deal ``items`` into ``count`` shards, then shuffle the shard order."""
    rng = Random(seed)
    shards = [[] for _ in range(count)]
    for item in items:
        shards[rng.randrange(count)].append(item)
    rng.shuffle(shards)
    return shards


@PROPERTY_SETTINGS
@given(
    keys=keys_strategy,
    seed=st.integers(0, 2**31 - 1),
    shard_count=st.integers(1, 5),
    sparse_limit=st.sampled_from([4, 64, 65_536]),
)
def test_hll_any_shard_order_equals_serial(keys, seed, shard_count, sparse_limit):
    serial = HyperLogLog(sparse_limit=sparse_limit)
    for key in keys:
        serial.add(key)
    merged = HyperLogLog(sparse_limit=sparse_limit)
    for shard_keys in _shards(keys, seed, shard_count):
        shard = HyperLogLog(sparse_limit=sparse_limit)
        for key in shard_keys:
            shard.add(key)
        merged.merge(shard)
    assert merged.export_state() == serial.export_state()
    assert merged.count() == serial.count()


@PROPERTY_SETTINGS
@given(
    keys=keys_strategy,
    split=st.floats(0.0, 1.0),
    sparse_limit=st.sampled_from([4, 65_536]),
)
def test_hll_merge_equals_concat(keys, split, sparse_limit):
    cut = int(len(keys) * split)
    concat = HyperLogLog(sparse_limit=sparse_limit)
    for key in keys:
        concat.add(key)
    left = HyperLogLog(sparse_limit=sparse_limit)
    for key in keys[:cut]:
        left.add(key)
    right = HyperLogLog(sparse_limit=sparse_limit)
    for key in keys[cut:]:
        right.add(key)
    left.merge(right)
    assert left.export_state() == concat.export_state()


@PROPERTY_SETTINGS
@given(
    values=values_strategy,
    seed=st.integers(0, 2**31 - 1),
    shard_count=st.integers(1, 5),
)
def test_quantile_any_shard_order_equals_serial(values, seed, shard_count):
    serial = QuantileSketch()
    serial.extend(values)
    merged = QuantileSketch()
    for shard_values in _shards(values, seed, shard_count):
        shard = QuantileSketch()
        shard.extend(shard_values)
        merged.merge(shard)
    assert merged.export_state() == serial.export_state()
    assert merged.total == serial.total


@PROPERTY_SETTINGS
@given(values=values_strategy, split=st.floats(0.0, 1.0))
def test_quantile_merge_equals_concat(values, split):
    cut = int(len(values) * split)
    concat = QuantileSketch()
    concat.extend(values)
    left = QuantileSketch()
    left.extend(values[:cut])
    right = QuantileSketch()
    right.extend(values[cut:])
    left.merge(right)
    assert left.export_state() == concat.export_state()


@PROPERTY_SETTINGS
@given(
    keys=keys_strategy,
    seed=st.integers(0, 2**31 - 1),
    shard_count=st.integers(1, 5),
)
def test_space_saving_below_capacity_any_order_is_exact(keys, seed, shard_count):
    """Below capacity the summary is the exact tally in every merge order."""
    merged = SpaceSaving(capacity=1_000)
    for shard_keys in _shards(keys, seed, shard_count):
        shard = SpaceSaving(capacity=1_000)
        for key in shard_keys:
            shard.add(key)
        merged.merge(shard)
    assert merged.is_exact
    assert dict(merged.counts()) == dict(Counter(keys))


@PROPERTY_SETTINGS
@given(keys=keys_strategy, values=values_strategy)
def test_codec_round_trip_preserves_state(keys, values):
    """export → statecodec bytes → restore reproduces the exported payload."""
    hll = HyperLogLog(sparse_limit=32)
    quantiles = QuantileSketch()
    # The accumulators key the heavy-hitter summary by interned integer
    # codes (or tuples of codes); its codec payload is integer columns.
    heavy = SpaceSaving(capacity=16)
    for key in keys:
        hll.add(key)
        heavy.add(len(key))
    quantiles.extend(values)
    for original, blank in (
        (hll, HyperLogLog(sparse_limit=32)),
        (quantiles, QuantileSketch()),
        (heavy, SpaceSaving(capacity=16)),
    ):
        payload = statecodec.decode(statecodec.encode(original.export_state()))
        blank.restore_state(payload)
        assert blank.export_state() == original.export_state()
