"""Satellite property: sharded codec round-trips ≡ one serial pass.

For every sketch-backed accumulator, Hypothesis deals the frame's rows
into random shards, scans each shard independently, round-trips every
shard's pre-finalize state through the snapshot codec
(:mod:`repro.common.statecodec`), and restores the shards into one fresh
accumulator in a *shuffled* order — the figures must equal a single
uninterrupted pass, under both kernel backends and in both stats modes.

This is the process-sharding contract the parallel engine and the
out-of-core chunk folds rely on: sketch state is a pure function of the
scanned multiset (HLL hash set, quantile buckets) or exact below capacity
(heavy hitters at paper scale), so shard order must never show through.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import replace
from random import Random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.accounts import (
    AccountActivityAccumulator,
    SenderCountsAccumulator,
    SenderReceiverPairsAccumulator,
)
from repro.analysis.engine import BLOCK_ROWS, TxStatsAccumulator, scan_blocks
from repro.analysis.value import ExchangeRateOracle, ValueDistributionAccumulator
from repro.common import kernels, statecodec, statsmode
from repro.common.columns import TxFrame

BACKENDS = [kernels.PYTHON] + (
    [kernels.NUMPY] if kernels.numpy_available() else []
)

SHARD_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def shard_frame(eos_records, tezos_records, xrp_records):
    records = eos_records[::40] + tezos_records[::10] + xrp_records[::20]
    return TxFrame.from_records(records)


@pytest.fixture(scope="module")
def shard_oracle(xrp_generator):
    return ExchangeRateOracle.from_orderbook(xrp_generator.ledger.orderbook)


def _sketch_backed_accumulators(oracle, mode):
    # The pair profiler keeps every receiver (no top-k cut): equal-count
    # receivers rank by first-seen scan order, which random sharding is
    # free to permute, so the cut boundary is the one shard-order-sensitive
    # output in the suite.  With no cut, ``_canonical`` sorting makes the
    # profiles a pure function of the pair multiset.
    return [
        TxStatsAccumulator(stats=mode),
        AccountActivityAccumulator("sender", 10, stats=mode),
        AccountActivityAccumulator("receiver", 10, stats=mode),
        SenderReceiverPairsAccumulator(5, 1 << 20, stats=mode),
        SenderCountsAccumulator(stats=mode),
        ValueDistributionAccumulator(oracle, stats=mode),
    ]


def _canonical(accumulator, figures):
    if isinstance(accumulator, SenderReceiverPairsAccumulator):
        # Recompute the fan-out stdev over *sorted* counts: the production
        # finalizer sums squared deviations in dict-iteration order, which
        # sharding permutes, moving the float result by an ULP.
        canonical = []
        for profile in figures:
            counts = sorted(count for _, count, _ in profile.top_receivers)
            mean = profile.mean_per_receiver
            variance = (
                sum((count - mean) ** 2 for count in counts) / len(counts)
                if counts
                else 0.0
            )
            canonical.append(
                replace(
                    profile,
                    stdev_per_receiver=math.sqrt(variance),
                    top_receivers=tuple(sorted(profile.top_receivers)),
                )
            )
        return canonical
    return figures


def _scan(accumulators, frame, rows):
    consumers = [accumulator.bind_batch(frame) for accumulator in accumulators]
    for block in scan_blocks(rows, BLOCK_ROWS):
        for consume in consumers:
            consume(block)


@SHARD_SETTINGS
@given(
    seed=st.integers(0, 2**31 - 1),
    shard_count=st.integers(1, 5),
    backend=st.sampled_from(BACKENDS),
    mode=st.sampled_from([statsmode.EXACT, statsmode.SKETCH]),
)
def test_random_shard_order_roundtrip_equals_serial(
    shard_frame, shard_oracle, seed, shard_count, backend, mode
):
    rng = Random(seed)
    total = len(shard_frame)
    shard_rows = [[] for _ in range(shard_count)]
    for row in range(total):
        shard_rows[rng.randrange(shard_count)].append(row)
    with kernels.use_backend(backend):
        serial = _sketch_backed_accumulators(shard_oracle, mode)
        _scan(serial, shard_frame, range(total))
        expected = [
            _canonical(accumulator, accumulator.finalize())
            for accumulator in serial
        ]

        payload_sets = []
        for rows in shard_rows:
            shard = _sketch_backed_accumulators(shard_oracle, mode)
            _scan(shard, shard_frame, array("q", rows))
            payload_sets.append(
                statecodec.decode(
                    statecodec.encode(
                        [accumulator.export_state() for accumulator in shard]
                    )
                )
            )
        rng.shuffle(payload_sets)  # restore order must not matter
        merged = _sketch_backed_accumulators(shard_oracle, mode)
        for accumulator in merged:
            accumulator.bind_batch(shard_frame)
        for payloads in payload_sets:
            for accumulator, payload in zip(merged, payloads):
                accumulator.restore_state(payload)
        for accumulator, expect in zip(merged, expected):
            assert _canonical(accumulator, accumulator.finalize()) == expect, (
                accumulator.name,
                mode,
                backend,
            )
