"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import load_or_generate, main
from repro.common import kernels
from repro.eos.workload import EosWorkloadConfig
from repro.scenarios import PaperScenario, register_scenario
from repro.tezos.workload import TezosWorkloadConfig
from repro.xrp.workload import XrpWorkloadConfig

TINY_SCENARIO = "cli-tiny"


def _tiny_scenario(seed: int = 7) -> PaperScenario:
    """Four days around the EIDOS launch, small enough for per-test runs."""
    return PaperScenario(
        name="cli-tiny",
        eos=EosWorkloadConfig(
            start_date="2019-10-30",
            end_date="2019-11-03",
            transactions_per_day=60,
            blocks_per_day=4,
            user_account_count=20,
            seed=seed,
        ),
        tezos=TezosWorkloadConfig(
            start_date="2019-10-30",
            end_date="2019-11-03",
            blocks_per_day=4,
            baker_count=8,
            user_account_count=30,
            seed=seed + 1,
        ),
        xrp=XrpWorkloadConfig(
            start_date="2019-10-30",
            end_date="2019-11-03",
            transactions_per_day=80,
            ledgers_per_day=4,
            ordinary_account_count=15,
            spam_accounts_per_wave=5,
            seed=seed + 2,
        ),
    )


register_scenario(TINY_SCENARIO, _tiny_scenario, overwrite=True)


def _run(argv) -> tuple:
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestListAndScenario:
    def test_list_names_every_scenario(self):
        code, output = _run(["list"])
        assert code == 0
        for name in ("paper", "medium", "small", "eidos_flood", TINY_SCENARIO):
            assert name in output

    def test_scenario_details(self):
        code, output = _run(["scenario", TINY_SCENARIO])
        assert code == 0
        assert "transactions_per_day" in output
        assert "scale factors" in output

    def test_unknown_scenario_exits_nonzero(self, capsys):
        code, _ = _run(["report", "--scale", "no-such-scenario"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestReport:
    def test_serial_report(self):
        code, output = _run(["report", "--scale", TINY_SCENARIO])
        assert code == 0
        assert "Summary of findings" in output
        assert "serial single-pass engine" in output

    def test_parallel_report_matches_serial_summary(self):
        code_serial, serial = _run(["report", "--scale", TINY_SCENARIO])
        code_parallel, parallel = _run(
            ["report", "--scale", TINY_SCENARIO, "--workers", "2"]
        )
        assert code_serial == code_parallel == 0
        assert _summary_lines(serial) == _summary_lines(parallel)
        assert "parallel engine (2 workers)" in parallel

    def test_json_output_is_pure_json(self):
        """In --json mode stdout carries only the payload (pipe-friendly)."""
        code, output = _run(["report", "--scale", TINY_SCENARIO, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert set(payload) == {"eos", "tezos", "xrp"}
        assert "type_distribution" in payload["xrp"]

    def test_cache_skips_generation_and_is_identical(self, tmp_path):
        cache = str(tmp_path)
        code_first, first = _run(
            ["report", "--scale", TINY_SCENARIO, "--cache", cache]
        )
        code_second, second = _run(
            ["report", "--scale", TINY_SCENARIO, "--cache", cache]
        )
        assert code_first == code_second == 0
        assert "(generated in" in first
        assert "(cache in" in second
        assert _summary_lines(first) == _summary_lines(second)

    def test_stale_cache_chunks_cleaned_on_open(self, tmp_path):
        """Leftover chunk files must not leak rows into a rehydrated dataset.

        The frame store's manifest is the commit point: a chunk file the
        manifest never committed (here: a stale leftover from an older
        layout) is cleaned on open, so the cache stays valid — no
        regeneration, no phantom rows.
        """
        import shutil

        generated = load_or_generate(TINY_SCENARIO, 7, cache_root=str(tmp_path))
        directory = tmp_path / f"{TINY_SCENARIO}-seed7"
        chunks = sorted(directory.glob("frame-chunk-*.bin"))
        shutil.copy(chunks[0], directory / "frame-chunk-999999.bin")
        reloaded = load_or_generate(TINY_SCENARIO, 7, cache_root=str(tmp_path))
        assert reloaded.from_cache is True  # uncommitted chunk cleaned, not trusted
        assert list(reloaded.frame) == list(generated.frame)
        assert not (directory / "frame-chunk-999999.bin").exists()

    def test_cached_dataset_round_trips_frame(self, tmp_path):
        generated = load_or_generate(TINY_SCENARIO, 7, cache_root=str(tmp_path))
        cached = load_or_generate(TINY_SCENARIO, 7, cache_root=str(tmp_path))
        assert generated.from_cache is False
        assert cached.from_cache is True
        assert list(cached.frame) == list(generated.frame)
        for currency, issuer in generated.oracle.known_assets():
            assert cached.oracle.rate(currency, issuer) == generated.oracle.rate(
                currency, issuer
            )


class TestBench:
    def test_bench_reports_speedup(self, tmp_path):
        code, output = _run(
            [
                "bench",
                "--scale",
                TINY_SCENARIO,
                "--cache",
                str(tmp_path),
                "--workers",
                "2",
                "--repeat",
                "1",
            ]
        )
        assert code == 0
        assert "speedup" in output
        assert "python" in output  # the reference backend is always timed

    def test_bench_json_writes_trajectory_point(self, tmp_path):
        code, output = _run(
            [
                "bench",
                "--scale",
                TINY_SCENARIO,
                "--cache",
                str(tmp_path),
                "--repeat",
                "1",
                "--json",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["schema"] == 1
        assert payload["rows"] > 0
        assert payload["scenario"] == TINY_SCENARIO
        assert set(payload["figures"]) == {
            "type_distribution",
            "top_senders",
            "throughput_series",
            "tx_stats",
        }
        reference = payload["backends"][kernels.PYTHON]
        assert reference["full_report_seconds"] > 0
        assert reference["rows_per_second"] > 0
        checkpoint = payload["checkpoint"]
        assert checkpoint["snapshot_seconds"] > 0
        assert checkpoint["restore_seconds"] > 0
        assert checkpoint["snapshot_bytes"] > 0
        assert checkpoint["pickle_round_trip_seconds"] > 0
        assert checkpoint["speedup_vs_pickle"] > 0
        if kernels.numpy_available():
            assert kernels.NUMPY in payload["backends"]
            assert payload["speedup_numpy_vs_python"] > 0
        trajectory_files = sorted(tmp_path.glob("BENCH_*.json"))
        assert len(trajectory_files) == 1
        on_disk = json.loads(trajectory_files[0].read_text())
        assert on_disk == payload
        assert trajectory_files[0].name == f"BENCH_{payload['revision']}.json"


def _summary_lines(output: str):
    lines = output.splitlines()
    start = next(
        index for index, line in enumerate(lines) if "Summary of findings" in line
    )
    return lines[start:]


class TestPipelineCommands:
    """The incremental front door: ingest | update | watch."""

    def test_ingest_then_update_then_resume(self, tmp_path):
        data = str(tmp_path / "pipe")
        code, out = _run(
            ["ingest", "--data", data, "--scale", TINY_SCENARIO, "--batches", "3"]
        )
        assert code == 0
        assert "Ingested 3 batch(es)" in out
        code, out = _run(["update", "--data", data])
        assert code == 0
        assert "full rescan" in out  # first update has no checkpoint
        assert "Summary of findings" in out
        # Second ingest appends only the next batches; update is incremental.
        code, out = _run(["ingest", "--data", data, "--batches", "2"])
        assert code == 0
        assert "Ingested 2 batch(es)" in out
        code, out = _run(["update", "--data", data])
        assert code == 0
        assert "(incremental)" in out

    def test_update_json_payload(self, tmp_path):
        data = str(tmp_path / "pipe")
        assert _run(["ingest", "--data", data, "--scale", TINY_SCENARIO])[0] == 0
        code, out = _run(["update", "--data", data, "--json"])
        assert code == 0
        payload = json.loads(out)
        assert set(payload) >= {"eos", "tezos", "xrp", "_update"}
        assert payload["_update"]["rows_scanned"] == payload["_update"]["rows_total"]

    def test_ingest_exhausts_stream(self, tmp_path):
        data = str(tmp_path / "pipe")
        assert _run(["ingest", "--data", data, "--scale", TINY_SCENARIO])[0] == 0
        code, out = _run(["ingest", "--data", data])
        assert code == 0
        assert "Nothing to ingest" in out

    def test_pipeline_pins_scenario_settings(self, tmp_path):
        data = str(tmp_path / "pipe")
        assert _run(
            ["ingest", "--data", data, "--scale", TINY_SCENARIO, "--batches", "1"]
        )[0] == 0
        code, _ = _run(["ingest", "--data", data, "--scale", "small"])
        assert code == 2  # pinned settings mismatch is a clean CLI error

    def test_watch_prints_live_updates_and_resumes(self, tmp_path):
        data = str(tmp_path / "pipe")
        code, out = _run(
            [
                "watch",
                "--data",
                data,
                "--scale",
                TINY_SCENARIO,
                "--batches",
                "2",
                "--batch-hours",
                "12",
            ]
        )
        assert code == 0
        assert "batch 0:" in out and "batch 1:" in out
        assert "Summary of findings" in out
        # Resuming continues at batch 2 without re-ingesting.
        code, out = _run(["watch", "--data", data, "--batches", "1"])
        assert code == 0
        assert "batch 2:" in out and "batch 0:" not in out

    def test_watch_incremental_matches_batch_report(self, tmp_path):
        from repro.analysis.report import full_report
        from repro.pipeline import Pipeline

        data = str(tmp_path / "pipe")
        code, _ = _run(["watch", "--data", data, "--scale", TINY_SCENARIO])
        assert code == 0
        pipeline = Pipeline(data)
        report, stats = pipeline.update()
        assert stats.rows_scanned == 0  # everything already covered
        oracle, clusterer = pipeline.analysis_config()
        expected = full_report(pipeline.frame, oracle=oracle, clusterer=clusterer)
        assert report.summary().to_rows() == expected.summary().to_rows()


TINY_WINDOWED = "cli-tiny-windowed"


def _tiny_windowed_scenario(seed: int = 7) -> PaperScenario:
    """The tiny scenario split into two generation windows."""
    base = _tiny_scenario(seed)
    import dataclasses

    return dataclasses.replace(
        base, name=TINY_WINDOWED, generation_windows=2
    )


register_scenario(TINY_WINDOWED, _tiny_windowed_scenario, overwrite=True)


class TestOutOfCore:
    """The chunk engine's CLI front door: report --out-of-core + bench."""

    def test_report_out_of_core_requires_cache(self, capsys):
        code = main(["report", "--scale", TINY_SCENARIO, "--out-of-core"])
        assert code != 0
        assert "--cache" in capsys.readouterr().err

    def test_report_out_of_core_matches_serial_summary(self, tmp_path):
        cache = str(tmp_path)
        code_serial, serial = _run(
            ["report", "--scale", TINY_SCENARIO, "--cache", cache]
        )
        code_ooc, ooc = _run(
            [
                "report", "--scale", TINY_SCENARIO, "--cache", cache,
                "--workers", "2", "--out-of-core",
            ]
        )
        assert code_serial == code_ooc == 0
        assert "out-of-core chunk engine (2 workers)" in ooc
        assert _summary_lines(serial) == _summary_lines(ooc)

    def test_windowed_scenario_report_via_sharded_generation(self, tmp_path):
        """A generation_windows>1 scenario generates shard-parallel into the
        cache and reports out-of-core without materialising the frame."""
        cache = str(tmp_path)
        code_first, first = _run(
            [
                "report", "--scale", TINY_WINDOWED, "--cache", cache,
                "--out-of-core", "--gen-workers", "2",
            ]
        )
        code_again, again = _run(
            ["report", "--scale", TINY_WINDOWED, "--cache", cache, "--out-of-core"]
        )
        assert code_first == code_again == 0
        assert "(generated in" in first
        assert "(cache in" in again
        assert _summary_lines(first) == _summary_lines(again)

    def test_ensure_store_round_trips_cache(self, tmp_path):
        from repro.cli import ensure_store

        built = ensure_store(TINY_WINDOWED, 7, str(tmp_path), gen_workers=1)
        cached = ensure_store(TINY_WINDOWED, 7, str(tmp_path))
        assert built.from_cache is False
        assert cached.from_cache is True
        assert cached.rows == built.rows > 0
        for currency, issuer in built.oracle.known_assets():
            assert cached.oracle.rate(currency, issuer) == built.oracle.rate(
                currency, issuer
            )

    def test_bench_stanzas_report_real_workers(self, tmp_path):
        import os as _os

        code, output = _run(
            [
                "bench", "--scale", TINY_SCENARIO, "--cache", str(tmp_path),
                "--workers", "2", "--repeat", "1", "--json", "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads(output)
        parallel = payload["parallel"]
        # The satellite fix: the stanza reports the real pool fan-out, not
        # a hardcoded 1.
        assert parallel["workers"] == 2
        assert parallel["processes"] == 2
        assert parallel["mode"] == "pool"
        assert parallel["cpu_count"] == (_os.cpu_count() or 1)
        assert parallel["speedup_vs_serial"] > 0
        if parallel["cpu_count"] == 1:
            assert "note" in parallel
        out_of_core = payload["out_of_core"]
        assert out_of_core["workers"] == 2
        assert out_of_core["rows"] == payload["rows"]
        assert out_of_core["chunks"] >= 1
        assert out_of_core["speedup_vs_serial"] > 0
        assert out_of_core["parent_peak_rss_kb"] > 0
        assert out_of_core["workers_peak_rss_kb"] > 0
