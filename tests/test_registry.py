"""Tests for the scenario registry and the two stress scenarios."""

import pytest

from repro.common.clock import timestamp_from_iso
from repro.common.columns import TxFrame
from repro.common.errors import AnalysisError
from repro.common.records import ChainId
from repro.scenarios import get_scenario, register_scenario, scenario_names
from repro.scenarios.registry import eidos_flood, spam_storm


class TestRegistry:
    def test_builtin_names_present(self):
        names = scenario_names()
        for expected in ("paper", "medium", "small", "eidos_flood", "spam_storm"):
            assert expected in names

    def test_get_scenario_passes_seed(self):
        first = get_scenario("small", seed=3)
        second = get_scenario("small", seed=9)
        assert first.eos.seed == 3 and second.eos.seed == 9

    def test_unknown_name_raises(self):
        with pytest.raises(AnalysisError):
            get_scenario("no-such-scenario")

    def test_unknown_name_error_lists_registered_names(self):
        """Never a bare KeyError: the message names every registered scenario."""
        with pytest.raises(AnalysisError) as excinfo:
            get_scenario("no-such-scenario")
        message = str(excinfo.value)
        for name in scenario_names():
            assert name in message

    def test_unknown_name_error_suggests_close_match(self):
        with pytest.raises(AnalysisError) as excinfo:
            get_scenario("smal")
        assert "did you mean 'small'" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError):
            register_scenario("small", lambda seed=7: get_scenario("small", seed))

    def test_overwrite_allowed_when_requested(self):
        factory = lambda seed=7: get_scenario("small", seed)
        register_scenario("tmp-overwrite", factory)
        register_scenario("tmp-overwrite", factory, overwrite=True)
        assert "tmp-overwrite" in scenario_names()


class TestEidosFlood:
    def test_multiplier_is_ten_times_the_paper_default(self):
        scenario = eidos_flood()
        assert scenario.eos.eidos_traffic_multiplier == pytest.approx(120.0)
        assert scenario.eos.eidos_share >= 0.95

    def test_window_straddles_launch(self):
        eos = eidos_flood().eos
        assert eos.start_timestamp < eos.eidos_launch_timestamp < eos.end_timestamp

    def test_flood_dominates_generated_traffic(self):
        from repro.eos.workload import EosWorkloadConfig, EosWorkloadGenerator
        from repro.analysis.airdrop import analyze_airdrop

        config = eidos_flood(seed=5).eos
        # Shrink the per-day volume so the test stays fast while keeping the
        # 120x multiplier shape.
        small = EosWorkloadConfig(
            start_date=config.start_date,
            end_date=config.end_date,
            transactions_per_day=30,
            eidos_traffic_multiplier=config.eidos_traffic_multiplier,
            eidos_share=config.eidos_share,
            blocks_per_day=6,
            user_account_count=40,
            seed=config.seed,
        )
        generator = EosWorkloadGenerator(small)
        frame = TxFrame()
        frame.extend(generator.stream_records())
        report = analyze_airdrop(frame)
        assert report.dominates_post_launch_traffic
        assert report.traffic_multiplier > 20.0


class TestSpamStorm:
    def test_waves_overlap(self):
        waves = spam_storm().xrp.spam_waves
        assert len(waves) >= 3
        overlaps = 0
        for i, (start_a, end_a, _) in enumerate(waves):
            for start_b, end_b, _ in waves[i + 1:]:
                if (
                    timestamp_from_iso(start_a) < timestamp_from_iso(end_b)
                    and timestamp_from_iso(start_b) < timestamp_from_iso(end_a)
                ):
                    overlaps += 1
        assert overlaps >= 2

    def test_stacked_intensity_in_the_overlap(self):
        from repro.xrp.workload import XrpWorkloadGenerator, XrpWorkloadConfig

        config = spam_storm(seed=5).xrp
        generator = XrpWorkloadGenerator(
            XrpWorkloadConfig(
                start_date=config.start_date,
                end_date=config.end_date,
                transactions_per_day=80,
                ledgers_per_day=4,
                ordinary_account_count=30,
                spam_accounts_per_wave=10,
                spam_waves=config.spam_waves,
                seed=config.seed,
            )
        )
        # 2019-11-16 lies inside all three waves: 1 + 2 + 3 + 1 = 7x.
        assert generator._in_spam_wave(
            timestamp_from_iso("2019-11-16")
        ) == pytest.approx(1.0 + 2.0 + 3.0 + 1.0)
        # Outside every wave there is no multiplier.
        assert generator._in_spam_wave(timestamp_from_iso("2019-10-16")) is None

    def test_storm_shows_up_in_throughput(self):
        from repro.analysis.report import compute_chain_figures
        from repro.xrp.workload import XrpWorkloadGenerator, XrpWorkloadConfig

        config = spam_storm(seed=5).xrp
        generator = XrpWorkloadGenerator(
            XrpWorkloadConfig(
                start_date=config.start_date,
                end_date=config.end_date,
                transactions_per_day=200,
                ledgers_per_day=6,
                ordinary_account_count=40,
                spam_accounts_per_wave=15,
                spam_waves=config.spam_waves,
                seed=config.seed,
            )
        )
        frame = TxFrame()
        frame.extend(generator.stream_records())
        figures = compute_chain_figures(frame, ChainId.XRP)
        payments = figures.throughput.series_for("Payment")
        peak_index = max(range(len(payments)), key=payments.__getitem__)
        peak_time = figures.throughput.bin_start(peak_index)
        in_wave = any(
            timestamp_from_iso(start) <= peak_time < timestamp_from_iso(end)
            for start, end, _ in config.spam_waves
        )
        assert in_wave
