"""Tests for the scenario configurations and their scale bookkeeping."""

import pytest

from repro.common.clock import SECONDS_PER_DAY
from repro.scenarios import medium_scenario, paper_scenario, small_scenario
from repro.scenarios.paper import REAL_TRANSACTIONS_PER_DAY


class TestScenarioWindows:
    def test_paper_scenario_covers_the_observation_window(self):
        scenario = paper_scenario()
        assert scenario.eos.start_date == "2019-10-01"
        assert scenario.eos.end_date == "2020-01-01"
        assert scenario.tezos.start_date == "2019-09-29"
        assert scenario.xrp.start_date == "2019-10-01"
        assert scenario.eos.total_days == pytest.approx(92.0)

    def test_small_scenario_straddles_the_eidos_launch(self):
        scenario = small_scenario()
        eos = scenario.eos
        assert eos.start_timestamp < eos.eidos_launch_timestamp < eos.end_timestamp

    def test_small_scenario_overlaps_a_spam_wave(self):
        from repro.common.clock import timestamp_from_iso

        scenario = small_scenario()
        xrp = scenario.xrp
        overlaps = any(
            timestamp_from_iso(start) < xrp.end_timestamp
            and timestamp_from_iso(end) > xrp.start_timestamp
            for start, end, _ in xrp.spam_waves
        )
        assert overlaps

    def test_medium_scenario_keeps_the_full_window(self):
        scenario = medium_scenario()
        assert scenario.eos.total_days == pytest.approx(92.0)
        assert scenario.xrp.total_days == pytest.approx(92.0)

    def test_seed_offsets_differ_between_chains(self):
        scenario = paper_scenario(seed=100)
        assert len({scenario.eos.seed, scenario.tezos.seed, scenario.xrp.seed}) == 3


class TestScaleFactors:
    def test_real_daily_volumes_are_figure2_derived(self):
        assert REAL_TRANSACTIONS_PER_DAY["eos"] == pytest.approx(376_819_512 / 95.0)
        assert REAL_TRANSACTIONS_PER_DAY["tezos"] == pytest.approx(3_345_019 / 93.0)
        assert REAL_TRANSACTIONS_PER_DAY["xrp"] == pytest.approx(151_324_595 / 92.0)

    def test_scale_factors_are_small_fractions(self):
        for scenario in (small_scenario(), medium_scenario(), paper_scenario()):
            factors = scenario.scale_factors
            assert set(factors) == {"eos", "tezos", "xrp"}
            for value in factors.values():
                assert 0.0 < value < 0.2

    def test_eos_scale_factor_accounts_for_the_eidos_multiplier(self):
        scenario = medium_scenario()
        eos = scenario.eos
        naive = eos.transactions_per_day / REAL_TRANSACTIONS_PER_DAY["eos"]
        assert scenario.scale_factors["eos"] > naive

    def test_xrp_scale_factor_accounts_for_spam_waves(self):
        scenario = medium_scenario()
        xrp = scenario.xrp
        naive = xrp.transactions_per_day / REAL_TRANSACTIONS_PER_DAY["xrp"]
        assert scenario.scale_factors["xrp"] > naive

    def test_extrapolated_daily_volume_is_consistent(self):
        scenario = medium_scenario()
        factors = scenario.scale_factors
        eos_daily = factors["eos"] * REAL_TRANSACTIONS_PER_DAY["eos"]
        # The implied generated daily volume sits between the pre-launch rate
        # and the post-launch rate.
        eos = scenario.eos
        assert eos.transactions_per_day < eos_daily < eos.transactions_per_day * eos.eidos_traffic_multiplier


class TestScaleFactorAccounting:
    """Exact day accounting behind the EOS and XRP scale factors."""

    def test_eos_factor_weights_post_launch_days_by_the_multiplier(self):
        scenario = medium_scenario()
        eos = scenario.eos
        pre_days = (eos.eidos_launch_timestamp - eos.start_timestamp) / SECONDS_PER_DAY
        post_days = eos.total_days - pre_days
        expected_daily = (
            eos.transactions_per_day
            * (pre_days + post_days * eos.eidos_traffic_multiplier)
            / eos.total_days
        )
        assert scenario.scale_factors["eos"] == pytest.approx(
            expected_daily / REAL_TRANSACTIONS_PER_DAY["eos"]
        )

    def test_eos_launch_outside_window_means_no_multiplier(self):
        from repro.eos.workload import EosWorkloadConfig
        from repro.scenarios.paper import PaperScenario

        base = medium_scenario()
        scenario = PaperScenario(
            name="pre-launch-only",
            eos=EosWorkloadConfig(
                start_date="2019-10-01",
                end_date="2019-10-20",
                transactions_per_day=150,
            ),
            tezos=base.tezos,
            xrp=base.xrp,
        )
        naive = 150 / REAL_TRANSACTIONS_PER_DAY["eos"]
        assert scenario.scale_factors["eos"] == pytest.approx(naive)

    def test_xrp_factor_adds_wave_extra_days(self):
        from repro.common.clock import timestamp_from_iso

        scenario = medium_scenario()
        xrp = scenario.xrp
        extra_days = sum(
            (
                min(timestamp_from_iso(end), xrp.end_timestamp)
                - max(timestamp_from_iso(start), xrp.start_timestamp)
            )
            / SECONDS_PER_DAY
            * (intensity - 1.0)
            for start, end, intensity in xrp.spam_waves
        )
        expected_daily = (
            xrp.transactions_per_day * (xrp.total_days + extra_days) / xrp.total_days
        )
        assert scenario.scale_factors["xrp"] == pytest.approx(
            expected_daily / REAL_TRANSACTIONS_PER_DAY["xrp"]
        )

    def test_xrp_wave_days_clip_to_the_window(self):
        from repro.xrp.workload import XrpWorkloadConfig
        from repro.scenarios.paper import PaperScenario

        base = medium_scenario()
        # A wave extending past the window only counts its in-window days.
        clipped = PaperScenario(
            name="clipped-wave",
            eos=base.eos,
            tezos=base.tezos,
            xrp=XrpWorkloadConfig(
                start_date="2019-10-01",
                end_date="2019-11-01",
                transactions_per_day=600,
                spam_waves=(("2019-10-25", "2019-12-01", 3.0),),
            ),
        )
        in_window_days = 7.0  # 2019-10-25 → 2019-11-01
        expected_daily = 600 * (31.0 + in_window_days * 2.0) / 31.0
        assert clipped.scale_factors["xrp"] == pytest.approx(
            expected_daily / REAL_TRANSACTIONS_PER_DAY["xrp"]
        )

    def test_overlapping_waves_stack_in_the_accounting(self):
        from repro.xrp.workload import XrpWorkloadConfig
        from repro.scenarios.paper import PaperScenario

        base = medium_scenario()
        overlapping = PaperScenario(
            name="overlap",
            eos=base.eos,
            tezos=base.tezos,
            xrp=XrpWorkloadConfig(
                start_date="2019-10-01",
                end_date="2019-11-01",
                transactions_per_day=600,
                spam_waves=(
                    ("2019-10-10", "2019-10-20", 2.0),
                    ("2019-10-15", "2019-10-25", 3.0),
                ),
            ),
        )
        extra_days = 10.0 * (2.0 - 1.0) + 10.0 * (3.0 - 1.0)
        expected_daily = 600 * (31.0 + extra_days) / 31.0
        assert overlapping.scale_factors["xrp"] == pytest.approx(
            expected_daily / REAL_TRANSACTIONS_PER_DAY["xrp"]
        )
