"""Tests for the Tezos account model."""

import pytest

from repro.common.errors import ChainError
from repro.common.rng import DeterministicRng
from repro.tezos.accounts import (
    TezosAccount,
    TezosAccountKind,
    TezosAccountRegistry,
    generate_address,
    is_implicit_address,
    is_originated_address,
)


@pytest.fixture
def registry():
    return TezosAccountRegistry(rng=DeterministicRng(1))


class TestAddresses:
    def test_generated_addresses_have_correct_prefix(self):
        rng = DeterministicRng(1)
        implicit = generate_address(rng, TezosAccountKind.IMPLICIT)
        originated = generate_address(rng, TezosAccountKind.ORIGINATED)
        assert is_implicit_address(implicit)
        assert is_originated_address(originated)

    def test_kind_and_address_must_agree(self):
        with pytest.raises(ChainError):
            TezosAccount(address="KT1abc", kind=TezosAccountKind.IMPLICIT)
        with pytest.raises(ChainError):
            TezosAccount(address="tz1abc", kind=TezosAccountKind.ORIGINATED)


class TestAccounts:
    def test_only_implicit_accounts_can_bake(self, registry):
        implicit = registry.create_implicit(balance=5.0)
        originated = registry.originate(implicit.address)
        assert implicit.can_bake
        assert not originated.can_bake

    def test_balance_operations(self, registry):
        account = registry.create_implicit(balance=10.0)
        account.credit(5.0)
        account.debit(12.0)
        assert account.balance_xtz == pytest.approx(3.0)
        with pytest.raises(ChainError):
            account.debit(100.0)
        with pytest.raises(ChainError):
            account.credit(-1.0)


class TestRegistry:
    def test_create_implicit_with_fixed_address(self, registry):
        account = registry.create_implicit(balance=1.0, address="tz1fixedaddress")
        assert registry.get("tz1fixedaddress") is account
        with pytest.raises(ChainError):
            registry.create_implicit(address="tz1fixedaddress")

    def test_originate_requires_implicit_manager(self, registry):
        manager = registry.create_implicit(balance=100.0)
        contract = registry.originate(manager.address, balance=20.0)
        assert contract.manager == manager.address
        assert contract.kind is TezosAccountKind.ORIGINATED
        with pytest.raises(ChainError):
            registry.originate(contract.address)

    def test_delegation_targets_must_be_implicit(self, registry):
        baker = registry.create_implicit(balance=20_000.0)
        delegator = registry.create_implicit(balance=100.0)
        contract = registry.originate(delegator.address)
        registry.delegate(delegator.address, baker.address)
        assert registry.get(delegator.address).delegate == baker.address
        with pytest.raises(ChainError):
            registry.delegate(delegator.address, contract.address)

    def test_staking_balance_includes_delegations(self, registry):
        baker = registry.create_implicit(balance=10_000.0)
        delegator = registry.create_implicit(balance=5_000.0)
        registry.delegate(delegator.address, baker.address)
        assert registry.staking_balance(baker.address) == pytest.approx(15_000.0)

    def test_partitions_and_totals(self, registry):
        implicit = registry.create_implicit(balance=7.0)
        registry.originate(implicit.address, balance=3.0)
        assert len(registry.implicit_accounts()) == 1
        assert len(registry.originated_accounts()) == 1
        assert registry.total_supply() == pytest.approx(10.0)

    def test_unknown_account(self, registry):
        with pytest.raises(ChainError):
            registry.get("tz1missing")
        assert registry.maybe_get("tz1missing") is None
