"""Tests for LPoS baking rights and the 32-endorsement rule."""

import pytest

from repro.common.errors import ChainError
from repro.common.rng import DeterministicRng
from repro.tezos.accounts import TezosAccountRegistry
from repro.tezos.baking import BakerSet, ENDORSEMENTS_PER_BLOCK, ROLL_SIZE_XTZ


@pytest.fixture
def registry():
    return TezosAccountRegistry(rng=DeterministicRng(2))


def make_baker_set(registry, balances):
    addresses = []
    for balance in balances:
        account = registry.create_implicit(balance=balance)
        addresses.append(account.address)
    return BakerSet(registry, rng=DeterministicRng(3)), addresses


class TestEligibility:
    def test_roll_threshold(self, registry):
        baker_set, addresses = make_baker_set(registry, [ROLL_SIZE_XTZ, ROLL_SIZE_XTZ - 1.0])
        eligible = baker_set.eligible_bakers()
        assert addresses[0] in eligible
        assert addresses[1] not in eligible

    def test_delegation_makes_account_eligible(self, registry):
        baker_set, addresses = make_baker_set(registry, [6_000.0, 5_000.0])
        assert baker_set.eligible_bakers() == []
        registry.delegate(addresses[1], addresses[0])
        assert addresses[0] in baker_set.eligible_bakers()

    def test_rolls_counted_in_units_of_10000(self, registry):
        baker_set, addresses = make_baker_set(registry, [35_000.0])
        assert baker_set.rolls(addresses[0]) == 3

    def test_only_implicit_accounts_are_considered(self, registry):
        baker_set, addresses = make_baker_set(registry, [ROLL_SIZE_XTZ])
        registry.originate(addresses[0], balance=50_000.0)
        assert baker_set.eligible_bakers() == [addresses[0]]


class TestRights:
    def test_baking_right_selects_an_eligible_baker(self, registry):
        baker_set, addresses = make_baker_set(registry, [ROLL_SIZE_XTZ * 3, ROLL_SIZE_XTZ])
        right = baker_set.baking_right(level=10)
        assert right.baker in addresses
        assert right.level == 10

    def test_baking_right_requires_an_eligible_baker(self, registry):
        baker_set, _ = make_baker_set(registry, [1.0])
        with pytest.raises(ChainError):
            baker_set.baking_right(level=1)

    def test_endorsement_rights_fill_32_slots(self, registry):
        baker_set, addresses = make_baker_set(registry, [ROLL_SIZE_XTZ * 5, ROLL_SIZE_XTZ * 5])
        endorsers = baker_set.endorsement_rights(level=1)
        assert len(endorsers) == ENDORSEMENTS_PER_BLOCK
        assert set(endorsers) <= set(addresses)

    def test_larger_stake_receives_more_slots(self, registry):
        baker_set, addresses = make_baker_set(
            registry, [ROLL_SIZE_XTZ * 50, ROLL_SIZE_XTZ]
        )
        endorsers = baker_set.endorsement_rights(level=1, slots=500)
        large = endorsers.count(addresses[0])
        small = endorsers.count(addresses[1])
        assert large > small * 5

    def test_validate_endorsements(self, registry):
        baker_set, _ = make_baker_set(registry, [ROLL_SIZE_XTZ])
        assert baker_set.validate_endorsements(["tz1x"] * 32)
        assert not baker_set.validate_endorsements(["tz1x"] * 31)
