"""Tests for the Tezos chain simulator."""

import pytest

from repro.common.errors import ChainError
from repro.common.records import ChainId
from repro.common.rng import DeterministicRng
from repro.tezos.baking import ENDORSEMENTS_PER_BLOCK, ROLL_SIZE_XTZ
from repro.tezos.chain import TezosChain, TezosChainConfig
from repro.tezos.operations import (
    make_delegation,
    make_origination,
    make_reveal,
    make_transaction,
)


@pytest.fixture
def chain():
    instance = TezosChain(rng=DeterministicRng(5))
    for _ in range(3):
        instance.accounts.create_implicit(balance=5 * ROLL_SIZE_XTZ)
    instance.accounts.create_implicit(balance=500.0, address="tz1alicealicealice")
    instance.accounts.create_implicit(balance=100.0, address="tz1bobbobbobbobbob")
    return instance


class TestBaking:
    def test_block_carries_32_endorsements(self, chain):
        block = chain.bake_block([])
        endorsements = [record for record in block.transactions if record.type == "Endorsement"]
        assert len(endorsements) == ENDORSEMENTS_PER_BLOCK
        assert block.metadata["endorsement_count"] == ENDORSEMENTS_PER_BLOCK
        assert block.chain is ChainId.TEZOS

    def test_insufficient_endorsements_rejected(self, chain):
        with pytest.raises(ChainError):
            chain.bake_block([], endorsers=["tz1somebaker"] * 10)

    def test_producer_is_an_eligible_baker(self, chain):
        eligible = set(chain.bakers.eligible_bakers())
        block = chain.bake_block([])
        assert block.producer in eligible

    def test_level_and_clock_advance(self, chain):
        start_level = chain.config.start_level
        first = chain.bake_block([])
        second = chain.bake_block([])
        assert first.height == start_level
        assert second.height == start_level + 1
        assert second.timestamp == pytest.approx(first.timestamp + chain.config.block_interval)
        assert second.previous_id == first.block_id


class TestOperations:
    def test_transaction_moves_balance_and_charges_fee(self, chain):
        operation = make_transaction("tz1alicealicealice", "tz1bobbobbobbobbob", 50.0, fee=0.5)
        block = chain.bake_block([operation])
        record = [item for item in block.transactions if item.type == "Transaction"][0]
        assert record.success
        assert chain.accounts.get("tz1alicealicealice").balance_xtz == pytest.approx(449.5)
        assert chain.accounts.get("tz1bobbobbobbobbob").balance_xtz == pytest.approx(150.0)

    def test_overspending_transaction_recorded_as_failed(self, chain):
        operation = make_transaction("tz1bobbobbobbobbob", "tz1alicealicealice", 1_000.0)
        block = chain.bake_block([operation])
        record = [item for item in block.transactions if item.type == "Transaction"][0]
        assert not record.success
        assert "error" in record.metadata

    def test_origination_creates_contract_account(self, chain):
        before = len(chain.accounts.originated_accounts())
        block = chain.bake_block([make_origination("tz1alicealicealice", balance=0.0)])
        record = [item for item in block.transactions if item.type == "Origination"][0]
        assert record.success
        assert len(chain.accounts.originated_accounts()) == before + 1
        assert record.metadata["originated"].startswith("KT1")

    def test_delegation_and_reveal(self, chain):
        baker = chain.bakers.eligible_bakers()[0]
        block = chain.bake_block(
            [
                make_delegation("tz1alicealicealice", baker),
                make_reveal("tz1bobbobbobbobbob"),
            ]
        )
        assert chain.accounts.get("tz1alicealicealice").delegate == baker
        assert chain.accounts.get("tz1bobbobbobbobbob").revealed
        assert all(record.success for record in block.transactions)

    def test_operation_category_recorded_in_metadata(self, chain):
        block = chain.bake_block([make_transaction("tz1alicealicealice", "tz1bobbobbobbobbob", 1.0)])
        endorsement = [record for record in block.transactions if record.type == "Endorsement"][0]
        transaction = [record for record in block.transactions if record.type == "Transaction"][0]
        assert endorsement.metadata["category"] == "consensus"
        assert transaction.metadata["category"] == "manager"

    def test_block_lookup(self, chain):
        block = chain.bake_block([])
        assert chain.block_at(block.height) == block
        with pytest.raises(ChainError):
            chain.block_at(block.height + 5)

    def test_head_of_empty_chain(self):
        chain = TezosChain()
        assert chain.head() is None
        assert chain.head_level == chain.config.start_level - 1
