"""Tests for the Tezos governance state machine and the Babylon timeline."""

import pytest

from repro.common.clock import timestamp_from_iso
from repro.common.errors import ChainError
from repro.tezos.governance import (
    AmendmentProcess,
    BabylonTimeline,
    BallotChoice,
    VoteEvent,
    VotingPeriodKind,
    cumulative_vote_series,
)


@pytest.fixture
def process():
    return AmendmentProcess(total_rolls=100, quorum=0.5, supermajority=0.8)


class TestProposalPeriod:
    def test_highest_voted_proposal_wins(self, process):
        process.submit_proposal("baker1", "Babylon", rolls=10)
        process.submit_proposal("baker2", "Babylon 2.0", rolls=15)
        process.submit_proposal("baker3", "Babylon 2.0", rolls=5)
        winner = process.close_proposal_period()
        assert winner == "Babylon 2.0"
        assert process.period is VotingPeriodKind.EXPLORATION

    def test_no_proposals_fails_the_cycle(self, process):
        assert process.close_proposal_period() is None
        assert process.failed

    def test_proposals_rejected_outside_period(self, process):
        process.submit_proposal("baker1", "Babylon", rolls=10)
        process.close_proposal_period()
        with pytest.raises(ChainError):
            process.submit_proposal("baker1", "Other", rolls=1)


class TestBallotPeriods:
    def _reach_exploration(self, process):
        process.submit_proposal("baker1", "Babylon 2.0", rolls=10)
        process.close_proposal_period()

    def test_successful_exploration_advances_to_testing(self, process):
        self._reach_exploration(process)
        for index in range(60):
            process.cast_ballot(f"baker{index}", BallotChoice.YAY)
        assert process.close_exploration_period()
        assert process.period is VotingPeriodKind.TESTING

    def test_quorum_failure(self, process):
        self._reach_exploration(process)
        for index in range(10):
            process.cast_ballot(f"baker{index}", BallotChoice.YAY)
        assert not process.close_exploration_period()
        assert process.failed

    def test_supermajority_failure(self, process):
        self._reach_exploration(process)
        for index in range(30):
            process.cast_ballot(f"yay{index}", BallotChoice.YAY)
        for index in range(30):
            process.cast_ballot(f"nay{index}", BallotChoice.NAY)
        assert not process.close_exploration_period()

    def test_pass_counts_for_quorum_but_not_approval(self, process):
        self._reach_exploration(process)
        for index in range(40):
            process.cast_ballot(f"yay{index}", BallotChoice.YAY)
        for index in range(20):
            process.cast_ballot(f"pass{index}", BallotChoice.PASS)
        assert process.exploration_tally.participation(100) == pytest.approx(0.6)
        assert process.exploration_tally.approval_rate == 1.0
        assert process.close_exploration_period()

    def test_double_voting_rejected(self, process):
        self._reach_exploration(process)
        process.cast_ballot("baker1", BallotChoice.YAY)
        with pytest.raises(ChainError):
            process.cast_ballot("baker1", BallotChoice.NAY)

    def test_full_cycle_promotes_amendment(self, process):
        self._reach_exploration(process)
        for index in range(60):
            process.cast_ballot(f"baker{index}", BallotChoice.YAY)
        process.close_exploration_period()
        process.close_testing_period()
        for index in range(55):
            process.cast_ballot(f"baker{index}", BallotChoice.YAY)
        for index in range(5):
            process.cast_ballot(f"late{index}", BallotChoice.NAY)
        assert process.close_promotion_period()
        assert process.promoted

    def test_ballots_rejected_during_testing(self, process):
        self._reach_exploration(process)
        for index in range(60):
            process.cast_ballot(f"baker{index}", BallotChoice.YAY)
        process.close_exploration_period()
        with pytest.raises(ChainError):
            process.cast_ballot("baker1", BallotChoice.YAY)

    def test_period_closures_require_matching_period(self, process):
        with pytest.raises(ChainError):
            process.close_exploration_period()
        with pytest.raises(ChainError):
            process.close_testing_period()
        with pytest.raises(ChainError):
            process.close_promotion_period()


class TestBabylonTimeline:
    def test_periods_are_ordered_and_non_empty(self):
        timeline = BabylonTimeline()
        previous_end = 0.0
        for period in (
            VotingPeriodKind.PROPOSAL,
            VotingPeriodKind.EXPLORATION,
            VotingPeriodKind.TESTING,
            VotingPeriodKind.PROMOTION,
        ):
            start, end = timeline.period_bounds(period)
            assert end > start
            assert start >= previous_end
            previous_end = end

    def test_promotion_ends_on_activation_date(self):
        timeline = BabylonTimeline()
        _, end = timeline.period_bounds(VotingPeriodKind.PROMOTION)
        assert end == timestamp_from_iso("2019-10-18")

    def test_period_days(self):
        timeline = BabylonTimeline()
        assert timeline.period_days(VotingPeriodKind.PROPOSAL) >= 20


class TestVoteSeries:
    def test_cumulative_series_is_monotonic(self):
        events = [
            VoteEvent(timestamp=3.0, period=VotingPeriodKind.PROPOSAL, baker="b1", rolls=2, proposal="Babylon"),
            VoteEvent(timestamp=1.0, period=VotingPeriodKind.PROPOSAL, baker="b2", rolls=1, proposal="Babylon"),
            VoteEvent(timestamp=2.0, period=VotingPeriodKind.PROPOSAL, baker="b3", rolls=4, proposal="Other"),
        ]
        series = cumulative_vote_series(events, VotingPeriodKind.PROPOSAL, "Babylon")
        assert series == [(1.0, 1), (3.0, 3)]

    def test_ballot_series_filters_by_choice(self):
        events = [
            VoteEvent(timestamp=1.0, period=VotingPeriodKind.EXPLORATION, baker="b1", rolls=1, ballot="yay"),
            VoteEvent(timestamp=2.0, period=VotingPeriodKind.EXPLORATION, baker="b2", rolls=1, ballot="nay"),
        ]
        assert cumulative_vote_series(events, VotingPeriodKind.EXPLORATION, "yay") == [(1.0, 1)]
        assert cumulative_vote_series(events, VotingPeriodKind.EXPLORATION, "nay") == [(2.0, 1)]
