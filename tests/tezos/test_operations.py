"""Tests for Tezos operation kinds and builders."""

import pytest

from repro.tezos.operations import (
    OperationCategory,
    OperationKind,
    category_for,
    make_activation,
    make_ballot,
    make_delegation,
    make_endorsement,
    make_origination,
    make_proposal,
    make_reveal,
    make_transaction,
)


class TestCategories:
    def test_consensus_operations(self):
        assert category_for(OperationKind.ENDORSEMENT) is OperationCategory.CONSENSUS
        assert category_for(OperationKind.REVEAL_NONCE) is OperationCategory.CONSENSUS
        assert category_for(OperationKind.DOUBLE_BAKING_EVIDENCE) is OperationCategory.CONSENSUS

    def test_governance_operations(self):
        assert category_for(OperationKind.BALLOT) is OperationCategory.GOVERNANCE
        assert category_for(OperationKind.PROPOSALS) is OperationCategory.GOVERNANCE

    def test_manager_operations(self):
        for kind in (
            OperationKind.TRANSACTION,
            OperationKind.ORIGINATION,
            OperationKind.REVEAL,
            OperationKind.ACTIVATE,
            OperationKind.DELEGATION,
        ):
            assert category_for(kind) is OperationCategory.MANAGER

    def test_every_kind_has_a_category(self):
        for kind in OperationKind:
            assert category_for(kind) in OperationCategory


class TestBuilders:
    def test_endorsement_records_level(self):
        operation = make_endorsement("tz1baker", endorsed_level=42, slots=3)
        assert operation.kind is OperationKind.ENDORSEMENT
        assert operation.data["level"] == 42
        assert operation.data["slots"] == 3
        assert operation.category is OperationCategory.CONSENSUS

    def test_transaction_carries_amount_and_fee(self):
        operation = make_transaction("tz1alice", "tz1bob", 12.5, fee=0.01)
        assert operation.amount_xtz == 12.5
        assert operation.fee_xtz == 0.01
        assert operation.destination == "tz1bob"

    def test_delegation(self):
        operation = make_delegation("tz1alice", "tz1baker")
        assert operation.kind is OperationKind.DELEGATION
        assert operation.destination == "tz1baker"

    def test_origination(self):
        operation = make_origination("tz1alice", balance=5.0)
        assert operation.kind is OperationKind.ORIGINATION
        assert operation.amount_xtz == 5.0

    def test_reveal_and_activation(self):
        assert make_reveal("tz1alice").kind is OperationKind.REVEAL
        activation = make_activation("tz1alice", 100.0)
        assert activation.amount_xtz == 100.0

    def test_ballot_validation(self):
        operation = make_ballot("tz1baker", "PsBabyM1", "yay")
        assert operation.data == {"proposal": "PsBabyM1", "ballot": "yay"}
        with pytest.raises(ValueError):
            make_ballot("tz1baker", "PsBabyM1", "maybe")

    def test_proposal(self):
        operation = make_proposal("tz1baker", ("Babylon", "Babylon 2.0"))
        assert operation.data["proposals"] == ["Babylon", "Babylon 2.0"]

    def test_to_dict(self):
        operation = make_transaction("tz1a", "tz1b", 1.0)
        payload = operation.to_dict()
        assert payload["kind"] == "Transaction"
        assert payload["amount_xtz"] == 1.0
