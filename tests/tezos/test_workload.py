"""Tests for the calibrated Tezos workload generator."""

import pytest

from repro.common.records import ChainId, iter_transactions
from repro.tezos.governance import VotingPeriodKind
from repro.tezos.workload import TezosWorkloadConfig, TezosWorkloadGenerator


class TestConfigValidation:
    def test_defaults_cover_the_paper_window(self):
        config = TezosWorkloadConfig()
        assert config.start_date == "2019-09-29"
        assert config.total_days > 90

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"blocks_per_day": 0},
            {"manager_operations_per_block": -1.0},
            {"baker_count": 0},
            {"start_date": "2019-12-01", "end_date": "2019-11-01"},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            TezosWorkloadConfig(**kwargs)


class TestGeneratedTraffic:
    def test_blocks_are_ordered_and_within_window(self, tezos_blocks, scenario):
        assert tezos_blocks
        timestamps = [block.timestamp for block in tezos_blocks]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] >= scenario.tezos.start_timestamp
        assert timestamps[-1] < scenario.tezos.end_timestamp

    def test_all_records_are_tezos(self, tezos_records):
        assert all(record.chain is ChainId.TEZOS for record in tezos_records)

    def test_endorsements_dominate_throughput(self, tezos_records):
        endorsements = sum(1 for record in tezos_records if record.type == "Endorsement")
        share = endorsements / len(tezos_records)
        # The paper reports 81.7%; the calibrated workload should land nearby.
        assert 0.70 <= share <= 0.92

    def test_transactions_are_the_main_manager_operation(self, tezos_records):
        manager = [
            record
            for record in tezos_records
            if record.metadata.get("category") == "manager"
        ]
        transactions = sum(1 for record in manager if record.type == "Transaction")
        assert transactions / len(manager) > 0.7

    def test_every_block_carries_at_least_32_endorsements(self, tezos_blocks):
        for block in tezos_blocks:
            endorsements = sum(
                1 for record in block.transactions if record.type == "Endorsement"
            )
            assert endorsements >= 32

    def test_sender_patterns_include_distributor_fanout(self, tezos_generator, tezos_records):
        # The airdrop-style distributors send roughly one transaction per
        # distinct receiver (the tz1Mzpyj pattern of Figure 6).
        distributor = tezos_generator.distributors[0]
        sent = [record for record in tezos_records if record.sender == distributor]
        if len(sent) >= 10:
            receivers = {record.receiver for record in sent}
            assert len(receivers) / len(sent) > 0.5

    def test_determinism(self):
        config = TezosWorkloadConfig(
            start_date="2019-10-01",
            end_date="2019-10-04",
            blocks_per_day=6,
            baker_count=5,
            user_account_count=40,
            seed=55,
        )
        first = [record.type for record in iter_transactions(TezosWorkloadGenerator(config).generate())]
        second = [record.type for record in iter_transactions(TezosWorkloadGenerator(config).generate())]
        assert first == second


class TestBabylonVotes:
    def test_vote_events_cover_three_periods(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        periods = {event.period for event in events}
        assert VotingPeriodKind.PROPOSAL in periods
        assert VotingPeriodKind.EXPLORATION in periods
        assert VotingPeriodKind.PROMOTION in periods

    def test_exploration_has_no_nay_votes(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        exploration = [event for event in events if event.period is VotingPeriodKind.EXPLORATION]
        assert all(event.ballot != "nay" for event in exploration)
        assert sum(1 for event in exploration if event.ballot == "pass") == 1

    def test_promotion_has_some_nay_votes(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        promotion = [event for event in events if event.period is VotingPeriodKind.PROMOTION]
        nay = sum(1 for event in promotion if event.ballot == "nay")
        assert 0 < nay < len(promotion) / 2

    def test_babylon_two_wins_the_proposal_period(self, tezos_generator):
        events = tezos_generator.generate_babylon_votes()
        proposal_votes = {}
        for event in events:
            if event.period is VotingPeriodKind.PROPOSAL:
                proposal_votes[event.proposal] = proposal_votes.get(event.proposal, 0) + event.rolls
        assert set(proposal_votes) == {"Babylon", "Babylon 2.0"}
