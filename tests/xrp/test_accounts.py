"""Tests for XRP accounts, activation and clustering metadata."""

import pytest

from repro.common.errors import ChainError
from repro.common.rng import DeterministicRng
from repro.xrp.accounts import (
    SPECIAL_ADDRESSES,
    XrpAccount,
    XrpAccountRegistry,
    generate_address,
    is_special_address,
)
from repro.xrp.amounts import ACCOUNT_RESERVE_XRP


@pytest.fixture
def registry():
    return XrpAccountRegistry(rng=DeterministicRng(9))


class TestAddresses:
    def test_generated_addresses_start_with_r(self):
        rng = DeterministicRng(9)
        assert generate_address(rng).startswith("r")

    def test_special_addresses_recognised(self):
        for address in SPECIAL_ADDRESSES:
            assert is_special_address(address)
        assert not is_special_address("rSomeRegularAddress")


class TestBalances:
    def test_reserve_limits_spendable_balance(self):
        account = XrpAccount(address="rTest", xrp_balance=25.0)
        assert account.spendable_xrp == pytest.approx(5.0)
        with pytest.raises(ChainError):
            account.debit_xrp(10.0)
        account.debit_xrp(5.0)
        assert account.xrp_balance == 20.0

    def test_fee_may_dip_into_reserve(self):
        account = XrpAccount(address="rTest", xrp_balance=20.0)
        account.debit_xrp(0.00001, respect_reserve=False)
        assert account.xrp_balance < 20.0

    def test_sequence_numbers_increment(self):
        account = XrpAccount(address="rTest")
        assert account.next_sequence() == 1
        assert account.next_sequence() == 2
        assert account.sequence == 3


class TestActivation:
    def test_activation_funds_child_and_links_parent(self, registry):
        parent = registry.create_genesis(balance=1_000.0, username="Exchange")
        child = registry.activate(parent.address, initial_xrp=50.0, timestamp=10.0)
        assert child.parent == parent.address
        assert child.xrp_balance == 50.0
        assert registry.get(parent.address).xrp_balance == pytest.approx(950.0)
        assert child.activated_at == 10.0

    def test_activation_requires_reserve(self, registry):
        parent = registry.create_genesis(balance=1_000.0)
        with pytest.raises(ChainError):
            registry.activate(parent.address, initial_xrp=ACCOUNT_RESERVE_XRP - 1.0)

    def test_descendants_are_transitive(self, registry):
        grandparent = registry.create_genesis(balance=10_000.0, username="Huobi Global")
        parent = registry.activate(grandparent.address, initial_xrp=1_000.0)
        child = registry.activate(parent.address, initial_xrp=100.0)
        descendants = registry.descendants(grandparent.address)
        assert parent.address in descendants
        assert child.address in descendants

    def test_duplicate_address_rejected(self, registry):
        registry.create_genesis(address="rFixed", balance=100.0)
        with pytest.raises(ChainError):
            registry.create_genesis(address="rFixed")


class TestClustering:
    def test_cluster_by_own_username(self, registry):
        account = registry.create_genesis(balance=10.0, username="Binance")
        assert registry.cluster_identifier(account.address) == "Binance"

    def test_cluster_inherits_parent_username(self, registry):
        parent = registry.create_genesis(balance=1_000.0, username="Huobi Global")
        child = registry.activate(parent.address, initial_xrp=50.0)
        grandchild = registry.activate(child.address, initial_xrp=25.0)
        assert registry.cluster_identifier(child.address) == "Huobi Global -- descendant"
        assert registry.cluster_identifier(grandchild.address) == "Huobi Global -- descendant"

    def test_unnamed_lineage_falls_back_to_address(self, registry):
        orphan = registry.create_genesis(balance=100.0)
        child = registry.activate(orphan.address, initial_xrp=30.0)
        assert registry.cluster_identifier(child.address) == child.address

    def test_unknown_address_clusters_to_itself(self, registry):
        assert registry.cluster_identifier("rUnknown") == "rUnknown"

    def test_total_xrp(self, registry):
        registry.create_genesis(balance=10.0)
        registry.create_genesis(balance=30.0)
        assert registry.total_xrp() == pytest.approx(40.0)
