"""Tests for XRP drops and IOU amount arithmetic."""

import pytest

from repro.common.errors import ChainError
from repro.xrp.amounts import (
    ACCOUNT_RESERVE_XRP,
    DROPS_PER_XRP,
    IouAmount,
    STANDARD_FEE_DROPS,
    XRP_CURRENCY,
    drops_to_xrp,
    xrp_to_drops,
)


class TestDrops:
    def test_conversion_round_trip(self):
        assert xrp_to_drops(1.5) == 1_500_000
        assert drops_to_xrp(1_500_000) == 1.5

    def test_constants(self):
        assert DROPS_PER_XRP == 1_000_000
        assert STANDARD_FEE_DROPS == 10
        assert ACCOUNT_RESERVE_XRP == 20.0

    def test_negative_amounts_rejected(self):
        with pytest.raises(ChainError):
            xrp_to_drops(-1.0)
        with pytest.raises(ChainError):
            drops_to_xrp(-1)


class TestIouAmount:
    def test_native_amount(self):
        amount = IouAmount.native(5.0)
        assert amount.is_native
        assert amount.currency == XRP_CURRENCY
        assert amount.asset_key == ("XRP", "")

    def test_iou_requires_issuer(self):
        with pytest.raises(ChainError):
            IouAmount(currency="USD", value=1.0)

    def test_native_rejects_issuer(self):
        with pytest.raises(ChainError):
            IouAmount(currency="XRP", value=1.0, issuer="rIssuer")

    def test_empty_currency_rejected(self):
        with pytest.raises(ChainError):
            IouAmount(currency="", value=1.0)

    def test_same_ticker_different_issuer_is_a_different_asset(self):
        # The core observation of §4.3: "BTC" is not bitcoin unless you trust
        # the issuer.
        bitstamp_btc = IouAmount.iou("BTC", 1.0, "rBitstamp")
        random_btc = IouAmount.iou("BTC", 1.0, "rRandom")
        assert bitstamp_btc.asset_key != random_btc.asset_key
        with pytest.raises(ChainError):
            _ = bitstamp_btc + random_btc

    def test_arithmetic_on_same_asset(self):
        first = IouAmount.iou("USD", 3.0, "rIssuer")
        second = IouAmount.iou("USD", 2.0, "rIssuer")
        assert (first + second).value == 5.0
        assert (first - second).value == 1.0

    def test_with_value_preserves_asset(self):
        amount = IouAmount.iou("EUR", 1.0, "rIssuer")
        updated = amount.with_value(9.0)
        assert updated.value == 9.0
        assert updated.asset_key == amount.asset_key

    def test_to_dict(self):
        amount = IouAmount.iou("CNY", 7.0, "rIssuer")
        assert amount.to_dict() == {"currency": "CNY", "value": 7.0, "issuer": "rIssuer"}
