"""Tests for the XRP ledger close loop and the UNL overlap model."""

import pytest

from repro.common.errors import ChainError
from repro.common.records import ChainId
from repro.common.rng import DeterministicRng
from repro.xrp.amounts import IouAmount
from repro.xrp.ledger import (
    Validator,
    XrpLedger,
    XrpLedgerConfig,
    check_unl_convergence,
)
from repro.xrp.transactions import TransactionType, XrpTransaction


@pytest.fixture
def ledger():
    instance = XrpLedger(rng=DeterministicRng(6))
    instance.accounts.create_genesis(address="rAlice", balance=1_000.0)
    instance.accounts.create_genesis(address="rBob", balance=500.0)
    return instance


def payment(sender="rAlice", receiver="rBob", amount=10.0, tag=None):
    return XrpTransaction(
        type=TransactionType.PAYMENT,
        account=sender,
        destination=receiver,
        amount=IouAmount.native(amount),
        destination_tag=tag,
    )


class TestUnlConvergence:
    def test_identical_unls_converge(self):
        unl = frozenset({"v1", "v2", "v3"})
        validators = [Validator(name=name, unl=unl) for name in unl]
        assert check_unl_convergence(validators)

    def test_disjoint_unls_do_not_converge(self):
        validators = [
            Validator(name="v1", unl=frozenset({"v1", "v2"})),
            Validator(name="v2", unl=frozenset({"v3", "v4"})),
        ]
        assert not check_unl_convergence(validators)

    def test_overlap_metric(self):
        first = Validator(name="v1", unl=frozenset({"a", "b", "c", "d", "e"}))
        second = Validator(name="v2", unl=frozenset({"a", "b", "c", "d", "x"}))
        assert first.overlap_with(second) == pytest.approx(0.8)


class TestLedgerClose:
    def test_close_advances_index_and_clock(self, ledger):
        start = ledger.clock.now
        block = ledger.close_ledger([payment()])
        assert block.height == ledger.config.start_index
        assert block.chain is ChainId.XRP
        assert ledger.clock.now == pytest.approx(start + ledger.config.close_interval)

    def test_successful_and_failed_transactions_both_recorded(self, ledger):
        block = ledger.close_ledger(
            [payment(amount=10.0), payment(sender="rBob", amount=1_000_000.0)]
        )
        assert block.action_count == 2
        outcomes = {record.success for record in block.transactions}
        assert outcomes == {True, False}
        failed = [record for record in block.transactions if not record.success][0]
        assert failed.error_code == "tecUNFUNDED_PAYMENT"

    def test_transactions_from_unknown_accounts_never_reach_the_ledger(self, ledger):
        block = ledger.close_ledger([payment(sender="rGhost")])
        assert block.action_count == 0

    def test_destination_tag_preserved_in_metadata(self, ledger):
        block = ledger.close_ledger([payment(tag=104_398)])
        assert block.transactions[0].metadata["destination_tag"] == 104_398

    def test_offer_metadata_includes_assets(self, ledger):
        ledger.trustlines.credit("rAlice", IouAmount.iou("USD", 100.0, "rGateway"))
        offer = XrpTransaction(
            type=TransactionType.OFFER_CREATE,
            account="rAlice",
            taker_gets=IouAmount.iou("USD", 10.0, "rGateway"),
            taker_pays=IouAmount.native(50.0),
        )
        block = ledger.close_ledger([offer])
        record = block.transactions[0]
        assert record.metadata["taker_gets"]["currency"] == "USD"
        assert record.metadata["offer_id"] > 0

    def test_block_lookup_and_head(self, ledger):
        assert ledger.head() is None
        block = ledger.close_ledger([payment()])
        assert ledger.head() == block
        assert ledger.block_at(block.height) == block
        with pytest.raises(ChainError):
            ledger.block_at(block.height + 10)

    def test_non_converging_validators_block_consensus(self):
        ledger = XrpLedger(XrpLedgerConfig(validator_count=2))
        ledger.accounts.create_genesis(address="rAlice", balance=100.0)
        ledger.validators = [
            Validator(name="v1", unl=frozenset({"v1"})),
            Validator(name="v2", unl=frozenset({"v2"})),
        ]
        with pytest.raises(ChainError):
            ledger.close_ledger([payment(amount=1.0)])
