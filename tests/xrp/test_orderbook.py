"""Tests for the XRP DEX order book and offer crossing."""

import pytest

from repro.common.errors import ChainError
from repro.xrp.amounts import IouAmount
from repro.xrp.orderbook import OrderBook

ISSUER = "rGateway"


def btc(value):
    return IouAmount.iou("BTC", value, ISSUER)


def xrp(value):
    return IouAmount.native(value)


class TestOfferPlacement:
    def test_offer_rests_when_book_is_empty(self):
        book = OrderBook()
        offer, executions = book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        assert executions == []
        assert offer.is_open
        assert not offer.was_filled
        assert offer.price == pytest.approx(30_000.0)
        assert len(book) == 1

    def test_invalid_offers_rejected(self):
        book = OrderBook()
        with pytest.raises(ChainError):
            book.place("rSeller", taker_gets=btc(0.0), taker_pays=xrp(1.0))
        with pytest.raises(ChainError):
            book.place("rSeller", taker_gets=xrp(1.0), taker_pays=xrp(2.0))

    def test_crossing_offers_execute(self):
        book = OrderBook()
        book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        buy, executions = book.place("rBuyer", taker_gets=xrp(30_000.0), taker_pays=btc(1.0))
        assert len(executions) == 1
        execution = executions[0]
        assert execution.seller == "rBuyer"
        assert execution.buyer == "rSeller"
        assert buy.was_filled
        assert not buy.is_open
        assert len(book.executions) == 1

    def test_non_crossing_offers_rest(self):
        book = OrderBook()
        book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        # Buyer only offers 20,000 XRP per BTC: no cross.
        _, executions = book.place("rBuyer", taker_gets=xrp(20_000.0), taker_pays=btc(1.0))
        assert executions == []
        assert len(book) == 2

    def test_partial_fill(self):
        book = OrderBook()
        resting, _ = book.place("rSeller", taker_gets=btc(2.0), taker_pays=xrp(60_000.0))
        incoming, executions = book.place("rBuyer", taker_gets=xrp(30_000.0), taker_pays=btc(1.0))
        assert len(executions) == 1
        assert incoming.was_filled
        assert resting.was_filled
        assert resting.is_open  # half of the resting offer remains
        assert resting.remaining_gets == pytest.approx(1.0)

    def test_best_price_consumed_first(self):
        book = OrderBook()
        cheap, _ = book.place("rCheap", taker_gets=btc(1.0), taker_pays=xrp(25_000.0))
        expensive, _ = book.place("rExpensive", taker_gets=btc(1.0), taker_pays=xrp(35_000.0))
        _, executions = book.place("rBuyer", taker_gets=xrp(30_000.0), taker_pays=btc(1.0))
        assert len(executions) == 1
        assert executions[0].buyer == "rCheap"
        assert cheap.was_filled
        assert not expensive.was_filled


class TestCancellation:
    def test_cancel_marks_offer_closed(self):
        book = OrderBook()
        offer, _ = book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        book.cancel(offer.offer_id, "rSeller")
        assert not offer.is_open
        assert len(book) == 0

    def test_only_owner_may_cancel(self):
        book = OrderBook()
        offer, _ = book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        with pytest.raises(ChainError):
            book.cancel(offer.offer_id, "rStranger")

    def test_unknown_offer(self):
        book = OrderBook()
        with pytest.raises(ChainError):
            book.cancel(42, "rAnyone")


class TestPriceOracle:
    def test_executed_rate_vs_xrp(self):
        book = OrderBook()
        book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        book.place("rBuyer", taker_gets=xrp(30_000.0), taker_pays=btc(1.0))
        rates = book.executed_rates_vs_xrp("BTC", ISSUER)
        assert len(rates) == 1
        assert rates[0][1] == pytest.approx(30_000.0)
        assert book.average_rate_vs_xrp("BTC", ISSUER) == pytest.approx(30_000.0)

    def test_rate_is_zero_without_executions(self):
        book = OrderBook()
        book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        assert book.average_rate_vs_xrp("BTC", ISSUER) == 0.0
        assert book.average_rate_vs_xrp("BTC", "rOtherIssuer") == 0.0

    def test_rate_history_tracks_collapse(self):
        # The Figure 11b pattern: an IOU trades at 30,500 then collapses.
        book = OrderBook()
        book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_500.0), timestamp=1.0)
        book.place("rBuyer", taker_gets=xrp(30_500.0), taker_pays=btc(1.0), timestamp=1.0)
        book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(1.0), timestamp=2.0)
        book.place("rBuyer", taker_gets=xrp(1.0), taker_pays=btc(1.0), timestamp=2.0)
        history = book.executed_rates_vs_xrp("BTC", ISSUER)
        assert [rate for _, rate in history] == pytest.approx([30_500.0, 1.0])

    def test_fill_fraction(self):
        book = OrderBook()
        book.place("rSeller", taker_gets=btc(1.0), taker_pays=xrp(30_000.0))
        book.place("rBuyer", taker_gets=xrp(30_000.0), taker_pays=btc(1.0))
        book.place("rResting", taker_gets=btc(1.0), taker_pays=xrp(90_000.0))
        assert book.fill_fraction() == pytest.approx(2.0 / 3.0)
