"""Tests for the XRP transaction engine and result codes."""

import pytest

from repro.common.errors import ChainError
from repro.common.rng import DeterministicRng
from repro.xrp.accounts import XrpAccountRegistry
from repro.xrp.amounts import IouAmount, drops_to_xrp
from repro.xrp.transactions import (
    ResultCode,
    TransactionType,
    XrpTransaction,
    XrpTransactionEngine,
)

ISSUER = "rGateway"


@pytest.fixture
def engine():
    registry = XrpAccountRegistry(rng=DeterministicRng(4))
    registry.create_genesis(address="rAlice", balance=1_000.0)
    registry.create_genesis(address="rBob", balance=500.0)
    registry.create_genesis(address=ISSUER, balance=100.0)
    instance = XrpTransactionEngine(registry)
    instance.trustlines.set_trust("rAlice", "USD", ISSUER, limit=10_000.0)
    instance.trustlines.set_trust("rBob", "USD", ISSUER, limit=10_000.0)
    return instance


class TestFees:
    def test_fee_charged_even_on_failure(self, engine):
        before = engine.accounts.get("rAlice").xrp_balance
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.PAYMENT,
                account="rAlice",
                destination="rNobody",
                amount=IouAmount.native(1.0),
            )
        )
        assert applied.result is ResultCode.NO_DST
        assert not applied.success
        assert engine.accounts.get("rAlice").xrp_balance == pytest.approx(
            before - drops_to_xrp(10)
        )
        assert engine.fees_burned_xrp > 0.0

    def test_unknown_sender_rejected_outright(self, engine):
        with pytest.raises(ChainError):
            engine.apply(
                XrpTransaction(
                    type=TransactionType.PAYMENT,
                    account="rGhost",
                    destination="rAlice",
                    amount=IouAmount.native(1.0),
                )
            )

    def test_sequence_incremented(self, engine):
        engine.apply(XrpTransaction(type=TransactionType.ACCOUNT_SET, account="rAlice"))
        assert engine.accounts.get("rAlice").sequence == 2


class TestPayments:
    def test_native_payment_moves_xrp(self, engine):
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.PAYMENT,
                account="rAlice",
                destination="rBob",
                amount=IouAmount.native(100.0),
            )
        )
        assert applied.success
        assert engine.accounts.get("rBob").xrp_balance == pytest.approx(600.0)

    def test_native_payment_unfunded(self, engine):
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.PAYMENT,
                account="rBob",
                destination="rAlice",
                amount=IouAmount.native(10_000.0),
            )
        )
        assert applied.result is ResultCode.UNFUNDED_PAYMENT

    def test_iou_payment_requires_trust_path(self, engine):
        # Alice holds no USD yet: PATH_DRY.
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.PAYMENT,
                account="rAlice",
                destination="rBob",
                amount=IouAmount.iou("USD", 10.0, ISSUER),
            )
        )
        assert applied.result is ResultCode.PATH_DRY

    def test_iou_payment_succeeds_over_trust_lines(self, engine):
        engine.trustlines.credit("rAlice", IouAmount.iou("USD", 100.0, ISSUER))
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.PAYMENT,
                account="rAlice",
                destination="rBob",
                amount=IouAmount.iou("USD", 40.0, ISSUER),
            )
        )
        assert applied.success
        assert engine.trustlines.balance("rBob", "USD", ISSUER) == 40.0

    def test_issuer_can_always_issue(self, engine):
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.PAYMENT,
                account=ISSUER,
                destination="rAlice",
                amount=IouAmount.iou("USD", 500.0, ISSUER),
            )
        )
        assert applied.success
        assert engine.trustlines.balance("rAlice", "USD", ISSUER) == 500.0

    def test_payment_to_special_address_burns_funds(self, engine):
        special = "rrrrrrrrrrrrrrrrrrrrrhoLvTp"
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.PAYMENT,
                account="rAlice",
                destination=special,
                amount=IouAmount.native(10.0),
            )
        )
        assert applied.success
        assert special not in engine.accounts

    def test_bad_amount(self, engine):
        applied = engine.apply(
            XrpTransaction(type=TransactionType.PAYMENT, account="rAlice", destination="rBob")
        )
        assert applied.result is ResultCode.BAD_AMOUNT


class TestOffers:
    def test_unfunded_offer(self, engine):
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.OFFER_CREATE,
                account="rBob",
                taker_gets=IouAmount.iou("USD", 50.0, ISSUER),
                taker_pays=IouAmount.native(100.0),
            )
        )
        assert applied.result is ResultCode.UNFUNDED_OFFER

    def test_funded_offer_rests(self, engine):
        engine.trustlines.credit("rBob", IouAmount.iou("USD", 100.0, ISSUER))
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.OFFER_CREATE,
                account="rBob",
                taker_gets=IouAmount.iou("USD", 50.0, ISSUER),
                taker_pays=IouAmount.native(100.0),
            )
        )
        assert applied.success
        assert applied.offer_id > 0
        assert applied.executions == []

    def test_crossing_offer_produces_executions(self, engine):
        engine.trustlines.credit("rBob", IouAmount.iou("USD", 100.0, ISSUER))
        engine.apply(
            XrpTransaction(
                type=TransactionType.OFFER_CREATE,
                account="rBob",
                taker_gets=IouAmount.iou("USD", 50.0, ISSUER),
                taker_pays=IouAmount.native(100.0),
            )
        )
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.OFFER_CREATE,
                account="rAlice",
                taker_gets=IouAmount.native(100.0),
                taker_pays=IouAmount.iou("USD", 50.0, ISSUER),
            )
        )
        assert applied.success
        assert len(applied.executions) == 1

    def test_offer_cancel(self, engine):
        engine.trustlines.credit("rBob", IouAmount.iou("USD", 100.0, ISSUER))
        created = engine.apply(
            XrpTransaction(
                type=TransactionType.OFFER_CREATE,
                account="rBob",
                taker_gets=IouAmount.iou("USD", 10.0, ISSUER),
                taker_pays=IouAmount.native(30.0),
            )
        )
        cancelled = engine.apply(
            XrpTransaction(
                type=TransactionType.OFFER_CANCEL,
                account="rBob",
                offer_sequence=created.offer_id,
            )
        )
        assert cancelled.success
        missing = engine.apply(
            XrpTransaction(
                type=TransactionType.OFFER_CANCEL, account="rBob", offer_sequence=9_999
            )
        )
        assert missing.result is ResultCode.NO_ENTRY


class TestTrustSetAndSettings:
    def test_trust_set_creates_line(self, engine):
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.TRUST_SET,
                account="rAlice",
                limit=IouAmount.iou("EUR", 5_000.0, ISSUER),
            )
        )
        assert applied.success
        assert engine.trustlines.has_line("rAlice", "EUR", ISSUER)

    def test_trust_set_native_rejected(self, engine):
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.TRUST_SET,
                account="rAlice",
                limit=IouAmount.native(10.0),
            )
        )
        assert applied.result is ResultCode.BAD_AMOUNT

    def test_settings_transactions_are_noops(self, engine):
        for tx_type in (
            TransactionType.ACCOUNT_SET,
            TransactionType.SIGNER_LIST_SET,
            TransactionType.SET_REGULAR_KEY,
        ):
            applied = engine.apply(XrpTransaction(type=tx_type, account="rAlice"))
            assert applied.success


class TestEscrows:
    def test_escrow_lifecycle(self, engine):
        created = engine.apply(
            XrpTransaction(
                type=TransactionType.ESCROW_CREATE,
                account="rAlice",
                destination="rBob",
                amount=IouAmount.native(100.0),
                finish_after=50.0,
            ),
            timestamp=0.0,
        )
        assert created.success
        escrow_id = created.offer_id
        # Too early to finish.
        early = engine.apply(
            XrpTransaction(type=TransactionType.ESCROW_FINISH, account="rBob", escrow_id=escrow_id),
            timestamp=10.0,
        )
        assert early.result is ResultCode.NO_ENTRY
        done = engine.apply(
            XrpTransaction(type=TransactionType.ESCROW_FINISH, account="rBob", escrow_id=escrow_id),
            timestamp=60.0,
        )
        assert done.success
        assert engine.accounts.get("rBob").xrp_balance > 500.0

    def test_escrow_cancel_returns_funds(self, engine):
        created = engine.apply(
            XrpTransaction(
                type=TransactionType.ESCROW_CREATE,
                account="rAlice",
                destination="rBob",
                amount=IouAmount.native(100.0),
                finish_after=50.0,
            )
        )
        balance_after_create = engine.accounts.get("rAlice").xrp_balance
        cancelled = engine.apply(
            XrpTransaction(
                type=TransactionType.ESCROW_CANCEL, account="rAlice", escrow_id=created.offer_id
            )
        )
        assert cancelled.success
        assert engine.accounts.get("rAlice").xrp_balance == pytest.approx(
            balance_after_create + 100.0 - drops_to_xrp(10)
        )

    def test_escrow_unfunded(self, engine):
        applied = engine.apply(
            XrpTransaction(
                type=TransactionType.ESCROW_CREATE,
                account="rBob",
                destination="rAlice",
                amount=IouAmount.native(100_000.0),
            )
        )
        assert applied.result is ResultCode.UNFUNDED_PAYMENT
