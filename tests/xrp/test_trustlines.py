"""Tests for trust lines and IOU movement."""

import pytest

from repro.common.errors import ChainError
from repro.xrp.amounts import IouAmount
from repro.xrp.trustlines import TrustLineTable


ISSUER = "rGateway"
ALICE = "rAlice"
BOB = "rBob"


@pytest.fixture
def table():
    instance = TrustLineTable()
    instance.set_trust(ALICE, "USD", ISSUER, limit=1_000.0)
    instance.set_trust(BOB, "USD", ISSUER, limit=100.0)
    return instance


class TestTrustSet:
    def test_create_and_update_limit(self, table):
        line = table.get(ALICE, "USD", ISSUER)
        assert line.limit == 1_000.0
        table.set_trust(ALICE, "USD", ISSUER, limit=2_000.0)
        assert table.get(ALICE, "USD", ISSUER).limit == 2_000.0

    def test_cannot_lower_limit_below_balance(self, table):
        table.credit(ALICE, IouAmount.iou("USD", 500.0, ISSUER))
        with pytest.raises(ChainError):
            table.set_trust(ALICE, "USD", ISSUER, limit=100.0)

    def test_no_trust_line_for_native_xrp(self):
        table = TrustLineTable()
        with pytest.raises(ChainError):
            table.set_trust(ALICE, "XRP", ISSUER, limit=10.0)

    def test_issuer_needs_no_line_to_itself(self):
        table = TrustLineTable()
        with pytest.raises(ChainError):
            table.set_trust(ISSUER, "USD", ISSUER, limit=10.0)

    def test_missing_line_lookup(self, table):
        with pytest.raises(ChainError):
            table.get(ALICE, "EUR", ISSUER)
        assert not table.has_line(ALICE, "EUR", ISSUER)
        assert table.balance(ALICE, "EUR", ISSUER) == 0.0


class TestTransfers:
    def test_issuance_creates_iou(self, table):
        table.transfer(ISSUER, ALICE, IouAmount.iou("USD", 200.0, ISSUER))
        assert table.balance(ALICE, "USD", ISSUER) == 200.0

    def test_redemption_destroys_iou(self, table):
        table.transfer(ISSUER, ALICE, IouAmount.iou("USD", 200.0, ISSUER))
        table.transfer(ALICE, ISSUER, IouAmount.iou("USD", 50.0, ISSUER))
        assert table.balance(ALICE, "USD", ISSUER) == 150.0

    def test_peer_to_peer_transfer_rides_both_lines(self, table):
        table.transfer(ISSUER, ALICE, IouAmount.iou("USD", 80.0, ISSUER))
        table.transfer(ALICE, BOB, IouAmount.iou("USD", 30.0, ISSUER))
        assert table.balance(ALICE, "USD", ISSUER) == 50.0
        assert table.balance(BOB, "USD", ISSUER) == 30.0

    def test_insufficient_balance_is_path_dry(self, table):
        with pytest.raises(ChainError):
            table.transfer(ALICE, BOB, IouAmount.iou("USD", 10.0, ISSUER))

    def test_receiver_capacity_enforced(self, table):
        table.transfer(ISSUER, ALICE, IouAmount.iou("USD", 500.0, ISSUER))
        # Bob's limit is only 100.
        with pytest.raises(ChainError):
            table.transfer(ALICE, BOB, IouAmount.iou("USD", 200.0, ISSUER))

    def test_native_xrp_rejected(self, table):
        with pytest.raises(ChainError):
            table.transfer(ALICE, BOB, IouAmount.native(1.0))

    def test_can_send_and_receive_predicates(self, table):
        usd = IouAmount.iou("USD", 10.0, ISSUER)
        assert table.can_send(ISSUER, usd)  # issuers mint freely
        assert not table.can_send(ALICE, usd)
        assert table.can_receive(ALICE, usd)
        assert not table.can_receive("rStranger", usd)
        assert table.can_receive(ALICE, IouAmount.native(5.0))

    def test_credit_creates_line_when_missing(self):
        table = TrustLineTable()
        table.credit(ALICE, IouAmount.iou("BTC", 2.0, ISSUER))
        assert table.balance(ALICE, "BTC", ISSUER) == 2.0
        # Credit beyond the limit raises the limit rather than failing.
        table.credit(ALICE, IouAmount.iou("BTC", 1e10, ISSUER))
        assert table.get(ALICE, "BTC", ISSUER).limit >= table.balance(ALICE, "BTC", ISSUER)

    def test_lines_of_and_towards(self, table):
        assert {line.holder for line in table.lines_towards(ISSUER)} == {ALICE, BOB}
        assert len(table.lines_of(ALICE)) == 1
        assert len(table) == 2
