"""Tests for the calibrated XRP workload generator."""

import pytest

from repro.common.clock import timestamp_from_iso
from repro.common.records import ChainId, iter_transactions
from repro.xrp.workload import (
    HUOBI_DESTINATION_TAG,
    LIQUID_LINKED_ISSUER,
    MYRONE_ACCOUNT,
    RIPPLE_ACCOUNT,
    SPAM_PARENT,
    XrpWorkloadConfig,
    XrpWorkloadGenerator,
)


class TestConfigValidation:
    def test_defaults_cover_the_paper_window(self):
        config = XrpWorkloadConfig()
        assert config.start_date == "2019-10-01"
        assert config.total_days == pytest.approx(92.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ledgers_per_day": 0},
            {"transactions_per_day": 0},
            {"start_date": "2019-12-01", "end_date": "2019-11-01"},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            XrpWorkloadConfig(**kwargs)


class TestGeneratedTraffic:
    def test_blocks_are_ordered_and_within_window(self, xrp_blocks, scenario):
        assert xrp_blocks
        timestamps = [block.timestamp for block in xrp_blocks]
        assert timestamps == sorted(timestamps)
        assert timestamps[-1] < scenario.xrp.end_timestamp

    def test_all_records_are_xrp(self, xrp_records):
        assert all(record.chain is ChainId.XRP for record in xrp_records)

    def test_failure_share_is_roughly_ten_percent(self, xrp_records):
        failed = sum(1 for record in xrp_records if not record.success)
        share = failed / len(xrp_records)
        assert 0.05 <= share <= 0.20

    def test_expected_failure_codes_present(self, xrp_records):
        codes = {record.error_code for record in xrp_records if not record.success}
        assert "tecPATH_DRY" in codes
        assert "tecUNFUNDED_OFFER" in codes

    def test_payment_and_offercreate_dominate(self, xrp_records):
        payments = sum(1 for record in xrp_records if record.type == "Payment")
        offers = sum(1 for record in xrp_records if record.type == "OfferCreate")
        assert (payments + offers) / len(xrp_records) > 0.85

    def test_offer_bots_are_huobi_descendants_with_offercreate_bias(
        self, xrp_generator, xrp_records
    ):
        registry = xrp_generator.ledger.accounts
        for bot in xrp_generator.offer_bots:
            assert registry.cluster_identifier(bot) == "Huobi Global -- descendant"
            own = [record for record in xrp_records if record.sender == bot]
            offers = sum(1 for record in own if record.type == "OfferCreate")
            assert offers / len(own) > 0.9

    def test_bot_payments_share_destination_tag(self, xrp_records, xrp_generator):
        bots = set(xrp_generator.offer_bots)
        tagged = [
            record
            for record in xrp_records
            if record.sender in bots and record.type == "Payment"
        ]
        if tagged:
            assert all(
                record.metadata.get("destination_tag") == HUOBI_DESTINATION_TAG
                for record in tagged
            )

    def test_spam_wave_amplifies_payment_traffic(self, xrp_blocks, scenario):
        wave_start = timestamp_from_iso(scenario.xrp.spam_waves[0][0])
        wave_end = timestamp_from_iso(scenario.xrp.spam_waves[0][1])
        inside = [block.action_count for block in xrp_blocks if wave_start <= block.timestamp < wave_end]
        outside = [block.action_count for block in xrp_blocks if block.timestamp >= wave_end]
        if inside and outside:
            assert sum(inside) / len(inside) > 1.3 * (sum(outside) / len(outside))

    def test_spam_accounts_descend_from_single_parent(self, xrp_generator):
        registry = xrp_generator.ledger.accounts
        assert xrp_generator.spam_accounts
        for address in xrp_generator.spam_accounts:
            assert registry.get(address).parent == SPAM_PARENT

    def test_spam_payments_use_worthless_btc_iou(self, xrp_records, xrp_generator):
        spam = set(xrp_generator.spam_accounts)
        spam_payments = [
            record
            for record in xrp_records
            if record.sender in spam and record.type == "Payment" and record.success
        ]
        assert spam_payments
        assert all(record.currency == "BTC" for record in spam_payments)
        # The spam swarm's BTC IOU is issued by its own parent account and
        # never trades on the DEX, so it is valueless per the §4.3 oracle.
        assert all(record.issuer == SPAM_PARENT for record in spam_payments)

    def test_ripple_and_exchanges_present(self, xrp_records):
        senders = {record.sender for record in xrp_records}
        assert RIPPLE_ACCOUNT in senders

    def test_valued_assets_have_positive_dex_rates(self, xrp_generator):
        book = xrp_generator.ledger.orderbook
        for currency, issuer in xrp_generator.valued_assets():
            assert book.average_rate_vs_xrp(currency, issuer) > 0.0

    def test_worthless_btc_never_traded_against_xrp_before_myrone(self, xrp_generator, scenario):
        # In the two-week test window (before mid-December) the Liquid-linked
        # BTC IOU has no executed rate, so it is valueless per the oracle.
        if scenario.xrp.end_timestamp < timestamp_from_iso("2019-12-14"):
            book = xrp_generator.ledger.orderbook
            assert book.average_rate_vs_xrp("BTC", LIQUID_LINKED_ISSUER) == 0.0

    def test_determinism(self):
        config = XrpWorkloadConfig(
            start_date="2019-10-20",
            end_date="2019-10-24",
            transactions_per_day=150,
            ledgers_per_day=4,
            ordinary_account_count=30,
            spam_accounts_per_wave=5,
            seed=77,
        )
        first = [record.type for record in iter_transactions(XrpWorkloadGenerator(config).generate())]
        second = [record.type for record in iter_transactions(XrpWorkloadGenerator(config).generate())]
        assert first == second


class TestMyroneScheme:
    def test_self_dealt_trade_occurs_in_december(self):
        config = XrpWorkloadConfig(
            start_date="2019-12-12",
            end_date="2019-12-16",
            transactions_per_day=100,
            ledgers_per_day=4,
            ordinary_account_count=20,
            spam_accounts_per_wave=5,
            seed=13,
        )
        generator = XrpWorkloadGenerator(config)
        blocks = generator.generate()
        records = list(iter_transactions(blocks))
        myrone_offers = [
            record
            for record in records
            if record.sender == MYRONE_ACCOUNT and record.type == "OfferCreate"
        ]
        assert myrone_offers
        rate = generator.ledger.orderbook.average_rate_vs_xrp("BTC", LIQUID_LINKED_ISSUER)
        assert rate == pytest.approx(30_500.0, rel=0.01)
        issuance = [
            record
            for record in records
            if record.sender == LIQUID_LINKED_ISSUER
            and record.receiver == MYRONE_ACCOUNT
            and record.type == "Payment"
        ]
        assert issuance and issuance[0].amount == pytest.approx(config.myrone_btc_amount)
